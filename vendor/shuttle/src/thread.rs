//! Model-aware threads. Outside a model run these are plain
//! `std::thread` spawns; inside one, each spawned thread registers with
//! the scheduler (spawn and join are happens-before edges) and parks
//! until it is first scheduled, so the interleaving is fully policy-
//! controlled from the first instruction.

use crate::exec::{ctx, panic_msg, Abort};
use std::panic::{self, AssertUnwindSafe};

/// Handle to a spawned model (or raw) thread.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

enum Inner<T> {
    Raw(std::thread::JoinHandle<T>),
    /// Model thread: its tid plus the result slot it fills on the way
    /// out (the real OS handle is reaped by the run's drain).
    Model {
        tid: usize,
        slot: std::sync::Arc<std::sync::Mutex<Option<std::thread::Result<T>>>>,
    },
}

impl<T> JoinHandle<T> {
    /// Joins the thread; propagates its panic like `std` does.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Raw(h) => h.join(),
            Inner::Model { tid, slot } => {
                let (exec, me) = ctx().expect("model JoinHandle joined outside its run");
                exec.join_thread(me, tid);
                let r = slot.lock().unwrap_or_else(|e| e.into_inner()).take();
                r.expect("joined model thread left no result")
            }
        }
    }
}

/// Spawns a thread. Under a model run the child becomes a model thread:
/// it blocks until the policy first schedules it, and every sync op it
/// performs is a controlled yield point.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match ctx() {
        None => JoinHandle { inner: Inner::Raw(std::thread::spawn(f)) },
        Some((exec, me)) => {
            let tid = exec.register_thread(me);
            let slot = std::sync::Arc::new(std::sync::Mutex::new(None));
            let slot2 = slot.clone();
            let exec2 = exec.clone();
            let real = std::thread::spawn(move || {
                crate::exec::adopt(exec2.clone(), tid);
                exec2.wait_first_schedule(tid);
                let r = panic::catch_unwind(AssertUnwindSafe(f));
                match r {
                    Ok(v) => {
                        *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v));
                    }
                    Err(p) => {
                        if p.downcast_ref::<Abort>().is_none() {
                            exec2.record_failure(format!(
                                "model thread {tid} panicked: {}",
                                panic_msg(p.as_ref())
                            ));
                        }
                        *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(Err(p));
                    }
                }
                exec2.finish_thread(tid);
            });
            exec.add_real_handle(real);
            // Spawn is a yield point: the child may run before the
            // parent's next op.
            exec.schedule(me);
            JoinHandle { inner: Inner::Model { tid, slot } }
        }
    }
}

/// A bare yield point: lets the policy hand the token elsewhere without
/// any memory effect. No-op outside a model run.
pub fn yield_now() {
    if let Some((exec, me)) = ctx() {
        if !exec.is_aborted() {
            exec.schedule(me);
        }
    } else {
        std::thread::yield_now();
    }
}
