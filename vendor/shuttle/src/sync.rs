//! Model-aware `sync` primitives, API-compatible with the `std::sync`
//! subset the workspace uses.
//!
//! Every type is **dual-mode**: outside a model run (no scheduler on
//! this thread) each operation delegates straight to the real `std`
//! primitive with the caller's ordering, so a crate compiled against
//! these types behaves identically to one compiled against `std` —
//! existing stress/proptest suites keep running. Inside a model run the
//! operation becomes a schedule point interpreted by the weak-memory
//! model in [`crate::exec`].
//!
//! Model stores are mirrored into the raw `std` atomic so that code
//! running after an abort tear-down (drop paths degrading to raw mode)
//! observes the newest modification-order value.

use crate::exec::{ctx, ExecInner, OrdBits};
use std::sync::Arc;

pub use std::sync::atomic::Ordering;

/// Lazily-registered model location id, cached per execution epoch.
/// Packed as `epoch << 32 | (loc + 1)`; 0 = unregistered.
struct LocCache(std::sync::atomic::AtomicU64);

impl LocCache {
    const fn new() -> LocCache {
        LocCache(std::sync::atomic::AtomicU64::new(0))
    }

    /// The table index under `exec`, calling `register` on first touch
    /// within the current epoch (atomic location, mutex, or cv slot).
    fn get(&self, exec: &Arc<ExecInner>, register: impl FnOnce() -> usize) -> usize {
        let cached = self.0.load(Ordering::Relaxed);
        if (cached >> 32) as u32 == exec.epoch {
            return (cached as u32 - 1) as usize;
        }
        let loc = register();
        self.0.store(((exec.epoch as u64) << 32) | (loc as u64 + 1), Ordering::Relaxed);
        loc
    }
}

pub mod atomic {
    use super::*;

    pub use std::sync::atomic::Ordering;

    /// A fence: real outside a model run; a SeqCst SC-clock join inside
    /// one (the only fence kind this workspace uses).
    pub fn fence(order: Ordering) {
        match ctx() {
            None => std::sync::atomic::fence(order),
            Some((exec, me)) => {
                if exec.is_aborted() {
                    return;
                }
                exec.fence(me, OrdBits::of(order));
            }
        }
    }

    macro_rules! model_atomic {
        ($name:ident, $raw:ty, $prim:ty) => {
            /// Model-aware drop-in for the matching `std::sync::atomic`
            /// type (see the module docs for the dual-mode contract).
            pub struct $name {
                raw: $raw,
                loc: LocCache,
            }

            impl $name {
                pub const fn new(v: $prim) -> Self {
                    Self { raw: <$raw>::new(v), loc: LocCache::new() }
                }

                #[inline]
                fn enter(&self) -> Option<(Arc<ExecInner>, usize, usize)> {
                    let (exec, me) = ctx()?;
                    if exec.is_aborted() {
                        return None;
                    }
                    let loc = self
                        .loc
                        .get(&exec, || exec.register_loc(self.raw.load(Ordering::Relaxed) as u64));
                    Some((exec, me, loc))
                }

                pub fn load(&self, order: Ordering) -> $prim {
                    match self.enter() {
                        None => self.raw.load(order),
                        Some((exec, me, loc)) => {
                            exec.atomic_load(me, loc, OrdBits::of(order)) as $prim
                        }
                    }
                }

                pub fn store(&self, val: $prim, order: Ordering) {
                    match self.enter() {
                        None => self.raw.store(val, order),
                        Some((exec, me, loc)) => {
                            exec.atomic_store(me, loc, val as u64, OrdBits::of(order));
                            self.raw.store(val, Ordering::Relaxed);
                        }
                    }
                }

                pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                    match self.enter() {
                        None => self.raw.swap(val, order),
                        Some((exec, me, loc)) => {
                            let old = exec.atomic_rmw(me, loc, |_| val as u64, OrdBits::of(order));
                            self.raw.store(val, Ordering::Relaxed);
                            old as $prim
                        }
                    }
                }

                pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                    match self.enter() {
                        None => self.raw.fetch_add(val, order),
                        Some((exec, me, loc)) => {
                            let old = exec.atomic_rmw(
                                me,
                                loc,
                                |o| (o as $prim).wrapping_add(val) as u64,
                                OrdBits::of(order),
                            ) as $prim;
                            self.raw.store(old.wrapping_add(val), Ordering::Relaxed);
                            old
                        }
                    }
                }

                pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                    match self.enter() {
                        None => self.raw.fetch_sub(val, order),
                        Some((exec, me, loc)) => {
                            let old = exec.atomic_rmw(
                                me,
                                loc,
                                |o| (o as $prim).wrapping_sub(val) as u64,
                                OrdBits::of(order),
                            ) as $prim;
                            self.raw.store(old.wrapping_sub(val), Ordering::Relaxed);
                            old
                        }
                    }
                }

                pub fn fetch_max(&self, val: $prim, order: Ordering) -> $prim {
                    match self.enter() {
                        None => self.raw.fetch_max(val, order),
                        Some((exec, me, loc)) => {
                            let old = exec.atomic_rmw(
                                me,
                                loc,
                                |o| (o as $prim).max(val) as u64,
                                OrdBits::of(order),
                            ) as $prim;
                            self.raw.store(old.max(val), Ordering::Relaxed);
                            old
                        }
                    }
                }

                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    match self.enter() {
                        None => self.raw.compare_exchange(current, new, success, failure),
                        Some((exec, me, loc)) => {
                            let r = exec.atomic_cas(
                                me,
                                loc,
                                current as u64,
                                new as u64,
                                OrdBits::of(success),
                                OrdBits::of(failure),
                            );
                            match r {
                                Ok(old) => {
                                    self.raw.store(new, Ordering::Relaxed);
                                    Ok(old as $prim)
                                }
                                Err(seen) => Err(seen as $prim),
                            }
                        }
                    }
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.compare_exchange(current, new, success, failure)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_tuple(stringify!($name)).field(&self.load(Ordering::Relaxed)).finish()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }
        };
    }

    model_atomic!(AtomicU8, std::sync::atomic::AtomicU8, u8);
    model_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    model_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_atomic!(AtomicI32, std::sync::atomic::AtomicI32, i32);
    model_atomic!(AtomicIsize, std::sync::atomic::AtomicIsize, isize);

    /// Model-aware `AtomicPtr`: the model stores the address as `u64`.
    pub struct AtomicPtr<T> {
        raw: std::sync::atomic::AtomicPtr<T>,
        loc: LocCache,
    }

    impl<T> AtomicPtr<T> {
        pub const fn new(p: *mut T) -> Self {
            AtomicPtr { raw: std::sync::atomic::AtomicPtr::new(p), loc: LocCache::new() }
        }

        #[inline]
        fn enter(&self) -> Option<(Arc<ExecInner>, usize, usize)> {
            let (exec, me) = ctx()?;
            if exec.is_aborted() {
                return None;
            }
            let loc =
                self.loc.get(&exec, || exec.register_loc(self.raw.load(Ordering::Relaxed) as u64));
            Some((exec, me, loc))
        }

        pub fn load(&self, order: Ordering) -> *mut T {
            match self.enter() {
                None => self.raw.load(order),
                Some((exec, me, loc)) => exec.atomic_load(me, loc, OrdBits::of(order)) as *mut T,
            }
        }

        pub fn store(&self, p: *mut T, order: Ordering) {
            match self.enter() {
                None => self.raw.store(p, order),
                Some((exec, me, loc)) => {
                    exec.atomic_store(me, loc, p as u64, OrdBits::of(order));
                    self.raw.store(p, Ordering::Relaxed);
                }
            }
        }

        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            match self.enter() {
                None => self.raw.swap(p, order),
                Some((exec, me, loc)) => {
                    let old = exec.atomic_rmw(me, loc, |_| p as u64, OrdBits::of(order));
                    self.raw.store(p, Ordering::Relaxed);
                    old as *mut T
                }
            }
        }
    }

    impl<T> std::fmt::Debug for AtomicPtr<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_tuple("AtomicPtr").field(&self.load(Ordering::Relaxed)).finish()
        }
    }
}

// ---------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------

pub use std::sync::{LockResult, PoisonError};

/// Model-aware mutex. The payload lives in a real `std::sync::Mutex`;
/// under a model run, mutual exclusion is enforced by the scheduler
/// (lock is a schedule point, contended lock parks the thread), so the
/// inner `try_lock` never contends.
pub struct Mutex<T: ?Sized> {
    loc: LocCache,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Mutex<T> {
        Mutex { loc: LocCache::new(), inner: std::sync::Mutex::new(t) }
    }

    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn model(&self) -> Option<(Arc<ExecInner>, usize, usize)> {
        let (exec, me) = ctx()?;
        if exec.is_aborted() {
            return None;
        }
        let m = self.loc.get(&exec, || exec.register_mutex());
        Some((exec, me, m))
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match self.model() {
            None => {
                let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                Ok(MutexGuard { lock: None, owner: self, inner: Some(g) })
            }
            Some((exec, me, m)) => {
                exec.mutex_lock(me, m);
                let g = self
                    .inner
                    .try_lock()
                    .unwrap_or_else(|_| panic!("model mutex invariant broken: inner contended"));
                Ok(MutexGuard { lock: Some((exec, me, m)), owner: self, inner: Some(g) })
            }
        }
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]; releases the model lock (if any) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    /// `Some` when the lock was taken under a model run.
    lock: Option<(Arc<ExecInner>, usize, usize)>,
    /// The mutex this guard came from (condvar wait re-locks through
    /// it; std offers no stable guard-to-mutex accessor).
    owner: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Real guard first (the payload), model state second; the model
        // unlock is not a schedule point (it may run while unwinding).
        self.inner = None;
        if let Some((exec, me, m)) = self.lock.take() {
            exec.mutex_unlock(me, m);
        }
    }
}

/// Model-aware condvar: under a model run, waiters park in the
/// scheduler and notifies are explicit wake choices (no spurious
/// wakeups are modeled — DESIGN.md §10.4).
pub struct Condvar {
    loc: LocCache,
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar { loc: LocCache::new(), inner: std::sync::Condvar::new() }
    }

    fn model(&self) -> Option<(Arc<ExecInner>, usize, usize)> {
        let (exec, me) = ctx()?;
        if exec.is_aborted() {
            return None;
        }
        let cv = self.loc.get(&exec, || exec.register_cv());
        Some((exec, me, cv))
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match self.model() {
            None => {
                let inner = guard.inner.take().expect("guard already released");
                let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
                guard.inner = Some(inner);
                Ok(guard)
            }
            Some((exec, me, cv)) => {
                let (_, _, m) = guard.lock.take().expect("model condvar with raw-mode guard");
                let owner = guard.owner;
                // Release the real payload guard (the model-side unlock
                // happens inside cv_wait; `lock` was taken above so the
                // guard's drop releases nothing twice).
                guard.inner = None;
                drop(guard);
                exec.cv_wait(me, cv, m);
                let inner = owner
                    .inner
                    .try_lock()
                    .unwrap_or_else(|_| panic!("model mutex invariant broken: inner contended"));
                Ok(MutexGuard { lock: Some((exec, me, m)), owner, inner: Some(inner) })
            }
        }
    }

    pub fn notify_one(&self) {
        match self.model() {
            None => self.inner.notify_one(),
            Some((exec, me, cv)) => exec.cv_notify(me, cv, false),
        }
    }

    pub fn notify_all(&self) {
        match self.model() {
            None => self.inner.notify_all(),
            Some((exec, me, cv)) => exec.cv_notify(me, cv, true),
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
