//! Offline stand-in for the `shuttle` model checker (vendor policy:
//! vendor/README.md). One `check_*` call explores many *schedules* of a
//! closure that spawns threads via [`thread::spawn`] and shares state
//! through the [`sync`] primitives. Every sync operation is a
//! controlled yield point; a deterministic policy picks which thread
//! runs next and which value each (possibly stale) atomic load
//! observes, so the whole interleaving — including weak-memory
//! outcomes — is a pure function of the recorded choice trace.
//!
//! A failing schedule panics with its choice trace; [`replay`] re-runs
//! that exact schedule, which is what the pinned regression tests in
//! `tss-exec` do. Soundness limits are documented in DESIGN.md §10.4.

#![forbid(unsafe_code)]

pub mod sync;
pub mod thread;

mod exec;

use exec::{run_once, Policy};

/// Default per-schedule step budget; exceeding it fails the schedule as
/// a livelock (an unbounded retry loop under an adversarial policy).
const MAX_STEPS: usize = 100_000;

/// A schedule failure surfaced by one of the `explore_*` variants.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The panic/assertion message of the failing schedule.
    pub message: String,
    /// The choice trace: pass to [`replay`] to re-run it exactly.
    pub trace: Vec<usize>,
}

/// Exploration statistics from a passing `check_*`/`explore_*` call.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Schedules actually run.
    pub schedules: usize,
    /// Whether the choice tree was fully enumerated (exhaustive mode
    /// within budget; random/PCT modes never claim completeness).
    pub complete: bool,
}

fn fmt_trace(trace: &[usize]) -> String {
    let items: Vec<String> = trace.iter().map(|c| c.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn fail(kind: &str, f: &Failure) -> ! {
    panic!(
        "shuttle({kind}): schedule failed: {}\n  replay trace: {}\n  \
         re-run with shuttle::replay(&{}, ..)",
        f.message,
        fmt_trace(&f.trace),
        fmt_trace(&f.trace),
    )
}

/// Bounded-exhaustive DFS over the whole choice tree, up to
/// `max_schedules`. Returns the first failure, if any.
pub fn explore_exhaustive(max_schedules: usize, f: impl Fn()) -> Result<Report, Failure> {
    let mut stack: Vec<(usize, usize)> = Vec::new();
    let mut schedules = 0;
    loop {
        let out = run_once(Policy::Dfs { stack, depth: 0 }, MAX_STEPS, &f);
        schedules += 1;
        if let Some(fail) = out.failure {
            return Err(Failure { message: fail.msg, trace: fail.trace });
        }
        stack = match out.policy {
            Policy::Dfs { stack, .. } => stack,
            _ => unreachable!("DFS run returned a different policy"),
        };
        // Advance to the next leaf: bump the deepest choice that still
        // has unexplored options, discarding everything below it.
        while let Some(&(chosen, n)) = stack.last() {
            if chosen + 1 < n {
                break;
            }
            stack.pop();
        }
        match stack.last_mut() {
            None => return Ok(Report { schedules, complete: true }),
            Some(last) => last.0 += 1,
        }
        if schedules >= max_schedules {
            return Ok(Report { schedules, complete: false });
        }
    }
}

/// Uniform-random schedules, `iters` of them, seeded and replayable.
pub fn explore_random(seed: u64, iters: usize, f: impl Fn()) -> Result<Report, Failure> {
    for i in 0..iters {
        let rng = seed.wrapping_add(i as u64).wrapping_mul(0x2545_F491_4F6C_DD1D) | 1;
        let out = run_once(Policy::Random { rng }, MAX_STEPS, &f);
        if let Some(fail) = out.failure {
            return Err(Failure {
                message: format!("{} (seed {seed}, iteration {i})", fail.msg),
                trace: fail.trace,
            });
        }
    }
    Ok(Report { schedules: iters, complete: false })
}

/// PCT-style schedules: random priorities with `depth` priority-change
/// points — good at surfacing low-probability orderings that uniform
/// random misses.
pub fn explore_pct(seed: u64, iters: usize, depth: usize, f: impl Fn()) -> Result<Report, Failure> {
    for i in 0..iters {
        let s = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let out = run_once(Policy::pct(s, depth, 256), MAX_STEPS, &f);
        if let Some(fail) = out.failure {
            return Err(Failure {
                message: format!("{} (seed {seed}, iteration {i})", fail.msg),
                trace: fail.trace,
            });
        }
    }
    Ok(Report { schedules: iters, complete: false })
}

/// Like [`explore_exhaustive`] but panics (test-friendly) on failure.
pub fn check_exhaustive(max_schedules: usize, f: impl Fn()) -> Report {
    match explore_exhaustive(max_schedules, f) {
        Ok(r) => r,
        Err(e) => fail("exhaustive", &e),
    }
}

/// Like [`explore_random`] but panics on failure.
pub fn check_random(seed: u64, iters: usize, f: impl Fn()) -> Report {
    match explore_random(seed, iters, f) {
        Ok(r) => r,
        Err(e) => fail("random", &e),
    }
}

/// Like [`explore_pct`] but panics on failure.
pub fn check_pct(seed: u64, iters: usize, depth: usize, f: impl Fn()) -> Report {
    match explore_pct(seed, iters, depth, f) {
        Ok(r) => r,
        Err(e) => fail("pct", &e),
    }
}

/// Replays one exact choice trace (from a failure report). Returns the
/// failure it reproduces, or `None` if the schedule now passes.
pub fn replay(trace: &[usize], f: impl Fn()) -> Option<Failure> {
    let out = run_once(Policy::Replay { trace: trace.to_vec(), pos: 0 }, MAX_STEPS, &f);
    out.failure.map(|fl| Failure { message: fl.msg, trace: fl.trace })
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU32, Ordering};
    use super::sync::{Condvar, Mutex};
    use super::*;
    use std::sync::Arc;

    /// Store buffering (Dekker): both-zero is reachable under Relaxed…
    #[test]
    fn store_buffering_relaxed_found() {
        let err = explore_exhaustive(10_000, || {
            let x = Arc::new(AtomicU32::new(0));
            let y = Arc::new(AtomicU32::new(0));
            let (x2, y2) = (x.clone(), y.clone());
            let t = thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
                y2.load(Ordering::Relaxed)
            });
            y.store(1, Ordering::Relaxed);
            let r2 = x.load(Ordering::Relaxed);
            let r1 = t.join().unwrap();
            assert!(!(r1 == 0 && r2 == 0), "store buffering observed");
        })
        .unwrap_err();
        assert!(err.message.contains("store buffering"), "wrong failure: {}", err.message);
    }

    /// …and unreachable under SeqCst (the SC-clock approximation must
    /// not allow it either).
    #[test]
    fn store_buffering_seqcst_excluded() {
        let report = check_exhaustive(100_000, || {
            let x = Arc::new(AtomicU32::new(0));
            let y = Arc::new(AtomicU32::new(0));
            let (x2, y2) = (x.clone(), y.clone());
            let t = thread::spawn(move || {
                x2.store(1, Ordering::SeqCst);
                y2.load(Ordering::SeqCst)
            });
            y.store(1, Ordering::SeqCst);
            let r2 = x.load(Ordering::SeqCst);
            let r1 = t.join().unwrap();
            assert!(!(r1 == 0 && r2 == 0), "store buffering under SeqCst");
        });
        assert!(report.complete, "budget too small to enumerate");
    }

    /// Message passing: a Relaxed flag publish lets the reader see the
    /// flag but stale data — exactly the seeded-bug class in tss-exec.
    #[test]
    fn message_passing_relaxed_flag_found() {
        let err = explore_exhaustive(10_000, || {
            let data = Arc::new(AtomicU32::new(0));
            let flag = Arc::new(AtomicU32::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Relaxed); // bug: should be Release
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "stale data behind flag");
            }
            t.join().unwrap();
        })
        .unwrap_err();
        assert!(err.message.contains("stale data"), "wrong failure: {}", err.message);
    }

    /// The same program with a Release publish has no failing schedule.
    #[test]
    fn message_passing_release_acquire_excluded() {
        let report = check_exhaustive(100_000, || {
            let data = Arc::new(AtomicU32::new(0));
            let flag = Arc::new(AtomicU32::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42);
            }
            t.join().unwrap();
        });
        assert!(report.complete, "budget too small to enumerate");
    }

    /// Dekker with SeqCst fences between store and load also excludes
    /// the both-zero outcome (validates the fence model).
    #[test]
    fn fence_pair_excluded() {
        let report = check_exhaustive(100_000, || {
            let x = Arc::new(AtomicU32::new(0));
            let y = Arc::new(AtomicU32::new(0));
            let (x2, y2) = (x.clone(), y.clone());
            let t = thread::spawn(move || {
                x2.store(1, Ordering::Relaxed);
                sync::atomic::fence(Ordering::SeqCst);
                y2.load(Ordering::Relaxed)
            });
            y.store(1, Ordering::Relaxed);
            sync::atomic::fence(Ordering::SeqCst);
            let r2 = x.load(Ordering::Relaxed);
            let r1 = t.join().unwrap();
            assert!(!(r1 == 0 && r2 == 0), "store buffering through fences");
        });
        assert!(report.complete);
    }

    /// Mutexes give mutual exclusion and happens-before: a non-atomic
    /// read-modify-write under the lock never loses an update.
    #[test]
    fn mutex_no_lost_update() {
        check_exhaustive(100_000, || {
            let c = Arc::new(Mutex::new(0u32));
            let c2 = c.clone();
            let t = thread::spawn(move || {
                let mut g = c2.lock().unwrap();
                let v = *g;
                thread::yield_now();
                *g = v + 1;
            });
            {
                let mut g = c.lock().unwrap();
                let v = *g;
                thread::yield_now();
                *g = v + 1;
            }
            t.join().unwrap();
            assert_eq!(*c.lock().unwrap(), 2, "lost update");
        });
    }

    /// Lock-order inversion is reported as a deadlock, not a hang.
    #[test]
    fn deadlock_detected() {
        let err = explore_exhaustive(10_000, || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let t = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop((_ga, _gb));
            t.join().unwrap();
        })
        .unwrap_err();
        assert!(err.message.contains("deadlock"), "wrong failure: {}", err.message);
    }

    /// Condvar handoff: the waiter always observes the flag after a
    /// notify; no schedule deadlocks or loses the wakeup.
    #[test]
    fn condvar_handoff() {
        check_exhaustive(100_000, || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = pair.clone();
            let t = thread::spawn(move || {
                let (m, cv) = &*pair2;
                let mut g = m.lock().unwrap();
                while !*g {
                    g = cv.wait(g).unwrap();
                }
            });
            let (m, cv) = &*pair;
            {
                let mut g = m.lock().unwrap();
                *g = true;
                cv.notify_one();
            }
            t.join().unwrap();
        });
    }

    /// Spawn and join are happens-before edges even for Relaxed data.
    #[test]
    fn join_is_release() {
        check_exhaustive(100_000, || {
            let d = Arc::new(AtomicU32::new(0));
            let d2 = d.clone();
            let t = thread::spawn(move || d2.store(7, Ordering::Relaxed));
            t.join().unwrap();
            assert_eq!(d.load(Ordering::Relaxed), 7, "join edge missing");
        });
    }

    /// A failure trace replays to the same failure, and schedules are
    /// deterministic across repeated exploration.
    #[test]
    fn replay_reproduces_failure() {
        let buggy = || {
            let data = Arc::new(AtomicU32::new(0));
            let flag = Arc::new(AtomicU32::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(42, Ordering::Relaxed);
                f2.store(1, Ordering::Relaxed);
            });
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 42, "stale data behind flag");
            }
            t.join().unwrap();
        };
        let e1 = explore_random(0xC0FFEE, 500, buggy).unwrap_err();
        let e2 = explore_random(0xC0FFEE, 500, buggy).unwrap_err();
        assert_eq!(e1.trace, e2.trace, "exploration is not deterministic");
        let r = replay(&e1.trace, buggy).expect("replay did not reproduce the failure");
        assert!(r.message.contains("stale data"), "replayed a different failure: {}", r.message);
    }

    /// CAS success is an RMW on the newest value: two racing CASes on
    /// the same expected value cannot both succeed.
    #[test]
    fn cas_is_atomic() {
        check_exhaustive(100_000, || {
            let x = Arc::new(AtomicU32::new(0));
            let x2 = x.clone();
            let t = thread::spawn(move || {
                x2.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).is_ok()
            });
            let mine = x.compare_exchange(0, 2, Ordering::AcqRel, Ordering::Acquire).is_ok();
            let theirs = t.join().unwrap();
            assert!(mine ^ theirs, "both CASes succeeded (or both failed)");
        });
    }
}
