//! The execution core: one model run = one deterministic schedule.
//!
//! Model threads are real OS threads, but exactly one holds the "run
//! token" (`ExecState::current`) at any instant; every atomic, mutex,
//! condvar, spawn, and join operation is a *yield point* where the
//! scheduling policy picks the next thread to run. All shared-memory
//! semantics are interpreted under the state lock, so the model run is
//! free of real data races by construction and fully determined by the
//! policy's choice sequence.
//!
//! The memory model (DESIGN.md §10.2) is a vector-clock interpretation
//! of C11 release/acquire:
//!
//! - every atomic location keeps its full modification order (a list of
//!   [`StoreRec`]s);
//! - a load may read any store not *hidden* — a store is hidden if a
//!   newer store to the same location happens-before the reader, or the
//!   reader has already read past it (coherence);
//! - release stores carry the writer's clock; acquire loads that read
//!   them join it. Relaxed stores carry nothing, so stale reads remain
//!   possible — which is exactly the bug class being explored;
//! - `SeqCst` operations and fences additionally join a global SC
//!   clock both ways, approximating the single total order S by the
//!   execution's own interleaving order (stronger than C11; §10.4
//!   records the soundness consequences).

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Panic payload used to tear threads down after a failure was already
/// recorded; never reported as a failure itself.
pub(crate) struct Abort;

/// A vector clock: `vc[t]` = how far of thread `t`'s timeline the owner
/// has synchronized with.
pub(crate) type VClock = Vec<u32>;

fn vc_join(a: &mut VClock, b: &[u32]) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (x, &y) in a.iter_mut().zip(b.iter()) {
        if *x < y {
            *x = y;
        }
    }
}

/// Memory orderings, mirrored from `std` (the facade re-exports std's
/// enum; the sync layer maps it onto these two predicates).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct OrdBits {
    pub acquire: bool,
    pub release: bool,
    pub seq_cst: bool,
}

impl OrdBits {
    pub(crate) fn of(o: std::sync::atomic::Ordering) -> OrdBits {
        use std::sync::atomic::Ordering::*;
        match o {
            Relaxed => OrdBits { acquire: false, release: false, seq_cst: false },
            Acquire => OrdBits { acquire: true, release: false, seq_cst: false },
            Release => OrdBits { acquire: false, release: true, seq_cst: false },
            AcqRel => OrdBits { acquire: true, release: true, seq_cst: false },
            SeqCst => OrdBits { acquire: true, release: true, seq_cst: true },
            _ => OrdBits { acquire: true, release: true, seq_cst: true },
        }
    }
}

/// One store in a location's modification order.
struct StoreRec {
    val: u64,
    /// Writing thread; `usize::MAX` marks the initial value, which is
    /// treated as happening-before every reader (an atomic cannot be
    /// shared in safe Rust without an edge from its creation).
    writer: usize,
    /// The writer's own clock component at store time (for the
    /// hidden-store test).
    stamp: u32,
    /// The writer's full clock if this store releases (directly, or as
    /// an RMW continuing a release sequence); acquire readers join it.
    rel: Option<VClock>,
}

struct Location {
    history: Vec<StoreRec>,
}

#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum Status {
    Runnable,
    BlockedMutex(usize),
    BlockedCv(usize),
    BlockedJoin(usize),
    Finished,
}

struct ThreadInfo {
    status: Status,
    vc: VClock,
    /// Per-location coherence floor: the largest modification-order
    /// index this thread has read or written (it may never read older).
    read_idx: Vec<usize>,
}

struct MutexState {
    owner: Option<usize>,
    /// Accumulated release clock: every unlock joins into it, every
    /// lock joins from it (the lock's happens-before edge).
    rel: VClock,
}

struct CvState {
    waiters: Vec<usize>,
}

/// What kind of decision a choice point is (PCT treats them
/// differently; DFS and replay do not).
pub(crate) enum Choice<'a> {
    /// Pick which runnable thread executes the next operation.
    Thread(&'a [usize]),
    /// Pick among `n` data alternatives (which store a load reads,
    /// which condvar waiter a notify wakes).
    Data(usize),
}

/// A scheduling policy: maps each choice point to one option index.
pub(crate) enum Policy {
    /// Depth-first enumeration of the whole choice tree.
    Dfs { stack: Vec<(usize, usize)>, depth: usize },
    /// Uniform-random choices from a split-mix stream.
    Random { rng: u64 },
    /// PCT-style: random thread priorities, highest-priority runnable
    /// thread runs, with `depth` priority-change points; data choices
    /// are uniform-random.
    Pct { rng: u64, prios: Vec<u64>, change: Vec<usize>, step: usize, next_low: u64 },
    /// Replays a recorded choice sequence exactly.
    Replay { trace: Vec<usize>, pos: usize },
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Policy {
    pub(crate) fn pct(seed: u64, depth: usize, horizon: usize) -> Policy {
        let mut rng = seed ^ 0xD1B5_4A32_D192_ED03;
        let change = (0..depth).map(|_| (splitmix(&mut rng) as usize) % horizon.max(1)).collect();
        Policy::Pct { rng, prios: Vec::new(), change, step: 0, next_low: 0 }
    }

    fn choose(&mut self, c: &Choice<'_>) -> usize {
        let n = match c {
            Choice::Thread(tids) => tids.len(),
            Choice::Data(n) => *n,
        };
        debug_assert!(n >= 1);
        match self {
            Policy::Dfs { stack, depth } => {
                let d = *depth;
                *depth += 1;
                if d < stack.len() {
                    stack[d].1 = n;
                    stack[d].0.min(n - 1)
                } else {
                    stack.push((0, n));
                    0
                }
            }
            Policy::Random { rng } => (splitmix(rng) as usize) % n,
            Policy::Pct { rng, prios, change, step, next_low } => {
                match c {
                    Choice::Thread(tids) => {
                        while prios.len() <= *tids.iter().max().unwrap() {
                            let p = splitmix(rng) | (1 << 32);
                            prios.push(p);
                        }
                        *step += 1;
                        let best = |prios: &[u64]| {
                            tids.iter()
                                .enumerate()
                                .max_by_key(|(_, &t)| prios[t])
                                .map(|(i, _)| i)
                                .unwrap()
                        };
                        if change.contains(step) {
                            // Demote the thread that would have run:
                            // the PCT priority-change point.
                            let i = best(prios);
                            *next_low += 1;
                            prios[tids[i]] = *next_low;
                        }
                        best(prios)
                    }
                    Choice::Data(n) => (splitmix(rng) as usize) % n,
                }
            }
            Policy::Replay { trace, pos } => {
                let i = *pos;
                *pos += 1;
                let c = trace.get(i).copied().unwrap_or_else(|| {
                    panic!("shuttle replay diverged: trace ended at choice {i}")
                });
                assert!(c < n, "shuttle replay diverged: choice {i} is {c} of {n} options");
                c
            }
        }
    }
}

struct ExecState {
    threads: Vec<ThreadInfo>,
    current: usize,
    locs: Vec<Location>,
    mutexes: Vec<MutexState>,
    cvs: Vec<CvState>,
    /// The global SC clock (approximates C11's total order S).
    sc: VClock,
    policy: Policy,
    /// Every choice made this run, in order (the replayable schedule).
    trace: Vec<usize>,
    steps: usize,
    failure: Option<Failure>,
    aborted: bool,
    real: Vec<std::thread::JoinHandle<()>>,
}

/// A recorded failure: the panic message plus the choice trace that
/// reached it.
#[derive(Clone, Debug)]
pub(crate) struct Failure {
    pub msg: String,
    pub trace: Vec<usize>,
}

pub(crate) struct ExecInner {
    pub(crate) epoch: u32,
    state: Mutex<ExecState>,
    cv: Condvar,
    max_steps: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<ExecInner>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling thread's model context, if it is a model thread.
pub(crate) fn ctx() -> Option<(Arc<ExecInner>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(v: Option<(Arc<ExecInner>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = v);
}

/// Binds the calling OS thread to a model thread id (used by the spawn
/// wrapper on the child side).
pub(crate) fn adopt(exec: Arc<ExecInner>, tid: usize) {
    set_ctx(Some((exec, tid)));
}

static EPOCHS: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(1);

pub(crate) fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

impl ExecInner {
    fn new(policy: Policy, max_steps: usize) -> ExecInner {
        ExecInner {
            epoch: EPOCHS.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            state: Mutex::new(ExecState {
                threads: vec![ThreadInfo {
                    status: Status::Runnable,
                    vc: vec![1],
                    read_idx: Vec::new(),
                }],
                current: 0,
                locs: Vec::new(),
                mutexes: Vec::new(),
                cvs: Vec::new(),
                sc: Vec::new(),
                policy,
                trace: Vec::new(),
                steps: 0,
                failure: None,
                aborted: false,
                real: Vec::new(),
            }),
            cv: Condvar::new(),
            max_steps,
        }
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(crate) fn is_aborted(&self) -> bool {
        self.lock().aborted
    }

    /// Records the first failure (later ones lose) and tears the run
    /// down: every parked model thread unblocks into an `Abort` panic.
    pub(crate) fn record_failure(&self, msg: String) {
        let mut st = self.lock();
        if st.failure.is_none() {
            let trace = st.trace.clone();
            st.failure = Some(Failure { msg, trace });
        }
        st.aborted = true;
        self.cv.notify_all();
    }

    fn fail_locked(&self, st: &mut ExecState, msg: String) {
        if st.failure.is_none() {
            let trace = st.trace.clone();
            st.failure = Some(Failure { msg, trace });
        }
        st.aborted = true;
        self.cv.notify_all();
    }

    /// One choice: which thread runs the next operation. Blocks until
    /// the policy hands the token back to `me`.
    pub(crate) fn schedule(&self, me: usize) {
        let mut st = self.lock();
        if st.aborted {
            drop(st);
            panic::panic_any(Abort);
        }
        st.steps += 1;
        if st.steps > self.max_steps {
            let max = self.max_steps;
            self.fail_locked(
                &mut st,
                format!("schedule exceeded {max} steps — livelock or unbounded retry loop"),
            );
            drop(st);
            panic::panic_any(Abort);
        }
        let runnable: Vec<usize> =
            (0..st.threads.len()).filter(|&t| st.threads[t].status == Status::Runnable).collect();
        debug_assert!(runnable.contains(&me), "scheduling a non-runnable thread");
        // Single-option choices are not recorded: they add no branching,
        // and skipping them keeps DFS depth equal to real decisions.
        if runnable.len() == 1 {
            st.current = runnable[0];
        } else {
            let i = st.policy.choose(&Choice::Thread(&runnable));
            st.trace.push(i);
            st.current = runnable[i];
        }
        if st.current != me {
            self.cv.notify_all();
            self.wait_for_turn(st, me);
        }
    }

    /// Waits until `me` is both runnable and holds the token; panics
    /// `Abort` if the run was torn down meanwhile.
    fn wait_for_turn(&self, mut st: MutexGuard<'_, ExecState>, me: usize) {
        loop {
            if st.aborted {
                drop(st);
                panic::panic_any(Abort);
            }
            if st.current == me && st.threads[me].status == Status::Runnable {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks `me` with `status` and hands the token to someone else;
    /// returns (re-locked) once `me` is runnable and scheduled again.
    fn block_on(
        &self,
        mut st: MutexGuard<'_, ExecState>,
        me: usize,
        status: Status,
    ) -> MutexGuard<'_, ExecState> {
        st.threads[me].status = status;
        self.pick_next(&mut st);
        self.cv.notify_all();
        self.wait_for_turn(st, me);
        self.lock()
    }

    /// Hands the token to some runnable thread; detects deadlock and
    /// run completion when there is none.
    fn pick_next(&self, st: &mut ExecState) {
        let runnable: Vec<usize> =
            (0..st.threads.len()).filter(|&t| st.threads[t].status == Status::Runnable).collect();
        if runnable.is_empty() {
            if st.threads.iter().any(|t| t.status != Status::Finished) {
                let blocked: Vec<String> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.status != Status::Finished)
                    .map(|(i, t)| format!("thread {i}: {:?}", t.status))
                    .collect();
                self.fail_locked(st, format!("deadlock: {}", blocked.join(", ")));
            }
            // All finished: nothing to schedule; the controller's
            // completion wait observes it via the notify below.
            return;
        }
        if runnable.len() == 1 {
            st.current = runnable[0];
        } else {
            let i = st.policy.choose(&Choice::Thread(&runnable));
            st.trace.push(i);
            st.current = runnable[i];
        }
    }

    // -- locations ----------------------------------------------------

    pub(crate) fn register_loc(&self, init: u64) -> usize {
        let mut st = self.lock();
        st.locs.push(Location {
            history: vec![StoreRec { val: init, writer: usize::MAX, stamp: 0, rel: None }],
        });
        st.locs.len() - 1
    }

    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.lock();
        st.mutexes.push(MutexState { owner: None, rel: Vec::new() });
        st.mutexes.len() - 1
    }

    pub(crate) fn register_cv(&self) -> usize {
        let mut st = self.lock();
        st.cvs.push(CvState { waiters: Vec::new() });
        st.cvs.len() - 1
    }

    // -- the memory model ---------------------------------------------

    /// Coherence floor for `me` at `loc`: the newest store it must not
    /// read behind (already-read stores and stores that happen-before).
    fn floor(st: &ExecState, me: usize, loc: usize) -> usize {
        let h = &st.locs[loc].history;
        let mut lo = st.threads[me].read_idx.get(loc).copied().unwrap_or(0);
        let vc = &st.threads[me].vc;
        for (k, rec) in h.iter().enumerate().skip(lo + 1) {
            let hb =
                rec.writer == usize::MAX || vc.get(rec.writer).copied().unwrap_or(0) >= rec.stamp;
            if hb {
                lo = k;
            }
        }
        lo
    }

    fn note_read(st: &mut ExecState, me: usize, loc: usize, idx: usize) {
        let ri = &mut st.threads[me].read_idx;
        if ri.len() <= loc {
            ri.resize(loc + 1, 0);
        }
        ri[loc] = idx;
    }

    /// An atomic load: a schedule point, then a (possibly stale) read
    /// chosen by the policy among the non-hidden stores.
    pub(crate) fn atomic_load(&self, me: usize, loc: usize, o: OrdBits) -> u64 {
        self.schedule(me);
        let mut st = self.lock();
        if o.seq_cst {
            let sc = st.sc.clone();
            vc_join(&mut st.threads[me].vc, &sc);
        }
        let lo = Self::floor(&st, me, loc);
        let n = st.locs[loc].history.len() - lo;
        let j = if n > 1 {
            let c = st.policy.choose(&Choice::Data(n));
            st.trace.push(c);
            lo + c
        } else {
            lo
        };
        Self::note_read(&mut st, me, loc, j);
        let (val, rel) = {
            let rec = &st.locs[loc].history[j];
            (rec.val, rec.rel.clone())
        };
        if o.acquire {
            if let Some(rel) = rel {
                vc_join(&mut st.threads[me].vc, &rel);
            }
        }
        val
    }

    /// An atomic store: appends to the modification order; a release
    /// store carries the writer's clock.
    pub(crate) fn atomic_store(&self, me: usize, loc: usize, val: u64, o: OrdBits) {
        self.schedule(me);
        let mut st = self.lock();
        if o.seq_cst {
            let sc = st.sc.clone();
            vc_join(&mut st.threads[me].vc, &sc);
        }
        st.threads[me].vc[me] += 1;
        let stamp = st.threads[me].vc[me];
        let rel = o.release.then(|| st.threads[me].vc.clone());
        st.locs[loc].history.push(StoreRec { val, writer: me, stamp, rel });
        let idx = st.locs[loc].history.len() - 1;
        Self::note_read(&mut st, me, loc, idx);
        if o.seq_cst {
            let vc = st.threads[me].vc.clone();
            vc_join(&mut st.sc, &vc);
        }
    }

    /// An atomic read-modify-write: always operates on the newest store
    /// (RMW atomicity), continues release sequences through itself.
    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        loc: usize,
        f: impl FnOnce(u64) -> u64,
        o: OrdBits,
    ) -> u64 {
        self.schedule(me);
        let mut st = self.lock();
        if o.seq_cst {
            let sc = st.sc.clone();
            vc_join(&mut st.threads[me].vc, &sc);
        }
        let (old, prev_rel) = {
            let rec = st.locs[loc].history.last().expect("location has an initial store");
            (rec.val, rec.rel.clone())
        };
        if o.acquire {
            if let Some(rel) = prev_rel.clone() {
                vc_join(&mut st.threads[me].vc, &rel);
            }
        }
        st.threads[me].vc[me] += 1;
        let stamp = st.threads[me].vc[me];
        // Release-sequence continuation: a reader that acquires this
        // RMW's store synchronizes with the head release store too.
        let rel = match (o.release.then(|| st.threads[me].vc.clone()), prev_rel) {
            (Some(mut mine), Some(prev)) => {
                vc_join(&mut mine, &prev);
                Some(mine)
            }
            (Some(mine), None) => Some(mine),
            (None, prev) => prev,
        };
        let val = f(old);
        st.locs[loc].history.push(StoreRec { val, writer: me, stamp, rel });
        let idx = st.locs[loc].history.len() - 1;
        Self::note_read(&mut st, me, loc, idx);
        if o.seq_cst {
            let vc = st.threads[me].vc.clone();
            vc_join(&mut st.sc, &vc);
        }
        old
    }

    /// Compare-exchange: success is an RMW on the newest store; failure
    /// is modeled as a read of the newest store with the failure
    /// ordering's acquire side (stronger than C11, which lets a failed
    /// CAS read stale values — recorded in DESIGN.md §10.4).
    pub(crate) fn atomic_cas(
        &self,
        me: usize,
        loc: usize,
        expected: u64,
        new: u64,
        ok: OrdBits,
        err: OrdBits,
    ) -> Result<u64, u64> {
        self.schedule(me);
        let mut st = self.lock();
        let latest = st.locs[loc].history.last().expect("location has an initial store").val;
        if latest == expected {
            drop(st);
            // Re-uses the RMW path (without an extra schedule point).
            return Ok(self.rmw_locked(me, loc, |_| new, ok));
        }
        if err.seq_cst {
            let sc = st.sc.clone();
            vc_join(&mut st.threads[me].vc, &sc);
        }
        let idx = st.locs[loc].history.len() - 1;
        Self::note_read(&mut st, me, loc, idx);
        if err.acquire {
            let rel = st.locs[loc].history[idx].rel.clone();
            if let Some(rel) = rel {
                vc_join(&mut st.threads[me].vc, &rel);
            }
        }
        Err(latest)
    }

    /// The RMW body without the leading schedule point (the CAS already
    /// scheduled).
    fn rmw_locked(&self, me: usize, loc: usize, f: impl FnOnce(u64) -> u64, o: OrdBits) -> u64 {
        let mut st = self.lock();
        if o.seq_cst {
            let sc = st.sc.clone();
            vc_join(&mut st.threads[me].vc, &sc);
        }
        let (old, prev_rel) = {
            let rec = st.locs[loc].history.last().expect("location has an initial store");
            (rec.val, rec.rel.clone())
        };
        if o.acquire {
            if let Some(rel) = prev_rel.clone() {
                vc_join(&mut st.threads[me].vc, &rel);
            }
        }
        st.threads[me].vc[me] += 1;
        let stamp = st.threads[me].vc[me];
        let rel = match (o.release.then(|| st.threads[me].vc.clone()), prev_rel) {
            (Some(mut mine), Some(prev)) => {
                vc_join(&mut mine, &prev);
                Some(mine)
            }
            (Some(mine), None) => Some(mine),
            (None, prev) => prev,
        };
        let val = f(old);
        st.locs[loc].history.push(StoreRec { val, writer: me, stamp, rel });
        let idx = st.locs[loc].history.len() - 1;
        Self::note_read(&mut st, me, loc, idx);
        if o.seq_cst {
            let vc = st.threads[me].vc.clone();
            vc_join(&mut st.sc, &vc);
        }
        old
    }

    /// A fence. Only `SeqCst` fences are modeled (the only kind the
    /// workspace uses): join the SC clock both ways, which makes a
    /// fence-fence pair transfer visibility in execution order.
    pub(crate) fn fence(&self, me: usize, o: OrdBits) {
        assert!(o.seq_cst, "the shuttle stand-in models only fence(SeqCst)");
        self.schedule(me);
        let mut st = self.lock();
        let sc = st.sc.clone();
        vc_join(&mut st.threads[me].vc, &sc);
        st.threads[me].vc[me] += 1;
        let vc = st.threads[me].vc.clone();
        vc_join(&mut st.sc, &vc);
    }

    // -- mutexes and condvars -----------------------------------------

    pub(crate) fn mutex_lock(&self, me: usize, m: usize) {
        self.schedule(me);
        let mut st = self.lock();
        loop {
            if st.mutexes[m].owner.is_none() {
                st.mutexes[m].owner = Some(me);
                let rel = st.mutexes[m].rel.clone();
                vc_join(&mut st.threads[me].vc, &rel);
                st.threads[me].vc[me] += 1;
                return;
            }
            st = self.block_on(st, me, Status::BlockedMutex(m));
        }
    }

    /// Unlock is not a schedule point: it runs inside guard drops,
    /// which may execute while unwinding (a panic there would abort the
    /// process). The released state is still explored — every waiter
    /// wakes into ordinary schedule points.
    pub(crate) fn mutex_unlock(&self, me: usize, m: usize) {
        let mut st = self.lock();
        if st.aborted {
            return;
        }
        debug_assert_eq!(st.mutexes[m].owner, Some(me), "unlock by non-owner");
        st.mutexes[m].owner = None;
        st.threads[me].vc[me] += 1;
        let vc = st.threads[me].vc.clone();
        vc_join(&mut st.mutexes[m].rel, &vc);
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedMutex(m) {
                st.threads[t].status = Status::Runnable;
            }
        }
        self.cv.notify_all();
    }

    /// Condvar wait: atomically releases the mutex and parks; once
    /// notified, re-acquires through the ordinary lock path.
    pub(crate) fn cv_wait(&self, me: usize, cv: usize, m: usize) {
        self.schedule(me);
        let mut st = self.lock();
        st.cvs[cv].waiters.push(me);
        // Release the mutex exactly as mutex_unlock does.
        debug_assert_eq!(st.mutexes[m].owner, Some(me));
        st.mutexes[m].owner = None;
        st.threads[me].vc[me] += 1;
        let vc = st.threads[me].vc.clone();
        vc_join(&mut st.mutexes[m].rel, &vc);
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedMutex(m) {
                st.threads[t].status = Status::Runnable;
            }
        }
        let st = self.block_on(st, me, Status::BlockedCv(cv));
        drop(st);
        self.mutex_lock_relocked(me, m);
    }

    /// The lock path without the leading schedule point (wait resumes
    /// holding a fresh schedule slot already).
    fn mutex_lock_relocked(&self, me: usize, m: usize) {
        let mut st = self.lock();
        loop {
            if st.mutexes[m].owner.is_none() {
                st.mutexes[m].owner = Some(me);
                let rel = st.mutexes[m].rel.clone();
                vc_join(&mut st.threads[me].vc, &rel);
                st.threads[me].vc[me] += 1;
                return;
            }
            st = self.block_on(st, me, Status::BlockedMutex(m));
        }
    }

    pub(crate) fn cv_notify(&self, me: usize, cv: usize, all: bool) {
        self.schedule(me);
        let mut st = self.lock();
        if st.cvs[cv].waiters.is_empty() {
            return;
        }
        if all {
            let waiters = std::mem::take(&mut st.cvs[cv].waiters);
            for t in waiters {
                st.threads[t].status = Status::Runnable;
            }
        } else {
            let n = st.cvs[cv].waiters.len();
            let i = if n > 1 {
                let c = st.policy.choose(&Choice::Data(n));
                st.trace.push(c);
                c
            } else {
                0
            };
            let t = st.cvs[cv].waiters.remove(i);
            st.threads[t].status = Status::Runnable;
        }
        self.cv.notify_all();
    }

    // -- threads ------------------------------------------------------

    /// Registers a child thread (clock seeded from the parent: spawn is
    /// a happens-before edge) and returns its tid.
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut st = self.lock();
        st.threads[parent].vc[parent] += 1;
        let tid = st.threads.len();
        let mut vc = st.threads[parent].vc.clone();
        if vc.len() <= tid {
            vc.resize(tid + 1, 0);
        }
        vc[tid] = 1;
        st.threads.push(ThreadInfo { status: Status::Runnable, vc, read_idx: Vec::new() });
        tid
    }

    pub(crate) fn add_real_handle(&self, h: std::thread::JoinHandle<()>) {
        self.lock().real.push(h);
    }

    /// Parks a fresh child thread until it is scheduled for the first
    /// time.
    pub(crate) fn wait_first_schedule(&self, me: usize) {
        let st = self.lock();
        self.wait_for_turn(st, me);
    }

    /// Marks `me` finished, wakes joiners, and hands the token on.
    pub(crate) fn finish_thread(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me].status = Status::Finished;
        st.threads[me].vc[me] += 1;
        for t in 0..st.threads.len() {
            if st.threads[t].status == Status::BlockedJoin(me) {
                st.threads[t].status = Status::Runnable;
            }
        }
        if !st.aborted {
            self.pick_next(&mut st);
        }
        self.cv.notify_all();
    }

    /// Joins `target`: blocks until it finishes, then joins its final
    /// clock (join is a happens-before edge).
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        self.schedule(me);
        let mut st = self.lock();
        while st.threads[target].status != Status::Finished {
            st = self.block_on(st, me, Status::BlockedJoin(target));
        }
        let vc = st.threads[target].vc.clone();
        vc_join(&mut st.threads[me].vc, &vc);
        st.threads[me].vc[me] += 1;
    }

    /// Controller-side: waits for every model thread to finish (or the
    /// run to abort with stragglers parked), then reaps the OS threads.
    fn drain(&self) -> Option<Failure> {
        let mut st = self.lock();
        // On abort, every parked thread wakes into an `Abort` panic and
        // reaches `finish_thread` through its wrapper, so this loop
        // terminates in both the clean and the torn-down case.
        while st.threads.iter().any(|t| t.status != Status::Finished) {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let real = std::mem::take(&mut st.real);
        let failure = st.failure.clone();
        drop(st);
        for h in real {
            let _ = h.join();
        }
        failure
    }
}

/// Outcome of one schedule (a failure carries its own choice trace).
pub(crate) struct RunOutcome {
    pub failure: Option<Failure>,
    /// The policy, returned for cross-run state (the DFS stack).
    pub policy: Policy,
}

/// Runs `f` once under `policy` and returns what happened.
pub(crate) fn run_once(policy: Policy, max_steps: usize, f: &(impl Fn() + ?Sized)) -> RunOutcome {
    assert!(ctx().is_none(), "nested shuttle executions are not supported");
    let exec = Arc::new(ExecInner::new(policy, max_steps));
    set_ctx(Some((exec.clone(), 0)));
    let r = panic::catch_unwind(AssertUnwindSafe(f));
    if let Err(p) = r {
        if p.downcast_ref::<Abort>().is_none() {
            exec.record_failure(panic_msg(p.as_ref()));
        }
    }
    exec.finish_thread(0);
    let failure = exec.drain();
    set_ctx(None);
    let policy = {
        let mut st = exec.lock();
        std::mem::replace(&mut st.policy, Policy::Random { rng: 0 })
    };
    RunOutcome { failure, policy }
}
