//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset used by this workspace's benches (see
//! `vendor/README.md`). Each benchmark runs a small fixed number of
//! iterations and prints the mean wall-clock time per iteration. This is
//! a smoke harness for environments without crates.io access, not a
//! statistics engine: no warm-up, no outlier analysis, no reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched*` amortises setup cost. All variants behave the
/// same here: setup runs once per iteration, outside the timed region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Throughput annotation; recorded so `bench_function` can print a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Times one benchmark routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `iters` times inside one timed region.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Per-iteration setup (untimed) feeding an owned input to `routine`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Per-iteration setup (untimed) feeding `&mut` input to `routine`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level harness state.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 5 }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the cargo-bench CLI flags
    /// (`--bench`, filters, `--save-baseline`, …) are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.iters = sample_to_iters(n);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let iters = self.iters;
        eprintln!("group {name}");
        BenchmarkGroup { criterion: self, name, iters, throughput: None }
    }

    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut routine: R,
    ) -> &mut Self {
        let per_iter = run_one(self.iters, &mut routine);
        report("", id, self.iters, per_iter, None);
        self
    }

    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)] // held so the group borrows the harness, as upstream does
    criterion: &'a mut Criterion,
    name: String,
    iters: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = sample_to_iters(n);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<I, R>(&mut self, id: I, mut routine: R) -> &mut Self
    where
        I: std::fmt::Display,
        R: FnMut(&mut Bencher),
    {
        let per_iter = run_one(self.iters, &mut routine);
        report(&self.name, &id.to_string(), self.iters, per_iter, self.throughput);
        self
    }

    pub fn finish(self) {}
}

fn sample_to_iters(sample_size: usize) -> u64 {
    // Upstream's sample_size counts samples (default 100); map it to a
    // proportionally smaller iteration count, min 2.
    ((sample_size / 10) as u64).max(2)
}

fn run_one<R: FnMut(&mut Bencher)>(iters: u64, routine: &mut R) -> Duration {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    routine(&mut b);
    if b.iters == 0 {
        return Duration::ZERO;
    }
    b.elapsed / b.iters as u32
}

fn report(group: &str, id: &str, iters: u64, per_iter: Duration, throughput: Option<Throughput>) {
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / per_iter.as_secs_f64())
        }
        Some(Throughput::Bytes(n) | Throughput::BytesDecimal(n)) if per_iter > Duration::ZERO => {
            format!("  ({:.0} B/s)", n as f64 / per_iter.as_secs_f64())
        }
        _ => String::new(),
    };
    eprintln!("  {label}: {per_iter:?}/iter over {iters} iters{rate}");
}

/// Expands to a function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("counter", |b| b.iter(|| count += 1));
        assert_eq!(count, 5);
    }

    #[test]
    fn group_batched_runs_setup_per_iter() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(20);
        let mut setups = 0u64;
        g.bench_function("b", |b| {
            b.iter_batched_ref(
                || {
                    setups += 1;
                    vec![1u8]
                },
                |v| v.push(2),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(setups, 2);
    }
}
