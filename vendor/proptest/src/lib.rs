//! Offline stand-in for `proptest`.
//!
//! Implements the API subset used by this workspace's property tests
//! (see `vendor/README.md`): the [`strategy::Strategy`] trait with
//! `prop_map`/`prop_flat_map`, integer range and tuple strategies,
//! [`collection::vec`], and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros. Case generation is deterministic
//! (seeded per case index); there is no shrinking — a failing case
//! panics with its case index so it can be replayed by rerunning.

pub mod rng {
    /// SplitMix64: tiny, deterministic, good enough for test-case
    /// generation (not cryptographic).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi)`. `hi` must exceed `lo`.
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(hi > lo);
            lo + self.next_u64() % (hi - lo)
        }
    }
}

pub mod strategy {
    use crate::rng::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.below(self.start as u64, self.end as u64) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                    assert!(lo <= hi, "empty range strategy");
                    if lo == hi {
                        return lo as $t;
                    }
                    if hi - lo == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    rng.below(lo, hi + 1) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, usize);

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.below(self.size.lo as u64, self.size.hi as u64 + 1) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property; carries the rendered assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl ::std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Mirrors upstream's `prop` facade module (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the enclosing proptest case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing proptest case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}: `{:?}` != `{:?}`", format!($($fmt)+), left, right
        );
    }};
}

/// Fails the enclosing proptest case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}: `{:?}` == `{:?}`", format!($($fmt)+), left, right
        );
    }};
}

/// Declares `#[test]` functions whose arguments are drawn from
/// strategies. Supports the `#![proptest_config(..)]` header.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let mut rng = $crate::rng::TestRng::new(
                    0x5EED_0000_0000_0000 ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D),
                );
                $( let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name), case, cfg.cases, err
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::rng::TestRng::new(7);
        for _ in 0..200 {
            let v = Strategy::generate(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let w = Strategy::generate(&(5usize..=5), &mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::rng::TestRng::new(11);
        let strat = prop::collection::vec(0u32..10, 2..6);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(x in 1u32..100, (a, b) in (0u8..4, 0u8..4)) {
            prop_assert!(x >= 1);
            prop_assert!(x < 100);
            prop_assert_eq!(a as u16 + b as u16, b as u16 + a as u16);
        }

        #[test]
        fn flat_map_fixes_paired_lengths(
            (xs, ys) in (1usize..8).prop_flat_map(|n| (
                prop::collection::vec(0u32..5, n..=n),
                prop::collection::vec(0u32..5, n..=n),
            ))
        ) {
            prop_assert_eq!(xs.len(), ys.len());
        }
    }
}
