//! `tss` — command-line driver for the task-superscalar simulator.
//!
//! ```text
//! tss list                                  # the nine Table-I benchmarks
//! tss run --bench cholesky --processors 64  # one simulation, full report
//! tss run --bench h264 --engine sw          # software-runtime baseline
//! tss graph --bench cholesky --n 5          # Figure-1 DOT to stdout
//! tss export --bench stap --scale small     # trace text format to stdout
//! ```

use std::process::exit;

use task_superscalar::core::SystemBuilder;
use task_superscalar::trace::{parallelism_profile, to_text, DepGraph};
use task_superscalar::workloads::{cholesky::CholeskyGen, Benchmark, Scale};
use tss_trace::TraceGenerator;

fn usage() -> ! {
    eprintln!(
        "usage:\n  tss list\n  tss run --bench <name> [--engine hw|sw] [--processors N]\n\
         \x20         [--scale small|paper|large] [--seed N] [--trs N] [--ort N]\n\
         \x20         [--no-renaming] [--no-chaining]\n  tss graph [--bench cholesky] [--n N]\n\
         \x20 tss export --bench <name> [--scale ...] [--seed N]"
    );
    exit(2)
}

fn bench_by_name(name: &str) -> Benchmark {
    Benchmark::all().into_iter().find(|b| b.name().eq_ignore_ascii_case(name)).unwrap_or_else(
        || {
            eprintln!("unknown benchmark '{name}'; try `tss list`");
            exit(2)
        },
    )
}

struct Opts {
    bench: Benchmark,
    scale: Scale,
    seed: u64,
    engine: String,
    processors: usize,
    trs: Option<usize>,
    ort: Option<usize>,
    renaming: bool,
    chaining: bool,
    n: usize,
}

fn parse(args: &[String]) -> Opts {
    let mut o = Opts {
        bench: Benchmark::Cholesky,
        scale: Scale::Small,
        seed: 42,
        engine: "hw".into(),
        processors: 256,
        trs: None,
        ort: None,
        renaming: true,
        chaining: true,
        n: 5,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || it.next().map(|s| s.to_string()).unwrap_or_else(|| usage());
        match a.as_str() {
            "--bench" => o.bench = bench_by_name(&val()),
            "--scale" => {
                o.scale = match val().as_str() {
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    "large" => Scale::Large,
                    _ => usage(),
                }
            }
            "--seed" => o.seed = val().parse().unwrap_or_else(|_| usage()),
            "--engine" => o.engine = val(),
            "--processors" | "-p" => o.processors = val().parse().unwrap_or_else(|_| usage()),
            "--trs" => o.trs = Some(val().parse().unwrap_or_else(|_| usage())),
            "--ort" => o.ort = Some(val().parse().unwrap_or_else(|_| usage())),
            "--no-renaming" => o.renaming = false,
            "--no-chaining" => o.chaining = false,
            "--n" => o.n = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    o
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let rest = &args[1..];

    match cmd.as_str() {
        "list" => {
            println!("benchmark  class                 (Table I)");
            for b in Benchmark::all() {
                let (data, min, med, avg, rate) = b.table1_reference();
                println!(
                    "{:<9}  data {:>4.0} KB  runtimes {:>3.0}/{:>3.0}/{:>3.0} us  rate limit {:>3.0} ns",
                    b.name(),
                    data,
                    min,
                    med,
                    avg,
                    rate
                );
            }
        }
        "run" => {
            let o = parse(rest);
            let trace = o.bench.trace(o.scale, o.seed);
            eprintln!("{}: {} tasks ({:?} scale)", o.bench, trace.len(), o.scale);
            let builder = SystemBuilder::new().processors(o.processors).with_frontend(|f| {
                if let Some(t) = o.trs {
                    f.num_trs = t;
                }
                if let Some(t) = o.ort {
                    f.num_ort = t;
                }
                f.renaming = o.renaming;
                f.chaining = o.chaining;
            });
            let report = match o.engine.as_str() {
                "hw" => builder.run_hardware(&trace),
                "sw" => builder.run_software(&trace),
                _ => usage(),
            };
            println!("engine:        {:?}", report.engine);
            println!("processors:    {}", report.processors);
            println!("tasks:         {}", report.tasks);
            println!(
                "makespan:      {} cycles ({:.2} ms)",
                report.makespan,
                task_superscalar::sim::cycles_to_us(report.makespan) / 1000.0
            );
            println!("speedup:       {:.1}x over sequential", report.speedup());
            println!(
                "decode rate:   {:.0} cycles/task ({:.0} ns)",
                report.decode_rate_cycles,
                report.decode_rate_ns()
            );
            println!("window peak:   {} in-flight tasks", report.window_peak);
            println!("core util:     {:.1}%", report.core_utilization * 100.0);
            if let Some(fe) = &report.frontend {
                println!(
                    "frontend:      {} renames, {} copybacks ({} KB), {} chain forwards",
                    fe.ort.renames,
                    fe.ort.copybacks,
                    fe.ort.copyback_bytes >> 10,
                    fe.chain_forwards
                );
                println!("storage waste: {:.1}% (paper: ~20%)", fe.avg_storage_waste * 100.0);
            }
        }
        "graph" => {
            let o = parse(rest);
            let trace = CholeskyGen::new(o.n).generate(o.seed);
            let graph = DepGraph::from_trace(&trace);
            let profile = parallelism_profile(&trace, &graph);
            eprintln!(
                "Cholesky {0}x{0}: {1} tasks, avg parallelism {2:.1}",
                o.n,
                trace.len(),
                profile.avg_parallelism
            );
            print!("{}", graph.to_dot(&trace));
        }
        "export" => {
            let o = parse(rest);
            let trace = o.bench.trace(o.scale, o.seed);
            print!("{}", to_text(&trace));
        }
        _ => usage(),
    }
}
