//! # task-superscalar
//!
//! A from-scratch Rust reproduction of *"Task Superscalar: An
//! Out-of-Order Task Pipeline"* (Etsion et al., MICRO 2010): a task-level
//! abstraction of an out-of-order processor pipeline that decodes
//! inter-task data dependencies in hardware and drives a many-core CMP
//! with its processors acting as functional units.
//!
//! This crate is a facade re-exporting the workspace's crates:
//!
//! - [`sim`] — deterministic discrete-event simulation engine,
//! - [`trace`] — task/operand model, traces, and the dependency oracle,
//! - [`noc`] — segmented two-level ring interconnect (Table II),
//! - [`mem`] — L1/L2/directory-MSI cache hierarchy model,
//! - [`pipeline`] — the task superscalar frontend: Gateway, ORT, OVT, TRS,
//! - [`backend`] — ready queue, scheduler, worker cores, DMA,
//! - [`runtime`] — the StarSs-like software decoder baseline,
//! - [`workloads`] — the nine Table-I benchmark generators,
//! - [`core`] — system assembly and the experiment API,
//! - [`exec`] — the *native* out-of-order executor: real threads
//!   replaying traces at host speed, oracle-validated.
//!
//! # Quickstart
//!
//! ```
//! use task_superscalar::prelude::*;
//!
//! // Blocked Cholesky on a 5x5 matrix: the paper's Figure 1 (35 tasks).
//! let trace = workloads::cholesky::CholeskyGen::new(5).generate(1);
//! assert_eq!(trace.len(), 35);
//!
//! // Run it through the hardware task pipeline on a 32-core backend.
//! let report = SystemBuilder::new()
//!     .processors(32)
//!     .run_hardware(&trace);
//! assert!(report.speedup() > 1.0);
//! ```

#![forbid(unsafe_code)]

pub use tss_backend as backend;
pub use tss_core as core;
pub use tss_exec as exec;
pub use tss_mem as mem;
pub use tss_noc as noc;
pub use tss_pipeline as pipeline;
pub use tss_runtime as runtime;
pub use tss_sim as sim;
pub use tss_trace as trace;
pub use tss_workloads as workloads;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use tss_core::{ExperimentConfig, RunReport, SystemBuilder};
    pub use tss_exec::{
        ExecConfig, ExecError, ExecReport, Executor, FailurePolicy, PayloadMode, StreamingRenamer,
        TaskGraphBuilder,
    };
    pub use tss_sim::{cycles_to_ns, cycles_to_us, ns_to_cycles, us_to_cycles, Cycle};
    pub use tss_trace::{
        DepGraph, Direction, OperandDesc, OperandKind, TaskDesc, TaskTrace, TraceGenerator,
    };
    pub use tss_workloads::{self as workloads, Benchmark};
}
