//! `tss-client`: a blocking client for the `tss-server` gateway
//! (DESIGN.md §14), plus the seeded wire-chaos machinery the loadgen
//! and the server's chaos suite share (DESIGN.md §14.5).
//!
//! The client is deliberately dumb: one thread, one socket, explicit
//! frame-level operations. Graph submission pipelines (a quota's worth
//! of graphs can be in flight), so `Done` frames for earlier graphs
//! may interleave with the `Accepted`/`Reject` answer to a later seal;
//! [`Client::submit`] and [`Client::wait_done`] park stray outcomes in
//! a pending map instead of losing them.

#![forbid(unsafe_code)]

pub mod chaos;

use std::collections::HashMap;
use std::io;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};

use tss_proto::{
    graph_frames, read_frame, write_frame, Frame, GraphOutcome, RejectReason, SessionErrorKind,
    WireError, VERSION,
};
use tss_trace::TaskTrace;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write, close).
    Wire(WireError),
    /// The server closed the session with a structured error frame.
    SessionError {
        /// What class of error the server reported.
        kind: SessionErrorKind,
        /// The server's human-readable detail.
        detail: String,
    },
    /// The server answered with a frame the protocol does not allow
    /// at this point (a server bug, or a non-TSS peer).
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "transport error: {e}"),
            ClientError::SessionError { kind, detail } => {
                write!(f, "server closed the session ({kind:?}): {detail}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected server frame: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> ClientError {
        ClientError::Wire(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Wire(WireError::Io(e))
    }
}

/// How the server answered a sealed graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submission {
    /// Admitted and queued; a `Done` frame will follow eventually.
    Accepted,
    /// Refused; the graph was discarded server-side.
    Rejected(RejectReason),
}

/// A connected, handshaken session.
pub struct Client {
    stream: TcpStream,
    /// `Done` outcomes that arrived while waiting for something else.
    pending: HashMap<u64, GraphOutcome>,
}

impl Client {
    /// Connects and performs the `Hello`/`HelloAck` handshake.
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client { stream, pending: HashMap::new() };
        client.send(&Frame::Hello { version: VERSION })?;
        match client.recv()? {
            Frame::HelloAck { .. } => Ok(client),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends one frame.
    pub fn send(&mut self, frame: &Frame) -> Result<(), ClientError> {
        write_frame(&mut self.stream, frame)?;
        Ok(())
    }

    /// Writes raw bytes (the chaos submitter's corruption path).
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    /// Reads the next frame, turning a `SessionError` into the
    /// structured [`ClientError::SessionError`].
    pub fn recv(&mut self) -> Result<Frame, ClientError> {
        match read_frame(&mut self.stream)? {
            Frame::SessionError { kind, detail } => Err(ClientError::SessionError { kind, detail }),
            frame => Ok(frame),
        }
    }

    /// Shuts down the write half so the server sees EOF while this
    /// side can still read (the truncation chaos shape).
    pub fn shutdown_write(&mut self) -> Result<(), ClientError> {
        self.stream.shutdown(std::net::Shutdown::Write)?;
        Ok(())
    }

    /// Streams a whole graph (`OpenGraph` → `Tasks`* → `Seal`) and
    /// waits for the admission answer, parking any interleaved `Done`
    /// frames for earlier graphs.
    pub fn submit(
        &mut self,
        graph: u64,
        deadline_ms: u32,
        trace: &TaskTrace,
        chunk: usize,
    ) -> Result<Submission, ClientError> {
        for frame in graph_frames(graph, deadline_ms, trace, chunk) {
            self.send(&frame)?;
        }
        self.await_admission(graph)
    }

    /// Waits for the `Accepted`/`Reject` answer to `graph`'s seal,
    /// parking interleaved `Done` frames (used directly by submitters
    /// that wrote the frames themselves, e.g. the chaos slow path).
    pub fn await_admission(&mut self, graph: u64) -> Result<Submission, ClientError> {
        loop {
            match self.recv()? {
                Frame::Accepted { graph: g } if g == graph => return Ok(Submission::Accepted),
                Frame::Reject { graph: g, reason } if g == graph => {
                    return Ok(Submission::Rejected(reason))
                }
                Frame::Done { graph: g, outcome } => {
                    self.pending.insert(g, outcome);
                }
                other => return Err(unexpected(&other)),
            }
        }
    }

    /// Blocks until `graph`'s `Done` frame arrives (or was already
    /// parked), parking other graphs' outcomes on the way.
    pub fn wait_done(&mut self, graph: u64) -> Result<GraphOutcome, ClientError> {
        if let Some(outcome) = self.pending.remove(&graph) {
            return Ok(outcome);
        }
        loop {
            match self.recv()? {
                Frame::Done { graph: g, outcome } if g == graph => return Ok(outcome),
                Frame::Done { graph: g, outcome } => {
                    self.pending.insert(g, outcome);
                }
                other => return Err(unexpected(&other)),
            }
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    /// `Done` frames racing the ack are parked as usual.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.send(&Frame::Shutdown)?;
        loop {
            match self.recv()? {
                Frame::ShutdownAck => return Ok(()),
                Frame::Done { graph, outcome } => {
                    self.pending.insert(graph, outcome);
                }
                other => return Err(unexpected(&other)),
            }
        }
    }

    /// Clean close: best-effort `Bye`, then drop the socket.
    pub fn bye(mut self) {
        let _ = self.send(&Frame::Bye);
    }
}

fn unexpected(frame: &Frame) -> ClientError {
    ClientError::Unexpected(format!("{frame:?}"))
}
