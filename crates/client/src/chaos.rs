//! Seeded wire chaos (DESIGN.md §14.5): deterministic client-side
//! misbehavior for proving the gateway's fault isolation.
//!
//! Every chaos decision is a pure hash of `(seed, client, graph)` —
//! no RNG state, no wall clock — so two runs with the same seed
//! misbehave identically regardless of thread interleaving, and the
//! CI gate can demand *exact* outcome counts. The modes cover the
//! classic ways a network peer goes wrong:
//!
//! - [`ChaosMode::Slow`] — a slow-loris writer: the whole submission
//!   dribbles out in small chunks with pauses. Must still complete
//!   (the server's read timeout bounds *silence*, not pace).
//! - [`ChaosMode::Truncate`] — the connection dies mid-frame. The
//!   server must answer with a structured `SessionError` and lose
//!   only this session.
//! - [`ChaosMode::BadFrame`] — a framed-but-garbage kind byte.
//!   Structured `SessionError`, session closed, nobody else harmed.
//! - [`ChaosMode::Vanish`] — the client gets its graph admitted and
//!   disappears without reading the outcome. The graph must still
//!   run, its outcome recorded server-side, the failed delivery
//!   counted — never wedging a runner or poisoning another session.

use std::net::SocketAddr;
use std::time::Duration;

use tss_proto::{encode_frame, graph_frames, Frame, GraphOutcome, RejectReason};
use tss_trace::TaskTrace;

use crate::{Client, ClientError, Submission};

/// What a chaos client does to one graph submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Behave: submit and read the outcome.
    None,
    /// Slow-loris writer; submission must still succeed.
    Slow,
    /// Cut the connection mid-frame.
    Truncate,
    /// Send a framed unknown-kind blob.
    BadFrame,
    /// Get admitted, then disappear without reading `Done`.
    Vanish,
}

impl ChaosMode {
    /// Stable name (reports, logs).
    pub fn name(self) -> &'static str {
        match self {
            ChaosMode::None => "none",
            ChaosMode::Slow => "slow",
            ChaosMode::Truncate => "truncate",
            ChaosMode::BadFrame => "badframe",
            ChaosMode::Vanish => "vanish",
        }
    }
}

/// SplitMix64 finalizer: the one mixing primitive behind every chaos
/// decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The chaos decision for `(seed, client, graph)`: pure, stateless,
/// identical across runs and thread counts. Half of all submissions
/// behave; the other half split evenly across the four attack shapes.
pub fn plan(seed: u64, client: u64, graph: u64) -> ChaosMode {
    let h = mix(seed ^ mix(client) ^ mix(graph).rotate_left(17));
    match h % 8 {
        4 => ChaosMode::Slow,
        5 => ChaosMode::Truncate,
        6 => ChaosMode::BadFrame,
        7 => ChaosMode::Vanish,
        _ => ChaosMode::None,
    }
}

/// How one chaos submission ended, from the client's point of view.
/// Under a fixed seed this is exactly reproducible per `(client,
/// graph)` as long as the server is not shedding load (the chaos
/// harness runs with admission headroom for that reason).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// Submitted, admitted, outcome read.
    Done(GraphOutcome),
    /// The server refused admission.
    Rejected(RejectReason),
    /// The server killed the session with a structured error after
    /// this client's truncation/garbage (reconnect before reusing).
    SessionKilled,
    /// Admitted, then this client vanished on purpose.
    Vanished,
}

/// Runs one graph submission under `mode`. `client` is this chaos
/// worker's connection slot: session-killing and vanishing modes
/// leave it `None`, and the next call reconnects — exactly what a
/// misbehaving-then-returning peer looks like to the server.
pub fn run_graph(
    addr: SocketAddr,
    client: &mut Option<Client>,
    mode: ChaosMode,
    graph: u64,
    deadline_ms: u32,
    trace: &TaskTrace,
    chunk: usize,
) -> Result<ChaosOutcome, ClientError> {
    if client.is_none() {
        *client = Some(Client::connect(addr)?);
    }
    let c = client.as_mut().expect("connected above");
    match mode {
        ChaosMode::None => match c.submit(graph, deadline_ms, trace, chunk)? {
            Submission::Accepted => Ok(ChaosOutcome::Done(c.wait_done(graph)?)),
            Submission::Rejected(reason) => Ok(ChaosOutcome::Rejected(reason)),
        },
        ChaosMode::Slow => {
            let mut bytes = Vec::new();
            for f in graph_frames(graph, deadline_ms, trace, chunk) {
                bytes.extend_from_slice(&encode_frame(&f));
            }
            for piece in bytes.chunks(512) {
                c.send_raw(piece)?;
                std::thread::sleep(Duration::from_millis(1));
            }
            match c.await_admission(graph)? {
                Submission::Accepted => Ok(ChaosOutcome::Done(c.wait_done(graph)?)),
                Submission::Rejected(reason) => Ok(ChaosOutcome::Rejected(reason)),
            }
        }
        ChaosMode::Truncate => {
            let frames = graph_frames(graph, deadline_ms, trace, chunk);
            c.send(&frames[0])?;
            // Cut the first Tasks frame in half, then close our write
            // half so the server sees EOF mid-frame.
            let tasks = encode_frame(&frames[1]);
            c.send_raw(&tasks[..tasks.len() / 2])?;
            c.shutdown_write()?;
            let killed = expect_session_killed(c);
            *client = None;
            killed.map(|()| ChaosOutcome::SessionKilled)
        }
        ChaosMode::BadFrame => {
            // A perfectly framed lie: length 1, unknown kind 0x7f.
            c.send_raw(&[1, 0, 0, 0, 0x7f])?;
            let killed = expect_session_killed(c);
            *client = None;
            killed.map(|()| ChaosOutcome::SessionKilled)
        }
        ChaosMode::Vanish => match c.submit(graph, deadline_ms, trace, chunk)? {
            Submission::Accepted => {
                // Drop the socket without reading Done: the server
                // owes nothing to us anymore, but everything to its
                // own outcome ledger.
                *client = None;
                Ok(ChaosOutcome::Vanished)
            }
            Submission::Rejected(reason) => Ok(ChaosOutcome::Rejected(reason)),
        },
    }
}

/// Reads until the server's structured session kill (or a bare close,
/// which some shapes can race into).
fn expect_session_killed(c: &mut Client) -> Result<(), ClientError> {
    loop {
        match c.recv() {
            Err(ClientError::SessionError { .. }) => return Ok(()),
            Err(ClientError::Wire(tss_proto::WireError::Closed)) => return Ok(()),
            Err(e) => return Err(e),
            // Stray Done frames from earlier pipelined graphs may
            // still be in flight; drain them.
            Ok(Frame::Done { .. }) => continue,
            Ok(other) => {
                return Err(ClientError::Unexpected(format!(
                    "expected session kill, got {other:?}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_pure_and_covers_every_mode() {
        let mut seen = [0usize; 5];
        for client in 0..8u64 {
            for graph in 0..64u64 {
                let a = plan(42, client, graph);
                let b = plan(42, client, graph);
                assert_eq!(a, b, "plan must be pure");
                let idx = match a {
                    ChaosMode::None => 0,
                    ChaosMode::Slow => 1,
                    ChaosMode::Truncate => 2,
                    ChaosMode::BadFrame => 3,
                    ChaosMode::Vanish => 4,
                };
                seen[idx] += 1;
            }
        }
        assert!(seen.iter().all(|&n| n > 0), "all modes exercised: {seen:?}");
        // Roughly half the grid should behave.
        assert!(seen[0] > 150 && seen[0] < 360, "none count {seen:?}");
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let grid = |seed: u64| -> Vec<ChaosMode> { (0..64).map(|g| plan(seed, 1, g)).collect() };
        assert_ne!(grid(1), grid(2));
    }
}
