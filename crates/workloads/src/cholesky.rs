//! Blocked Cholesky decomposition (Table I: math kernel; Figures 1 and 4).
//!
//! Reproduces exactly the task stream of the paper's Figure 4 StarSs
//! code: a right-looking blocked factorization over an `N×N` grid of
//! `M×M` blocks with four kernels (`sgemm`, `ssyrk`, `spotrf`, `strsm`).
//! For `N = 5` this yields the 35-task graph of Figure 1, with tasks 6
//! and 23 (creation order) mutually unreachable.

use crate::common::Layout;
use tss_sim::{us_to_cycles, Rng};
use tss_trace::{OperandDesc, TaskTrace, TraceGenerator};

/// Trace generator for blocked Cholesky.
#[derive(Debug, Clone)]
pub struct CholeskyGen {
    /// Matrix dimension in blocks (`N`).
    pub n: usize,
    /// Block payload in bytes (Table I: ~16 KB per operand makes the
    /// 47 KB average task footprint).
    pub block_bytes: u64,
}

impl CholeskyGen {
    /// A generator for an `n × n` block matrix.
    pub fn new(n: usize) -> Self {
        CholeskyGen { n, block_bytes: 16 << 10 }
    }

    /// Number of tasks the generator emits:
    /// `N spotrf + N(N−1)/2 strsm + N(N−1)/2 ssyrk + Σ_j j(N−1−j) sgemm`.
    pub fn task_count(&self) -> usize {
        let n = self.n;
        let sgemm: usize = (0..n).map(|j| j * (n - 1 - j)).sum();
        n + n * (n - 1) / 2 + n * (n - 1) / 2 + sgemm
    }
}

impl TraceGenerator for CholeskyGen {
    fn name(&self) -> &str {
        "Cholesky"
    }

    fn generate(&self, seed: u64) -> TaskTrace {
        let mut trace = TaskTrace::new("Cholesky");
        let sgemm = trace.add_kernel("sgemm");
        let ssyrk = trace.add_kernel("ssyrk");
        let spotrf = trace.add_kernel("spotrf");
        let strsm = trace.add_kernel("strsm");
        let mut rng = Rng::seeded(seed ^ 0xC401E5);
        let mut layout = Layout::new();
        let n = self.n;
        let b = self.block_bytes as u32;
        // A[i][j] block base addresses (lower triangle used).
        let blocks: Vec<Vec<u64>> =
            (0..n).map(|_| (0..n).map(|_| layout.object(self.block_bytes)).collect()).collect();

        // Per-kernel runtimes with small jitter; the blend reproduces
        // Table I's min 16 / median 33 / average 31 µs (sgemm dominates
        // the count for large N).
        let rt = |center_us: f64, rng: &mut Rng| {
            let jitter = 0.97 + 0.06 * rng.unit();
            us_to_cycles(center_us * jitter)
        };

        for j in 0..n {
            for k in 0..j {
                for i in (j + 1)..n {
                    let r = rt(33.0, &mut rng);
                    trace.push_task(
                        sgemm,
                        r,
                        vec![
                            OperandDesc::input(blocks[i][k], b),
                            OperandDesc::input(blocks[j][k], b),
                            OperandDesc::inout(blocks[i][j], b),
                        ],
                    );
                }
            }
            for i in 0..j {
                let r = rt(29.5, &mut rng);
                trace.push_task(
                    ssyrk,
                    r,
                    vec![OperandDesc::input(blocks[j][i], b), OperandDesc::inout(blocks[j][j], b)],
                );
            }
            let r = rt(16.5, &mut rng);
            trace.push_task(spotrf, r, vec![OperandDesc::inout(blocks[j][j], b)]);
            for i in (j + 1)..n {
                let r = rt(28.0, &mut rng);
                trace.push_task(
                    strsm,
                    r,
                    vec![OperandDesc::input(blocks[j][j], b), OperandDesc::inout(blocks[i][j], b)],
                );
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::DepGraph;

    #[test]
    fn five_by_five_matches_figure_one() {
        let gen = CholeskyGen::new(5);
        let trace = gen.generate(1);
        assert_eq!(trace.len(), 35, "Figure 1 has 35 tasks");
        assert_eq!(gen.task_count(), 35);
        let g = DepGraph::from_trace(&trace);
        // Paper: "the 6th and 23rd tasks (of 35) can, in fact, run in
        // parallel" (1-based creation order -> indices 5 and 22).
        assert!(!g.reachable(5, 22), "task 6 must not precede task 23");
        assert!(!g.reachable(22, 5), "task 23 must not precede task 6");
        // But the very first task gates the whole first panel.
        assert!(g.reachable(0, 1));
    }

    #[test]
    fn first_task_is_spotrf_and_roots_are_unique() {
        let trace = CholeskyGen::new(5).generate(1);
        assert_eq!(trace.kernel_name(trace.task(0).kernel), "spotrf");
        let g = DepGraph::from_trace(&trace);
        assert_eq!(g.roots().count(), 1, "only spotrf(A[0][0]) is initially ready");
    }

    #[test]
    fn task_count_formula_holds() {
        for n in [2, 3, 8, 16] {
            let gen = CholeskyGen::new(n);
            assert_eq!(gen.generate(0).len(), gen.task_count(), "n={n}");
        }
    }

    #[test]
    fn stats_near_table_one() {
        let trace = CholeskyGen::new(24).generate(7);
        let min_us = trace.min_runtime().unwrap() as f64 / 3200.0;
        let med_us = trace.median_runtime().unwrap() as f64 / 3200.0;
        let avg_us = trace.avg_runtime() / 3200.0;
        assert!((15.5..18.0).contains(&min_us), "min {min_us}");
        assert!((30.0..35.0).contains(&med_us), "med {med_us}");
        assert!((28.0..34.0).contains(&avg_us), "avg {avg_us}");
        let data_kb = trace.avg_data_bytes() / 1024.0;
        assert!((35.0..50.0).contains(&data_kb), "data {data_kb} KB");
    }

    #[test]
    fn at_most_three_operands_per_task() {
        // Section VI.A: "Cholesky tasks have at most 3 operands".
        let trace = CholeskyGen::new(10).generate(3);
        assert!(trace.iter().all(|t| t.operands.len() <= 3));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CholeskyGen::new(6).generate(9);
        let b = CholeskyGen::new(6).generate(9);
        assert_eq!(a.tasks(), b.tasks());
    }
}
