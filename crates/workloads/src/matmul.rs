//! Blocked matrix multiplication (Table I: math kernel).
//!
//! `C[i][j] += A[i][k] · B[k][j]` over an `N×N` block grid: `N³` sgemm
//! tasks; each `C` block forms an inout chain of length `N`, and the
//! `N²` chains are mutually independent — a canonically
//! renaming-friendly, wide dependency graph. Table I: 48 KB of data and
//! a flat 23 µs runtime per task.

use crate::common::Layout;
use tss_sim::{us_to_cycles, Rng};
use tss_trace::{OperandDesc, TaskTrace, TraceGenerator};

/// Trace generator for blocked MatMul.
#[derive(Debug, Clone)]
pub struct MatMulGen {
    /// Block-grid dimension `N` (tasks = `N³`).
    pub n: usize,
    /// Block payload in bytes (16 KB × 3 operands = Table I's 48 KB).
    pub block_bytes: u64,
}

impl MatMulGen {
    /// A generator for an `n × n` block grid.
    pub fn new(n: usize) -> Self {
        MatMulGen { n, block_bytes: 16 << 10 }
    }

    /// Number of tasks (`N³`).
    pub fn task_count(&self) -> usize {
        self.n * self.n * self.n
    }
}

impl TraceGenerator for MatMulGen {
    fn name(&self) -> &str {
        "MatMul"
    }

    fn generate(&self, seed: u64) -> TaskTrace {
        let mut trace = TaskTrace::new("MatMul");
        let sgemm = trace.add_kernel("sgemm");
        let mut rng = Rng::seeded(seed ^ 0x3A73);
        let mut layout = Layout::new();
        let n = self.n;
        let b = self.block_bytes as u32;
        let a: Vec<Vec<u64>> = (0..n).map(|_| layout.objects(n, self.block_bytes)).collect();
        let bm: Vec<Vec<u64>> = (0..n).map(|_| layout.objects(n, self.block_bytes)).collect();
        let c: Vec<Vec<u64>> = (0..n).map(|_| layout.objects(n, self.block_bytes)).collect();

        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    // Table I: a constant 23 µs (cache-resident sgemm),
                    // with sub-cycle-level jitter only.
                    let rt = us_to_cycles(23.0) + rng.below(64);
                    trace.push_task(
                        sgemm,
                        rt,
                        vec![
                            OperandDesc::input(a[i][k], b),
                            OperandDesc::input(bm[k][j], b),
                            OperandDesc::inout(c[i][j], b),
                        ],
                    );
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::{parallelism_profile, DepGraph};

    #[test]
    fn n_cubed_tasks() {
        let gen = MatMulGen::new(6);
        assert_eq!(gen.generate(0).len(), 216);
        assert_eq!(gen.task_count(), 216);
    }

    #[test]
    fn chains_per_c_block_and_wide_parallelism() {
        let n = 6;
        let trace = MatMulGen::new(n).generate(0);
        let g = DepGraph::from_trace(&trace);
        let p = parallelism_profile(&trace, &g);
        // N^2 independent chains of length N.
        assert_eq!(p.max_width, n * n);
        assert!((p.avg_parallelism - (n * n) as f64).abs() / ((n * n) as f64) < 0.05);
        // Critical path = one chain = N tasks.
        assert_eq!(p.critical_tasks.len(), n);
    }

    #[test]
    fn stats_match_table_one() {
        let trace = MatMulGen::new(8).generate(5);
        let avg_us = trace.avg_runtime() / 3200.0;
        assert!((avg_us - 23.0).abs() < 0.5, "avg {avg_us}");
        let data_kb = trace.avg_data_bytes() / 1024.0;
        assert!((data_kb - 48.0).abs() < 0.5, "data {data_kb}");
        // 90 ns/task decode limit for 256 processors.
        let limit_ns = tss_sim::cycles_to_ns(trace.decode_rate_limit(256).unwrap() as u64);
        assert!((limit_ns - 90.0).abs() < 2.0, "limit {limit_ns}");
    }

    #[test]
    fn three_operands_per_task() {
        let trace = MatMulGen::new(4).generate(0);
        assert!(trace.iter().all(|t| t.operands.len() == 3));
    }
}
