//! 2D Fast Fourier Transform (Table I: signal processing).
//!
//! The classic decomposition: per-row-block 1D FFTs, a blocked
//! transpose, then per-column-block 1D FFTs — repeated over a stream of
//! independent frames. The transpose forms an all-to-all shuffle: each
//! column task gathers one tile from every row block, which is the
//! barrier-like phase structure that makes FFT latency-sensitive.

use crate::common::Layout;
use tss_sim::{Rng, RuntimeDist};
use tss_trace::{OperandDesc, TaskTrace, TraceGenerator};

/// Trace generator for the 2D FFT.
#[derive(Debug, Clone)]
pub struct FftGen {
    /// Row/column blocks per frame (`P`); column tasks gather `P` tiles,
    /// so `P + 1` must stay within the 19-operand limit.
    pub blocks: usize,
    /// Independent frames (the paper streams transforms).
    pub frames: usize,
}

impl FftGen {
    /// A generator for `frames` transforms of `blocks` row/col blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks + 1` exceeds the 19-operand TRS limit.
    pub fn new(blocks: usize, frames: usize) -> Self {
        assert!(blocks < tss_trace::MAX_OPERANDS, "column task operands exceed TRS limit");
        FftGen { blocks, frames }
    }

    /// Tasks per run: `frames × (P row + P² transpose + P col)`.
    pub fn task_count(&self) -> usize {
        self.frames * (self.blocks + self.blocks * self.blocks + self.blocks)
    }
}

impl TraceGenerator for FftGen {
    fn name(&self) -> &str {
        "FFT"
    }

    fn generate(&self, seed: u64) -> TaskTrace {
        let mut trace = TaskTrace::new("FFT");
        let fft_row = trace.add_kernel("fft1d_row");
        let transpose = trace.add_kernel("transpose");
        let fft_col = trace.add_kernel("fft1d_col");
        let mut rng = Rng::seeded(seed ^ 0xFF7);
        let mut layout = Layout::new();
        let p = self.blocks;
        // Table I: min 13 / med 14 / avg 26 us; 10 KB data.
        let dist = RuntimeDist::from_us(13.0, 14.0, 26.0);
        let row_bytes: u64 = 8 << 10;
        let tile_bytes: u64 = 512;
        let twiddle = layout.object(2 << 10);

        for _frame in 0..self.frames {
            let rows = layout.objects(p, row_bytes);
            let cols = layout.objects(p, row_bytes);
            // Tiles: tile[i][j] carries row block i's contribution to
            // column block j.
            let tiles: Vec<Vec<u64>> = (0..p).map(|_| layout.objects(p, tile_bytes)).collect();

            for &row in &rows {
                trace.push_task(
                    fft_row,
                    dist.sample(&mut rng),
                    vec![
                        OperandDesc::inout(row, row_bytes as u32),
                        OperandDesc::input(twiddle, 2 << 10),
                    ],
                );
            }
            for (i, &row) in rows.iter().enumerate() {
                for &tile in &tiles[i] {
                    trace.push_task(
                        transpose,
                        dist.sample(&mut rng),
                        vec![
                            OperandDesc::input(row, row_bytes as u32),
                            OperandDesc::output(tile, tile_bytes as u32),
                        ],
                    );
                }
            }
            for (j, &col) in cols.iter().enumerate() {
                let mut ops: Vec<OperandDesc> =
                    (0..p).map(|i| OperandDesc::input(tiles[i][j], tile_bytes as u32)).collect();
                ops.push(OperandDesc::output(col, row_bytes as u32));
                trace.push_task(fft_col, dist.sample(&mut rng), ops);
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::DepGraph;

    #[test]
    fn task_count_formula() {
        let gen = FftGen::new(8, 3);
        assert_eq!(gen.generate(0).len(), 3 * (8 + 64 + 8));
        assert_eq!(gen.task_count(), 3 * 80);
    }

    #[test]
    fn column_tasks_wait_for_all_their_tiles() {
        let p = 4;
        let trace = FftGen::new(p, 1).generate(0);
        let g = DepGraph::from_trace(&trace);
        // First column task is task p + p^2; it depends on p transposes.
        let col0 = p + p * p;
        assert_eq!(g.preds(col0).len(), p);
        // And transitively on every row FFT.
        for row in 0..p {
            assert!(g.reachable(row, col0), "row {row} must reach col 0");
        }
    }

    #[test]
    fn frames_are_independent() {
        let p = 4;
        let per_frame = p + p * p + p;
        let trace = FftGen::new(p, 2).generate(0);
        let g = DepGraph::from_trace(&trace);
        assert!(!g.reachable(0, per_frame), "frames must not depend on each other");
    }

    #[test]
    fn stats_near_table_one() {
        let trace = FftGen::new(16, 6).generate(11);
        let min_us = trace.min_runtime().unwrap() as f64 / 3200.0;
        let med_us = trace.median_runtime().unwrap() as f64 / 3200.0;
        let avg_us = trace.avg_runtime() / 3200.0;
        assert!((12.5..14.5).contains(&min_us), "min {min_us}");
        assert!((13.0..16.0).contains(&med_us), "med {med_us}");
        assert!((23.0..29.0).contains(&avg_us), "avg {avg_us}");
        let data_kb = trace.avg_data_bytes() / 1024.0;
        assert!((7.0..13.0).contains(&data_kb), "data {data_kb} KB");
    }

    #[test]
    #[should_panic(expected = "operands exceed")]
    fn too_many_blocks_rejected() {
        let _ = FftGen::new(19, 1);
    }
}
