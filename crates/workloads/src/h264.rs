//! H.264 video decoding (Table I: multimedia, HD clip).
//!
//! Dependency structure per Section VI.C: each frame decodes as a
//! diagonal wavefront — macroblock `(x, y)` depends on its west,
//! north-west, north, and north-east neighbours in the same frame — and
//! every macroblock also references *nearby blocks of its predecessor
//! frame*. Chains of inter-macroblock RaW dependencies therefore span
//! many frames transitively (up to 60 in the paper's clip). With over
//! 2000 macroblock tasks per frame, uncovering parallelism across frames
//! needs a very large window — which is why the software runtime's
//! infinite window edges out the pipeline on this one benchmark
//! (Figure 16).
//!
//! ~94% of tasks carry more than 6 operands (Section VI.A), which is
//! what doubles H264's ORT traffic versus Cholesky in Figure 12.

use crate::common::{Layout, PiecewiseUs};
use tss_sim::Rng;
use tss_trace::{OperandDesc, TaskTrace, TraceGenerator};

/// Trace generator for the H.264 decoder.
#[derive(Debug, Clone)]
pub struct H264Gen {
    /// Frames to decode.
    pub frames: usize,
    /// Macroblocks per row (60 × 34 > 2000 per frame, matching the
    /// paper's "over 2000 tasks per frame").
    pub mb_w: usize,
    /// Macroblock rows.
    pub mb_h: usize,
}

impl H264Gen {
    /// A generator for `frames` frames of `mb_w × mb_h` macroblocks.
    pub fn new(frames: usize, mb_w: usize, mb_h: usize) -> Self {
        H264Gen { frames, mb_w, mb_h }
    }

    /// The paper's HD-like default (2040 macroblocks per frame).
    pub fn hd(frames: usize) -> Self {
        Self::new(frames, 60, 34)
    }

    /// Tasks per run.
    pub fn task_count(&self) -> usize {
        self.frames * self.mb_w * self.mb_h
    }
}

impl TraceGenerator for H264Gen {
    fn name(&self) -> &str {
        "H264"
    }

    fn generate(&self, seed: u64) -> TaskTrace {
        let mut trace = TaskTrace::new("H264");
        let decode_mb = trace.add_kernel("decode_mb");
        let mut rng = Rng::seeded(seed ^ 0x2640);
        let mut layout = Layout::new();
        let dist = PiecewiseUs::h264();
        // ~14 KB per macroblock object: 7 memory operands ≈ Table I's
        // 97 KB task footprint.
        let mb_bytes: u64 = 14 << 10;
        let (w, h) = (self.mb_w, self.mb_h);

        // Macroblock objects, per frame.
        let mb: Vec<Vec<u64>> = (0..self.frames).map(|_| layout.objects(w * h, mb_bytes)).collect();
        let at = |f: usize, x: usize, y: usize| mb[f][y * w + x];

        for f in 0..self.frames {
            for y in 0..h {
                for x in 0..w {
                    let mut ops = Vec::with_capacity(8);
                    // Intra-frame wavefront: W, NW, N, NE.
                    if x > 0 {
                        ops.push(OperandDesc::input(at(f, x - 1, y), mb_bytes as u32));
                    }
                    if y > 0 {
                        if x > 0 {
                            ops.push(OperandDesc::input(at(f, x - 1, y - 1), mb_bytes as u32));
                        }
                        ops.push(OperandDesc::input(at(f, x, y - 1), mb_bytes as u32));
                        if x + 1 < w {
                            ops.push(OperandDesc::input(at(f, x + 1, y - 1), mb_bytes as u32));
                        }
                    }
                    // Inter-frame references: the co-located macroblock
                    // of the predecessor frame plus two nearby blocks
                    // (short motion vectors). RaW chains thereby span
                    // frames transitively.
                    if f > 0 {
                        ops.push(OperandDesc::input(at(f - 1, x, y), mb_bytes as u32));
                        for _ in 0..2 {
                            let dx = rng.below(5) as i64 - 2;
                            let dy = rng.below(5) as i64 - 2;
                            let rx = (x as i64 + dx).clamp(0, w as i64 - 1) as usize;
                            let ry = (y as i64 + dy).clamp(0, h as i64 - 1) as usize;
                            let r = at(f - 1, rx, ry);
                            if ops.iter().all(|o| o.addr != r) {
                                ops.push(OperandDesc::input(r, mb_bytes as u32));
                            }
                        }
                    }
                    // The decoded macroblock itself + bitstream scalar.
                    ops.push(OperandDesc::output(at(f, x, y), mb_bytes as u32));
                    ops.push(OperandDesc::scalar(16));
                    trace.push_task(decode_mb, dist.sample(&mut rng), ops);
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::DepGraph;

    #[test]
    fn task_count_and_frame_size() {
        let gen = H264Gen::hd(2);
        assert_eq!(gen.task_count(), 2 * 2040);
        assert!(gen.mb_w * gen.mb_h > 2000, "paper: over 2000 tasks per frame");
        assert_eq!(gen.generate(0).len(), 4080);
    }

    #[test]
    fn wavefront_dependencies_hold() {
        let gen = H264Gen::new(1, 6, 4);
        let trace = gen.generate(0);
        let g = DepGraph::from_trace(&trace);
        let id = |x: usize, y: usize| y * 6 + x;
        // (1,1) depends on W(0,1), NW(0,0), N(1,0), NE(2,0).
        let preds = g.preds(id(1, 1));
        for p in [id(0, 1), id(0, 0), id(1, 0), id(2, 0)] {
            assert!(preds.contains(&p), "missing wavefront pred {p}");
        }
        // Anti-diagonal blocks are independent: (2,0) vs (0,1)? (0,1)
        // depends on (1,0)? No: N of (0,1) is (0,0); NE is (1,0). Check
        // a genuinely parallel pair on the same anti-diagonal: (3,0) and
        // (0,1) share no path.
        assert!(!g.reachable(id(3, 0), id(0, 1)));
        assert!(!g.reachable(id(0, 1), id(3, 0)));
    }

    #[test]
    fn inter_frame_references_span_frames() {
        let gen = H264Gen::new(3, 4, 3);
        let trace = gen.generate(0);
        let g = DepGraph::from_trace(&trace);
        let per = 12;
        // Co-located macroblock of frame 1 depends on frame 0's.
        assert!(g.preds(per).contains(&0), "frame 1 (0,0) reads frame 0 (0,0)");
    }

    #[test]
    fn most_tasks_have_many_operands() {
        let trace = H264Gen::hd(4).generate(2);
        let many = trace.iter().filter(|t| t.memory_operand_count() > 6).count() as f64
            / trace.len() as f64;
        // Paper: ~94% of H264 tasks have more than 6 operands. Frame 0
        // lacks inter-frame refs, so measure from a 4-frame run.
        assert!(many > 0.60, "fraction with >6 operands: {many}");
        let later: Vec<_> = trace.tasks().iter().skip(2040).collect();
        let many_later = later.iter().filter(|t| t.memory_operand_count() > 6).count() as f64
            / later.len() as f64;
        assert!(many_later > 0.90, "steady-state fraction: {many_later}");
    }

    #[test]
    fn runtime_stats_match_table_one() {
        let trace = H264Gen::hd(3).generate(4);
        let med_us = trace.median_runtime().unwrap() as f64 / 3200.0;
        let avg_us = trace.avg_runtime() / 3200.0;
        assert!((110.0..122.0).contains(&med_us), "med {med_us}");
        assert!((125.0..136.0).contains(&avg_us), "avg {avg_us}");
        let data_kb = trace.avg_data_bytes() / 1024.0;
        assert!((80.0..105.0).contains(&data_kb), "data {data_kb} KB");
    }

    #[test]
    fn references_never_point_forward() {
        let gen = H264Gen::new(5, 4, 3);
        let trace = gen.generate(1);
        let g = DepGraph::from_trace(&trace);
        for e in g.edges() {
            assert!(e.from < e.to, "edges follow creation order");
        }
    }
}
