//! K-Means clustering (Table I: machine learning).
//!
//! Iterative structure: every iteration fans out independent *assign*
//! tasks (one per point block, all reading the current centroids),
//! reduces their partial sums through a fan-in tree, and finishes with
//! an *update* task that writes the next centroids — the read-mostly /
//! write-once pattern renaming thrives on (each iteration's centroid
//! write gets a fresh version while laggard readers drain).

use crate::common::Layout;
use tss_sim::{Rng, RuntimeDist};
use tss_trace::{OperandDesc, TaskTrace, TraceGenerator};

/// Fan-in of the reduction tree (16 inputs + 1 output fits the
/// 19-operand TRS limit).
const FAN_IN: usize = 16;

/// Trace generator for K-Means.
#[derive(Debug, Clone)]
pub struct KMeansGen {
    /// Point blocks per iteration.
    pub blocks: usize,
    /// Lloyd iterations.
    pub iterations: usize,
}

impl KMeansGen {
    /// A generator over `blocks` point blocks for `iterations` rounds.
    pub fn new(blocks: usize, iterations: usize) -> Self {
        KMeansGen { blocks, iterations }
    }

    fn reduce_layers(mut width: usize) -> usize {
        let mut tasks = 0;
        while width > 1 {
            width = width.div_ceil(FAN_IN);
            tasks += width;
        }
        tasks
    }

    /// Tasks per run: per iteration, `blocks` assigns + reduction tree +
    /// 1 centroid update.
    pub fn task_count(&self) -> usize {
        self.iterations * (self.blocks + Self::reduce_layers(self.blocks) + 1)
    }
}

impl TraceGenerator for KMeansGen {
    fn name(&self) -> &str {
        "KMeans"
    }

    fn generate(&self, seed: u64) -> TaskTrace {
        let mut trace = TaskTrace::new("KMeans");
        let assign = trace.add_kernel("assign");
        let reduce = trace.add_kernel("reduce");
        let update = trace.add_kernel("update_centroids");
        let mut rng = Rng::seeded(seed ^ 0x63A5);
        let mut layout = Layout::new();
        // Table I: min 24 / med 59 / avg 55 us; 38 KB data.
        let dist = RuntimeDist::from_us(24.0, 59.0, 55.0);
        let point_bytes: u64 = 32 << 10;
        let partial_bytes: u64 = 2 << 10;
        let centroid_bytes: u64 = 4 << 10;

        let points = layout.objects(self.blocks, point_bytes);
        let centroids = layout.object(centroid_bytes);

        for _iter in 0..self.iterations {
            // Assign: independent across blocks; all read the centroids.
            let mut layer: Vec<u64> = Vec::with_capacity(self.blocks);
            for &p in &points {
                let partial = layout.object(partial_bytes);
                trace.push_task(
                    assign,
                    dist.sample(&mut rng),
                    vec![
                        OperandDesc::input(p, point_bytes as u32),
                        OperandDesc::input(centroids, centroid_bytes as u32),
                        OperandDesc::output(partial, partial_bytes as u32),
                    ],
                );
                layer.push(partial);
            }
            // Fan-in reduction tree.
            while layer.len() > 1 {
                let mut next: Vec<u64> = Vec::with_capacity(layer.len().div_ceil(FAN_IN));
                for chunk in layer.chunks(FAN_IN) {
                    let merged = layout.object(partial_bytes);
                    let mut ops: Vec<OperandDesc> = chunk
                        .iter()
                        .map(|&a| OperandDesc::input(a, partial_bytes as u32))
                        .collect();
                    ops.push(OperandDesc::output(merged, partial_bytes as u32));
                    trace.push_task(reduce, dist.sample(&mut rng), ops);
                    next.push(merged);
                }
                layer = next;
            }
            // Update: produces the next centroid version (renamed while
            // stragglers of this iteration still read the old one).
            trace.push_task(
                update,
                dist.sample(&mut rng),
                vec![
                    OperandDesc::input(layer[0], partial_bytes as u32),
                    OperandDesc::output(centroids, centroid_bytes as u32),
                ],
            );
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::{parallelism_profile, DepGraph};

    #[test]
    fn task_count_formula() {
        let gen = KMeansGen::new(64, 3);
        // 64 assigns + (4 + 1) reduces + 1 update per iteration.
        assert_eq!(gen.task_count(), 3 * (64 + 5 + 1));
        assert_eq!(gen.generate(0).len(), gen.task_count());
    }

    #[test]
    fn iterations_serialize_through_centroids() {
        let gen = KMeansGen::new(8, 2);
        let trace = gen.generate(0);
        let g = DepGraph::from_trace(&trace);
        // Iteration 0: tasks 0..8 assign, 8 reduce, 9 update.
        // Iteration 1's first assign (task 10) reads the new centroids.
        assert!(g.reachable(9, 10), "update must gate the next iteration");
        // Assigns within an iteration are mutually independent.
        assert!(!g.reachable(0, 1) && !g.reachable(1, 0));
    }

    #[test]
    fn reduction_tree_gathers_all_partials() {
        let gen = KMeansGen::new(8, 1);
        let trace = gen.generate(0);
        let g = DepGraph::from_trace(&trace);
        // Task 8 is the single reduce; it reads all 8 partials.
        assert_eq!(g.preds(8).len(), 8);
    }

    #[test]
    fn wide_parallelism_within_iteration() {
        let trace = KMeansGen::new(64, 2).generate(3);
        let g = DepGraph::from_trace(&trace);
        let p = parallelism_profile(&trace, &g);
        assert!(p.max_width >= 64, "width {}", p.max_width);
    }

    #[test]
    fn stats_near_table_one() {
        let trace = KMeansGen::new(128, 8).generate(5);
        let min_us = trace.min_runtime().unwrap() as f64 / 3200.0;
        let med_us = trace.median_runtime().unwrap() as f64 / 3200.0;
        let avg_us = trace.avg_runtime() / 3200.0;
        assert!((23.5..27.0).contains(&min_us), "min {min_us}");
        assert!((53.0..65.0).contains(&med_us), "med {med_us}");
        assert!((50.0..60.0).contains(&avg_us), "avg {avg_us}");
        let data_kb = trace.avg_data_bytes() / 1024.0;
        assert!((30.0..42.0).contains(&data_kb), "data {data_kb} KB");
    }
}
