//! PBPI — parallel Bayesian phylogenetic inference (Table I:
//! bioinformatics).
//!
//! MCMC generations: each generation evaluates per-site-block
//! likelihoods against the current tree (wide fan-out), reduces them to
//! a total log-likelihood (fan-in tree), and accepts/rejects a tree
//! mutation (a serial inout on the tree state that gates the next
//! generation). Runtimes are remarkably uniform (28/29/29 µs in Table
//! I) because every site block does the same arithmetic.

use crate::common::Layout;
use tss_sim::{Rng, RuntimeDist};
use tss_trace::{OperandDesc, TaskTrace, TraceGenerator};

/// Fan-in of the likelihood reduction.
const FAN_IN: usize = 16;

/// Trace generator for PBPI.
#[derive(Debug, Clone)]
pub struct PbpiGen {
    /// Site blocks evaluated per generation.
    pub site_blocks: usize,
    /// MCMC generations.
    pub generations: usize,
}

impl PbpiGen {
    /// A generator for `generations` rounds over `site_blocks` blocks.
    pub fn new(site_blocks: usize, generations: usize) -> Self {
        PbpiGen { site_blocks, generations }
    }

    fn reduce_tasks(mut width: usize) -> usize {
        let mut t = 0;
        while width > 1 {
            width = width.div_ceil(FAN_IN);
            t += width;
        }
        t
    }

    /// Tasks per run.
    pub fn task_count(&self) -> usize {
        self.generations * (self.site_blocks + Self::reduce_tasks(self.site_blocks) + 1)
    }
}

impl TraceGenerator for PbpiGen {
    fn name(&self) -> &str {
        "PBPI"
    }

    fn generate(&self, seed: u64) -> TaskTrace {
        let mut trace = TaskTrace::new("PBPI");
        let likelihood = trace.add_kernel("site_likelihood");
        let reduce = trace.add_kernel("reduce_loglik");
        let mutate = trace.add_kernel("propose_tree");
        let mut rng = Rng::seeded(seed ^ 0x9B91);
        let mut layout = Layout::new();
        // Table I: min 28 / med 29 / avg 29 us; 32 KB data.
        let dist = RuntimeDist::from_us(28.0, 29.0, 29.0);
        let site_bytes: u64 = 28 << 10;
        let lik_bytes: u64 = 1 << 10;
        let tree_bytes: u64 = 2 << 10;

        let sites = layout.objects(self.site_blocks, site_bytes);
        let tree = layout.object(tree_bytes);

        for _gen in 0..self.generations {
            let mut layer: Vec<u64> = Vec::with_capacity(self.site_blocks);
            for &s in &sites {
                let lik = layout.object(lik_bytes);
                trace.push_task(
                    likelihood,
                    dist.sample(&mut rng),
                    vec![
                        OperandDesc::input(s, site_bytes as u32),
                        OperandDesc::input(tree, tree_bytes as u32),
                        OperandDesc::output(lik, lik_bytes as u32),
                    ],
                );
                layer.push(lik);
            }
            while layer.len() > 1 {
                let mut next = Vec::with_capacity(layer.len().div_ceil(FAN_IN));
                for chunk in layer.chunks(FAN_IN) {
                    let merged = layout.object(lik_bytes);
                    let mut ops: Vec<OperandDesc> =
                        chunk.iter().map(|&a| OperandDesc::input(a, lik_bytes as u32)).collect();
                    ops.push(OperandDesc::output(merged, lik_bytes as u32));
                    trace.push_task(reduce, dist.sample(&mut rng), ops);
                    next.push(merged);
                }
                layer = next;
            }
            trace.push_task(
                mutate,
                dist.sample(&mut rng),
                vec![
                    OperandDesc::input(layer[0], lik_bytes as u32),
                    OperandDesc::inout(tree, tree_bytes as u32),
                ],
            );
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::DepGraph;

    #[test]
    fn task_count_formula() {
        let gen = PbpiGen::new(64, 2);
        assert_eq!(gen.task_count(), 2 * (64 + 5 + 1));
        assert_eq!(gen.generate(0).len(), gen.task_count());
    }

    #[test]
    fn generations_serialize_through_the_tree() {
        let gen = PbpiGen::new(8, 2);
        let trace = gen.generate(0);
        let g = DepGraph::from_trace(&trace);
        // Generation 0: 0..8 likelihoods, 8 reduce, 9 mutate; generation
        // 1 starts at 10 and must observe the mutated tree.
        assert!(g.reachable(9, 10));
        // The mutate task also anti-depends on this generation's readers
        // of the tree (inout is not renamed).
        assert!(g.preds(9).contains(&8), "mutate reads the reduced likelihood");
    }

    #[test]
    fn runtime_spread_is_tight() {
        let trace = PbpiGen::new(64, 6).generate(2);
        let min_us = trace.min_runtime().unwrap() as f64 / 3200.0;
        let med_us = trace.median_runtime().unwrap() as f64 / 3200.0;
        let avg_us = trace.avg_runtime() / 3200.0;
        assert!((27.5..29.0).contains(&min_us), "min {min_us}");
        assert!((28.0..30.0).contains(&med_us), "med {med_us}");
        assert!((28.0..30.0).contains(&avg_us), "avg {avg_us}");
        let data_kb = trace.avg_data_bytes() / 1024.0;
        assert!((25.0..36.0).contains(&data_kb), "data {data_kb} KB");
    }
}
