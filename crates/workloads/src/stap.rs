//! STAP — space-time adaptive processing (Table I: radar physics).
//!
//! A staged per-CPI (coherent processing interval) pipeline: Doppler
//! filtering fans out over range bins, covariance estimation gathers
//! groups of Doppler outputs, and weight computation consumes the
//! covariance estimates into per-beam weights that chain across CPIs.
//! Tasks are *tiny* (1/9/28 µs, 8 KB): STAP is the decode-rate torture
//! test — its Table-I rate limit for 256 processors is 4 ns/task, faster
//! than even the hardware pipeline, so its speedup is frontend-bound.

use crate::common::Layout;
use tss_sim::{Rng, RuntimeDist};
use tss_trace::{OperandDesc, TaskTrace, TraceGenerator};

/// Doppler outputs gathered per covariance task.
const COV_FAN: usize = 4;

/// Trace generator for STAP.
#[derive(Debug, Clone)]
pub struct StapGen {
    /// Coherent processing intervals (outer sequential loop).
    pub cpis: usize,
    /// Doppler tasks per CPI.
    pub doppler: usize,
    /// Beams (weight chains).
    pub beams: usize,
}

impl StapGen {
    /// A generator for `cpis` intervals of `doppler` filter tasks and
    /// `beams` weight chains.
    pub fn new(cpis: usize, doppler: usize, beams: usize) -> Self {
        StapGen { cpis, doppler, beams }
    }

    /// Covariance tasks per CPI.
    fn cov_tasks(&self) -> usize {
        self.doppler.div_ceil(COV_FAN)
    }

    /// Tasks per run.
    pub fn task_count(&self) -> usize {
        self.cpis * (self.doppler + self.cov_tasks() + self.beams)
    }
}

impl TraceGenerator for StapGen {
    fn name(&self) -> &str {
        "STAP"
    }

    fn generate(&self, seed: u64) -> TaskTrace {
        let mut trace = TaskTrace::new("STAP");
        let doppler_k = trace.add_kernel("doppler_filter");
        let cov_k = trace.add_kernel("covariance");
        let weight_k = trace.add_kernel("compute_weights");
        let mut rng = Rng::seeded(seed ^ 0x57A9);
        let mut layout = Layout::new();
        // Table I: min 1 / med 9 / avg 28 us; 8 KB data.
        let dist = RuntimeDist::from_us(1.0, 9.0, 28.0);
        let echo_bytes: u64 = 6 << 10;
        let dop_bytes: u64 = 1536;
        let cov_bytes: u64 = 2 << 10;
        let w_bytes: u64 = 1 << 10;

        let weights = layout.objects(self.beams, w_bytes);

        for _cpi in 0..self.cpis {
            let echoes = layout.objects(self.doppler, echo_bytes);
            let mut dops: Vec<u64> = Vec::with_capacity(self.doppler);
            for &e in &echoes {
                let d = layout.object(dop_bytes);
                trace.push_task(
                    doppler_k,
                    dist.sample(&mut rng),
                    vec![
                        OperandDesc::input(e, echo_bytes as u32),
                        OperandDesc::output(d, dop_bytes as u32),
                    ],
                );
                dops.push(d);
            }
            let mut covs: Vec<u64> = Vec::with_capacity(self.cov_tasks());
            for chunk in dops.chunks(COV_FAN) {
                let c = layout.object(cov_bytes);
                let mut ops: Vec<OperandDesc> =
                    chunk.iter().map(|&d| OperandDesc::input(d, dop_bytes as u32)).collect();
                ops.push(OperandDesc::output(c, cov_bytes as u32));
                trace.push_task(cov_k, dist.sample(&mut rng), ops);
                covs.push(c);
            }
            for (b, &w) in weights.iter().enumerate() {
                // Each beam consumes a couple of covariance estimates and
                // updates its weights (chaining CPIs).
                let c0 = covs[b % covs.len()];
                let c1 = covs[(b + 1) % covs.len()];
                let mut ops = vec![OperandDesc::input(c0, cov_bytes as u32)];
                if c1 != c0 {
                    ops.push(OperandDesc::input(c1, cov_bytes as u32));
                }
                ops.push(OperandDesc::inout(w, w_bytes as u32));
                trace.push_task(weight_k, dist.sample(&mut rng), ops);
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::DepGraph;

    #[test]
    fn task_count_formula() {
        let gen = StapGen::new(2, 16, 4);
        assert_eq!(gen.task_count(), 2 * (16 + 4 + 4));
        assert_eq!(gen.generate(0).len(), gen.task_count());
    }

    #[test]
    fn stages_chain_within_a_cpi() {
        let gen = StapGen::new(1, 8, 2);
        let trace = gen.generate(0);
        let g = DepGraph::from_trace(&trace);
        // Tasks 0..8 Doppler, 8..10 covariance, 10..12 weights.
        assert!(g.preds(8).len() == 4, "covariance gathers 4 Doppler outputs");
        assert!(g.reachable(0, 10), "Doppler feeds weights transitively");
    }

    #[test]
    fn cpis_serialize_through_beam_weights() {
        let gen = StapGen::new(2, 8, 2);
        let trace = gen.generate(0);
        let g = DepGraph::from_trace(&trace);
        let per = 8 + 2 + 2;
        // Beam 0 weight task of CPI 0 gates beam 0 of CPI 1 (inout).
        assert!(g.reachable(10, per + 10));
        // But Doppler stages of different CPIs are independent.
        assert!(!g.reachable(0, per));
    }

    #[test]
    fn stats_near_table_one_with_tiny_tasks() {
        let trace = StapGen::new(16, 64, 12).generate(7);
        let min_us = trace.min_runtime().unwrap() as f64 / 3200.0;
        let med_us = trace.median_runtime().unwrap() as f64 / 3200.0;
        let avg_us = trace.avg_runtime() / 3200.0;
        assert!(min_us < 2.0, "min {min_us}");
        assert!((7.0..12.0).contains(&med_us), "med {med_us}");
        assert!((25.0..31.0).contains(&avg_us), "avg {avg_us}");
        let data_kb = trace.avg_data_bytes() / 1024.0;
        assert!((4.0..12.0).contains(&data_kb), "data {data_kb} KB");
        // The 256-way decode-rate limit is a brutal handful of ns.
        let limit_ns = tss_sim::cycles_to_ns(trace.decode_rate_limit(256).unwrap() as u64);
        assert!(limit_ns < 10.0, "limit {limit_ns} ns");
    }
}
