//! K-Nearest Neighbors (Table I: pattern recognition).
//!
//! Embarrassingly parallel distance computations — every (query batch,
//! training block) pair is independent — followed by a short per-query
//! merge chain. Tasks are long (~95% above 100 µs, Section VI.C), which
//! is why Knn is one of the two benchmarks whose software-runtime curve
//! keeps scaling to 128 processors in Figure 16: at 107 µs median, even
//! a 700 ns serial decoder keeps up.

use crate::common::{Layout, PiecewiseUs};
use tss_sim::Rng;
use tss_trace::{OperandDesc, TaskTrace, TraceGenerator};

/// Distance blocks merged per merge task.
const MERGE_FAN: usize = 8;

/// Trace generator for Knn.
#[derive(Debug, Clone)]
pub struct KnnGen {
    /// Training-set blocks.
    pub train_blocks: usize,
    /// Query batches.
    pub queries: usize,
}

impl KnnGen {
    /// A generator for `queries` batches against `train_blocks` blocks.
    pub fn new(train_blocks: usize, queries: usize) -> Self {
        KnnGen { train_blocks, queries }
    }

    /// Tasks per run: per query, `train_blocks` distance tasks plus a
    /// merge chain of `ceil(train_blocks / MERGE_FAN)` links.
    pub fn task_count(&self) -> usize {
        self.queries * (self.train_blocks + self.train_blocks.div_ceil(MERGE_FAN))
    }
}

impl TraceGenerator for KnnGen {
    fn name(&self) -> &str {
        "Knn"
    }

    fn generate(&self, seed: u64) -> TaskTrace {
        let mut trace = TaskTrace::new("Knn");
        let distances = trace.add_kernel("distances");
        let merge = trace.add_kernel("merge_topk");
        let mut rng = Rng::seeded(seed ^ 0x4171);
        let mut layout = Layout::new();
        let dist = PiecewiseUs::knn();
        let train_bytes: u64 = 8 << 10;
        let query_bytes: u64 = 1 << 10;
        let out_bytes: u64 = 512;

        let train = layout.objects(self.train_blocks, train_bytes);

        for _q in 0..self.queries {
            let query = layout.object(query_bytes);
            let mut outs: Vec<u64> = Vec::with_capacity(self.train_blocks);
            for &t in &train {
                let o = layout.object(out_bytes);
                trace.push_task(
                    distances,
                    dist.sample(&mut rng),
                    vec![
                        OperandDesc::input(t, train_bytes as u32),
                        OperandDesc::input(query, query_bytes as u32),
                        OperandDesc::output(o, out_bytes as u32),
                    ],
                );
                outs.push(o);
            }
            // Merge chain: a running top-k accumulator per query.
            let topk = layout.object(out_bytes);
            for chunk in outs.chunks(MERGE_FAN) {
                let mut ops: Vec<OperandDesc> =
                    chunk.iter().map(|&o| OperandDesc::input(o, out_bytes as u32)).collect();
                ops.push(OperandDesc::inout(topk, out_bytes as u32));
                trace.push_task(merge, dist.sample(&mut rng), ops);
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::{parallelism_profile, DepGraph};

    #[test]
    fn task_count_formula() {
        let gen = KnnGen::new(16, 4);
        assert_eq!(gen.task_count(), 4 * (16 + 2));
        assert_eq!(gen.generate(0).len(), gen.task_count());
    }

    #[test]
    fn distance_tasks_are_independent_across_queries_and_blocks() {
        let gen = KnnGen::new(4, 2);
        let trace = gen.generate(0);
        let g = DepGraph::from_trace(&trace);
        // Tasks 0..4 are query-0 distances; 5 is its merge; 6..10 are
        // query-1 distances.
        assert!(!g.reachable(0, 1));
        assert!(!g.reachable(0, 6));
        assert!(g.reachable(0, 4), "merge waits for its distances");
    }

    #[test]
    fn merge_chain_serializes_per_query() {
        let gen = KnnGen::new(16, 1);
        let trace = gen.generate(0);
        let g = DepGraph::from_trace(&trace);
        // Two merge links (16/8) chained through the top-k accumulator.
        assert!(g.reachable(16, 17));
    }

    #[test]
    fn tasks_are_long_like_table_one() {
        let trace = KnnGen::new(32, 8).generate(3);
        let med_us = trace.median_runtime().unwrap() as f64 / 3200.0;
        let avg_us = trace.avg_runtime() / 3200.0;
        assert!((103.0..112.0).contains(&med_us), "med {med_us}");
        assert!((105.0..113.0).contains(&avg_us), "avg {avg_us}");
        let long = trace.iter().filter(|t| t.runtime > tss_sim::us_to_cycles(100.0)).count() as f64
            / trace.len() as f64;
        assert!((long - 0.95).abs() < 0.03, "~95% long tasks, got {long}");
        let data_kb = trace.avg_data_bytes() / 1024.0;
        assert!((6.0..13.0).contains(&data_kb), "data {data_kb} KB");
    }

    #[test]
    fn massive_parallelism_available() {
        let trace = KnnGen::new(32, 16).generate(1);
        let g = DepGraph::from_trace(&trace);
        let p = parallelism_profile(&trace, &g);
        assert!(p.max_width >= 256, "width {}", p.max_width);
    }
}
