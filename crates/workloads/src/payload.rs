//! Payload hooks: what a *native* replay should do per task.
//!
//! The traces this crate generates are timing skeletons — operand
//! tuples plus measured runtimes — so a native executor (`tss-exec`)
//! needs a policy for turning a [`TaskDesc`] into actual work. That
//! policy lives here, next to the generators whose operand footprints
//! it interprets, so every payload consumer (the executor, the `exec`
//! harness, future backends) agrees on byte counts.
//!
//! Two hooks:
//!
//! - [`operand_chunks`] — the memory traffic of one task: per tracked
//!   operand, how many bytes to read/write, capped at [`CHUNK_CAP`] so
//!   SPECFEM's ~770 KB operands (Table I) don't turn a replay into a
//!   pure memset benchmark.
//! - [`task_footprint`] / [`trace_footprint`] — aggregate read/write
//!   byte totals, used to size arenas and report traffic rates.

use tss_trace::{TaskDesc, TaskTrace};

/// Per-operand byte cap for synthetic memory traffic (64 KB: enough to
/// sweep an L1 and touch L2, small enough that one task's traffic stays
/// bounded regardless of the trace's declared object sizes).
pub const CHUNK_CAP: usize = 64 << 10;

/// One operand's share of a task's synthetic memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperandChunk {
    /// The operand's base address (identifies the object; a native
    /// replay maps it into its arena, it is not dereferenced).
    pub addr: u64,
    /// Bytes to move for this operand (`min(size, CHUNK_CAP)`).
    pub len: usize,
    /// Whether the payload should read the object.
    pub reads: bool,
    /// Whether the payload should write the object.
    pub writes: bool,
}

/// The capped memory traffic of one task, operand by operand. Scalars
/// are untracked and yield nothing.
pub fn operand_chunks(task: &TaskDesc) -> impl Iterator<Item = OperandChunk> + '_ {
    task.operands.iter().filter(|o| o.is_tracked()).map(|o| OperandChunk {
        addr: o.addr,
        len: (o.size as usize).min(CHUNK_CAP),
        reads: o.dir.reads(),
        writes: o.dir.writes(),
    })
}

/// Aggregate synthetic traffic in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Bytes read across all (capped) operand chunks.
    pub read_bytes: u64,
    /// Bytes written across all (capped) operand chunks.
    pub write_bytes: u64,
}

impl Footprint {
    fn add(&mut self, c: OperandChunk) {
        if c.reads {
            self.read_bytes += c.len as u64;
        }
        if c.writes {
            self.write_bytes += c.len as u64;
        }
    }
}

/// Capped read/write traffic of one task.
pub fn task_footprint(task: &TaskDesc) -> Footprint {
    let mut f = Footprint::default();
    for c in operand_chunks(task) {
        f.add(c);
    }
    f
}

/// Capped read/write traffic of a whole trace.
pub fn trace_footprint(trace: &TaskTrace) -> Footprint {
    let mut f = Footprint::default();
    for t in trace.iter() {
        for c in operand_chunks(t) {
            f.add(c);
        }
    }
    f
}

/// A fault the chaos layer injects into one task attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The payload panics mid-task (containment-boundary exercise).
    Panic,
    /// The payload stalls long enough to trip a per-task deadline.
    Delay,
}

/// Deterministic fault roll for one `(task, attempt)` pair.
///
/// The decision is a pure hash of `(seed, task, attempt)` — no global
/// RNG state — so a chaos run is replayable from its seed alone and the
/// injected-failure *set* is identical at any worker count (the chaos CI
/// baseline pins exact counts on that guarantee). `rate_ppm` is the
/// injection probability in parts-per-million; one roll in eight that
/// fires is a [`InjectedFault::Delay`], the rest are panics.
pub fn fault_decision(seed: u64, task: u32, attempt: u32, rate_ppm: u32) -> Option<InjectedFault> {
    if rate_ppm == 0 {
        return None;
    }
    // SplitMix64 finalizer over the packed inputs: cheap, well mixed,
    // and stable across platforms.
    let mut z =
        seed.wrapping_add((task as u64) << 32 | attempt as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if (z % 1_000_000) as u32 >= rate_ppm {
        return None;
    }
    // Reuse high bits (independent of the `% 1_000_000` roll above for
    // all practical rates) to pick the fault flavor.
    if (z >> 61) & 7 == 0 {
        Some(InjectedFault::Delay)
    } else {
        Some(InjectedFault::Panic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::{KernelId, OperandDesc, TaskDesc};

    #[test]
    fn chunks_cap_and_classify() {
        let t = TaskDesc::new(
            KernelId(0),
            10,
            vec![
                OperandDesc::input(0x100, 128),
                OperandDesc::output(0x200, (CHUNK_CAP as u32) * 4),
                OperandDesc::inout(0x300, 64),
                OperandDesc::scalar(8),
            ],
        );
        let chunks: Vec<_> = operand_chunks(&t).collect();
        assert_eq!(chunks.len(), 3, "scalars carry no traffic");
        assert_eq!(chunks[1].len, CHUNK_CAP);
        assert!(chunks[0].reads && !chunks[0].writes);
        assert!(!chunks[1].reads && chunks[1].writes);
        assert!(chunks[2].reads && chunks[2].writes);
    }

    #[test]
    fn footprints_sum_reads_and_writes() {
        let t = TaskDesc::new(
            KernelId(0),
            10,
            vec![OperandDesc::input(0x100, 100), OperandDesc::inout(0x300, 50)],
        );
        let f = task_footprint(&t);
        assert_eq!(f.read_bytes, 150);
        assert_eq!(f.write_bytes, 50);
    }

    #[test]
    fn trace_footprint_is_the_task_sum() {
        let tr = crate::Benchmark::MatMul.trace(crate::Scale::Small, 1);
        let total = trace_footprint(&tr);
        let by_task: Footprint =
            tr.iter().map(task_footprint).fold(Footprint::default(), |mut acc, f| {
                acc.read_bytes += f.read_bytes;
                acc.write_bytes += f.write_bytes;
                acc
            });
        assert_eq!(total, by_task);
        assert!(total.read_bytes > 0 && total.write_bytes > 0);
    }

    #[test]
    fn fault_decision_is_pure_and_rate_bounded() {
        // Pure: same inputs, same answer.
        for task in 0..64u32 {
            for attempt in 0..3u32 {
                assert_eq!(
                    fault_decision(42, task, attempt, 50_000),
                    fault_decision(42, task, attempt, 50_000)
                );
            }
        }
        // Rate 0 never fires; rate 1_000_000 always fires.
        for task in 0..256u32 {
            assert_eq!(fault_decision(7, task, 0, 0), None);
            assert!(fault_decision(7, task, 0, 1_000_000).is_some());
        }
        // A 5% rate lands in a loose band over a large sample.
        let fired = (0..100_000u32).filter(|&t| fault_decision(1, t, 0, 50_000).is_some()).count();
        assert!((3_000..8_000).contains(&fired), "5% rate fired {fired}/100000");
    }

    #[test]
    fn fault_decision_varies_by_attempt_and_seed() {
        // Distinct attempts re-roll: a task that faults on attempt 0
        // should not fault on *every* attempt at a moderate rate.
        let always = (0..10_000u32)
            .filter(|&t| fault_decision(3, t, 0, 200_000).is_some())
            .filter(|&t| (1..5u32).all(|a| fault_decision(3, t, a, 200_000).is_some()))
            .count();
        assert!(always < 100, "{always} tasks faulted on all 5 attempts at 20%");
        // Distinct seeds give distinct failure sets.
        let a: Vec<u32> =
            (0..1_000).filter(|&t| fault_decision(1, t, 0, 100_000).is_some()).collect();
        let b: Vec<u32> =
            (0..1_000).filter(|&t| fault_decision(2, t, 0, 100_000).is_some()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn fault_decision_mixes_delays_and_panics() {
        let mut delays = 0;
        let mut panics = 0;
        for t in 0..100_000u32 {
            match fault_decision(9, t, 0, 1_000_000) {
                Some(InjectedFault::Delay) => delays += 1,
                Some(InjectedFault::Panic) => panics += 1,
                None => unreachable!(),
            }
        }
        assert!(delays > 5_000, "delays under-represented: {delays}");
        assert!(panics > 50_000, "panics under-represented: {panics}");
    }
}
