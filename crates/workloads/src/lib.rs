//! The nine benchmark applications of Table I, as task-trace generators.
//!
//! The paper's traces were captured from real StarSs applications on
//! real hardware; this crate synthesizes traces that reproduce what the
//! evaluation is actually sensitive to (DESIGN.md §2):
//!
//! 1. the **dependency structure** of each application (blocked Cholesky
//!    DAG, H264 wavefront + 60-frame references, stencils, reductions,
//!    stage pipelines),
//! 2. the **operand counts and data sizes** per task, and
//! 3. the **runtime distribution** — calibrated so each generated trace
//!    reproduces Table I's min / median / average runtimes (and the
//!    "~95% of tasks over 100 µs" property for H264 and Knn).
//!
//! All generators are deterministic per seed.

#![forbid(unsafe_code)]

pub mod cholesky;
pub mod common;
pub mod fft;
pub mod h264;
pub mod kmeans;
pub mod knn;
pub mod matmul;
pub mod mixed;
pub mod payload;
pub mod pbpi;
pub mod specfem;
pub mod stap;

pub use common::{Layout, PiecewiseUs};
use tss_trace::{TaskTrace, TraceGenerator};

/// How large a trace to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~0.5–2k tasks: fast enough for CI tests.
    Small,
    /// ~4–10k tasks: the default for regenerating the paper's figures.
    Paper,
    /// ~20k+ tasks: stress runs (window-size studies need deep traces).
    Large,
}

impl Scale {
    /// Parses a CLI scale name (`small` / `paper` / `large`).
    pub fn parse(name: &str) -> Option<Scale> {
        match name {
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }

    /// The CLI name (inverse of [`Scale::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Paper => "paper",
            Scale::Large => "large",
        }
    }
}

/// The nine Table-I benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Blocked Cholesky decomposition (math kernel).
    Cholesky,
    /// Blocked matrix multiplication (math kernel).
    MatMul,
    /// 2D Fast Fourier Transform (signal processing).
    Fft,
    /// H.264 HD video decoding (multimedia).
    H264,
    /// K-Means clustering (machine learning).
    KMeans,
    /// K-Nearest Neighbors (pattern recognition).
    Knn,
    /// Bayesian phylogenetic inference (bioinformatics).
    Pbpi,
    /// Seismic wave propagation (earth physics).
    Specfem,
    /// Space-time adaptive processing (radar physics).
    Stap,
}

impl Benchmark {
    /// All nine, in Table I order.
    pub fn all() -> [Benchmark; 9] {
        [
            Benchmark::Cholesky,
            Benchmark::MatMul,
            Benchmark::Fft,
            Benchmark::H264,
            Benchmark::KMeans,
            Benchmark::Knn,
            Benchmark::Pbpi,
            Benchmark::Specfem,
            Benchmark::Stap,
        ]
    }

    /// Table I name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Cholesky => "Cholesky",
            Benchmark::MatMul => "MatMul",
            Benchmark::Fft => "FFT",
            Benchmark::H264 => "H264",
            Benchmark::KMeans => "KMeans",
            Benchmark::Knn => "Knn",
            Benchmark::Pbpi => "PBPI",
            Benchmark::Specfem => "SPECFEM",
            Benchmark::Stap => "STAP",
        }
    }

    /// Parses a Table-I name, case-insensitively (inverse of
    /// [`Benchmark::name`]).
    pub fn parse(name: &str) -> Option<Benchmark> {
        Benchmark::all().into_iter().find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Builds this benchmark's generator at the given scale.
    pub fn generator(self, scale: Scale) -> Box<dyn TraceGenerator> {
        use Scale::*;
        match self {
            Benchmark::Cholesky => Box::new(cholesky::CholeskyGen::new(match scale {
                Small => 10,
                Paper => 56,
                Large => 72,
            })),
            Benchmark::MatMul => Box::new(matmul::MatMulGen::new(match scale {
                Small => 10,
                Paper => 18,
                Large => 28,
            })),
            Benchmark::Fft => Box::new(match scale {
                Small => fft::FftGen::new(12, 4),
                Paper => fft::FftGen::new(16, 18),
                Large => fft::FftGen::new(16, 72),
            }),
            Benchmark::H264 => Box::new(match scale {
                Small => h264::H264Gen::new(6, 16, 10),
                Paper => h264::H264Gen::hd(24),
                Large => h264::H264Gen::hd(48),
            }),
            Benchmark::KMeans => Box::new(match scale {
                Small => kmeans::KMeansGen::new(48, 8),
                Paper => kmeans::KMeansGen::new(1024, 12),
                Large => kmeans::KMeansGen::new(1024, 40),
            }),
            Benchmark::Knn => Box::new(match scale {
                Small => knn::KnnGen::new(24, 24),
                Paper => knn::KnnGen::new(64, 84),
                Large => knn::KnnGen::new(64, 300),
            }),
            Benchmark::Pbpi => Box::new(match scale {
                Small => pbpi::PbpiGen::new(48, 8),
                Paper => pbpi::PbpiGen::new(1024, 8),
                Large => pbpi::PbpiGen::new(1024, 28),
            }),
            Benchmark::Specfem => Box::new(match scale {
                Small => specfem::SpecfemGen::new(8, 8),
                Paper => specfem::SpecfemGen::new(20, 28),
                Large => specfem::SpecfemGen::new(20, 96),
            }),
            Benchmark::Stap => Box::new(match scale {
                Small => stap::StapGen::new(8, 48, 8),
                Paper => stap::StapGen::new(48, 96, 12),
                Large => stap::StapGen::new(160, 96, 12),
            }),
        }
    }

    /// Generates this benchmark's trace at a scale with a seed.
    pub fn trace(self, scale: Scale, seed: u64) -> TaskTrace {
        self.generator(scale).generate(seed)
    }

    /// The paper's Table I row for this benchmark (reference values):
    /// `(avg data KB, min µs, med µs, avg µs, decode-rate limit ns)`.
    pub fn table1_reference(self) -> (f64, f64, f64, f64, f64) {
        match self {
            Benchmark::Cholesky => (47.0, 16.0, 33.0, 31.0, 63.0),
            Benchmark::MatMul => (48.0, 23.0, 23.0, 23.0, 90.0),
            Benchmark::Fft => (10.0, 13.0, 14.0, 26.0, 51.0),
            Benchmark::H264 => (97.0, 2.0, 115.0, 130.0, 8.0),
            Benchmark::KMeans => (38.0, 24.0, 59.0, 55.0, 94.0),
            Benchmark::Knn => (10.0, 17.0, 107.0, 109.0, 66.0),
            Benchmark::Pbpi => (32.0, 28.0, 29.0, 29.0, 108.0),
            Benchmark::Specfem => (770.0, 9.0, 14.0, 49.0, 35.0),
            Benchmark::Stap => (8.0, 1.0, 9.0, 28.0, 4.0),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_generate_at_small_scale() {
        for b in Benchmark::all() {
            let tr = b.trace(Scale::Small, 1);
            assert!(!tr.is_empty(), "{b} generated an empty trace");
            assert!(
                tr.iter().all(|t| t.operands.len() <= tss_trace::MAX_OPERANDS),
                "{b} exceeds the operand limit"
            );
            assert!(tr.iter().all(|t| t.runtime > 0), "{b} has zero-length tasks");
        }
    }

    #[test]
    fn paper_scale_sizes_are_reasonable() {
        for b in Benchmark::all() {
            let n = b.trace(Scale::Paper, 1).len();
            assert!((2_000..70_000).contains(&n), "{b} paper-scale trace has {n} tasks");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for b in Benchmark::all() {
            let a = b.trace(Scale::Small, 33);
            let c = b.trace(Scale::Small, 33);
            assert_eq!(a.tasks(), c.tasks(), "{b} not deterministic");
        }
    }

    #[test]
    fn min_median_avg_track_table_one_within_tolerance() {
        // Each generated trace must reproduce Table I's runtime columns
        // within 20% (calibration is the whole point of the generators).
        for b in Benchmark::all() {
            let tr = b.trace(Scale::Paper, 5);
            let (data_kb, min_us, med_us, avg_us, _) = b.table1_reference();
            let tol = |x: f64, r: f64| (x - r).abs() / r < 0.20 || (x - r).abs() < 2.0;
            let got_min = tr.min_runtime().unwrap() as f64 / 3200.0;
            let got_med = tr.median_runtime().unwrap() as f64 / 3200.0;
            let got_avg = tr.avg_runtime() / 3200.0;
            let got_data = tr.avg_data_bytes() / 1024.0;
            assert!(tol(got_min, min_us), "{b}: min {got_min} vs {min_us}");
            assert!(tol(got_med, med_us), "{b}: med {got_med} vs {med_us}");
            assert!(tol(got_avg, avg_us), "{b}: avg {got_avg} vs {avg_us}");
            assert!(
                (got_data - data_kb).abs() / data_kb < 0.30,
                "{b}: data {got_data} KB vs {data_kb} KB"
            );
        }
    }

    #[test]
    fn parse_round_trips_names_and_scales() {
        for b in Benchmark::all() {
            assert_eq!(Benchmark::parse(b.name()), Some(b));
            assert_eq!(Benchmark::parse(&b.name().to_lowercase()), Some(b));
        }
        assert_eq!(Benchmark::parse("nope"), None);
        for s in [Scale::Small, Scale::Paper, Scale::Large] {
            assert_eq!(Scale::parse(s.name()), Some(s));
        }
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn names_match_table_one() {
        let names: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec!["Cholesky", "MatMul", "FFT", "H264", "KMeans", "Knn", "PBPI", "SPECFEM", "STAP"]
        );
    }
}
