//! A synthetic *mixed-class* workload for the scheduling-policy
//! ablations (DESIGN.md §13): every round interleaves bandwidth-bound
//! *stream* tasks with compute-bound *crunch* tasks, so the executor's
//! class router (`tss-exec::payload::task_class`) sees both worker
//! classes in one trace.
//!
//! Not part of [`crate::Benchmark::all`]: Table I has no such
//! application, and the figure pipeline must keep reproducing the
//! paper's nine rows exactly. The `sched` harness (and anything else
//! studying heterogeneous dispatch) builds it directly.
//!
//! Structure per round, `width` independent chains:
//!
//! ```text
//! stream[c] : in  block[c]   (64 KB)   -- memory class (footprint >= 32 KB)
//!             out block'[c]  (64 KB)
//!             out digest[c]  ( 4 KB)
//! crunch[c] : in  digest[c]  ( 4 KB)   -- compute class (footprint <  32 KB)
//!             out result[c]  ( 1 KB)
//! ```
//!
//! The next round's `stream[c]` reads `block'[c]`, so each chain is a
//! pipeline: memory and compute tasks of *different* rounds overlap,
//! which is exactly the steady state a class-aware scheduler has to
//! keep both worker pools fed through.

use crate::common::Layout;
use tss_sim::{Rng, RuntimeDist};
use tss_trace::{OperandDesc, TaskTrace, TraceGenerator};

/// Bytes per streamed block. Two blocks + digest put a stream task's
/// footprint far above the executor's 32 KB memory-class threshold.
pub const STREAM_BLOCK_BYTES: u64 = 64 << 10;

/// Bytes per digest handed from a stream task to its crunch consumer —
/// small enough that the crunch task stays compute-class.
pub const DIGEST_BYTES: u64 = 4 << 10;

/// Trace generator for the mixed stream/crunch pipeline.
#[derive(Debug, Clone)]
pub struct MixedGen {
    /// Independent stream→crunch chains per round.
    pub width: usize,
    /// Pipeline rounds.
    pub rounds: usize,
}

impl MixedGen {
    /// A generator over `width` chains for `rounds` rounds.
    pub fn new(width: usize, rounds: usize) -> Self {
        MixedGen { width, rounds }
    }

    /// Tasks per run: one stream + one crunch per chain per round.
    pub fn task_count(&self) -> usize {
        self.rounds * self.width * 2
    }
}

impl TraceGenerator for MixedGen {
    fn name(&self) -> &str {
        "Mixed"
    }

    fn generate(&self, seed: u64) -> TaskTrace {
        let mut trace = TaskTrace::new("Mixed");
        let stream = trace.add_kernel("stream");
        let crunch = trace.add_kernel("crunch");
        let mut rng = Rng::seeded(seed ^ 0x3D1E);
        let mut layout = Layout::new();
        // Stream runtime is nominal (the mixed payload memcpys the
        // footprint instead of spinning); crunch carries the spin time.
        let stream_dist = RuntimeDist::from_us(8.0, 10.0, 10.0);
        let crunch_dist = RuntimeDist::from_us(20.0, 45.0, 42.0);

        let mut blocks = layout.objects(self.width, STREAM_BLOCK_BYTES);
        for _round in 0..self.rounds {
            for block in &mut blocks {
                let next = layout.object(STREAM_BLOCK_BYTES);
                let digest = layout.object(DIGEST_BYTES);
                trace.push_task(
                    stream,
                    stream_dist.sample(&mut rng),
                    vec![
                        OperandDesc::input(*block, STREAM_BLOCK_BYTES as u32),
                        OperandDesc::output(next, STREAM_BLOCK_BYTES as u32),
                        OperandDesc::output(digest, DIGEST_BYTES as u32),
                    ],
                );
                let result = layout.object(1 << 10);
                trace.push_task(
                    crunch,
                    crunch_dist.sample(&mut rng),
                    vec![
                        OperandDesc::input(digest, DIGEST_BYTES as u32),
                        OperandDesc::output(result, 1 << 10),
                    ],
                );
                *block = next;
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::{parallelism_profile, DepGraph};

    /// The executor's memory-class footprint threshold (`tss-exec` is a
    /// downstream crate, so the contract is pinned numerically here:
    /// `payload::MEMORY_CLASS_BYTES` = CHUNK_CAP/2 = 32 KB).
    const MEMORY_CLASS_BYTES: u64 = 32 << 10;

    fn footprint(t: &tss_trace::TaskDesc) -> u64 {
        t.operands.iter().map(|o| o.size as u64).sum()
    }

    #[test]
    fn task_count_formula() {
        let gen = MixedGen::new(8, 3);
        assert_eq!(gen.task_count(), 48);
        assert_eq!(gen.generate(0).len(), gen.task_count());
    }

    #[test]
    fn stream_and_crunch_straddle_the_class_threshold() {
        let trace = MixedGen::new(4, 2).generate(7);
        for (i, t) in trace.iter().enumerate() {
            let fp = footprint(t);
            if i % 2 == 0 {
                assert!(fp >= MEMORY_CLASS_BYTES, "stream task {i} footprint {fp}");
            } else {
                assert!(fp < MEMORY_CLASS_BYTES, "crunch task {i} footprint {fp}");
            }
        }
    }

    #[test]
    fn chains_pipeline_through_rounds() {
        let gen = MixedGen::new(2, 2);
        let trace = gen.generate(0);
        let g = DepGraph::from_trace(&trace);
        // Round 0 chain 0: task 0 stream -> task 1 crunch.
        assert!(g.reachable(0, 1), "crunch must wait for its digest");
        // Round 1 chain 0's stream (task 4) reads round 0's out-block.
        assert!(g.reachable(0, 4), "rounds must pipeline through blocks");
        // Chains stay independent.
        assert!(!g.reachable(0, 2) && !g.reachable(2, 0));
    }

    #[test]
    fn wide_parallelism_across_chains() {
        let trace = MixedGen::new(16, 4).generate(3);
        let g = DepGraph::from_trace(&trace);
        let p = parallelism_profile(&trace, &g);
        assert!(p.max_width >= 16, "width {}", p.max_width);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = MixedGen::new(8, 4).generate(11);
        let b = MixedGen::new(8, 4).generate(11);
        assert_eq!(a.tasks(), b.tasks());
    }
}
