//! Shared helpers for the benchmark generators: address-space layout and
//! runtime samplers calibrated to Table I.

use tss_sim::{us_to_cycles, Cycle, Rng};

/// Hands out non-overlapping, page-aligned base addresses for memory
/// objects. Every distinct object gets a distinct base address — which
/// is exactly how the ORTs identify objects (Section III.A limits
/// analysis to consecutive memory regions named by their base pointer).
#[derive(Debug)]
pub struct Layout {
    next: u64,
}

impl Layout {
    /// A fresh address space (objects start at 1 MB; 0 stays invalid).
    pub fn new() -> Self {
        Layout { next: 1 << 20 }
    }

    /// Reserves an object of `bytes` and returns its base address.
    pub fn object(&mut self, bytes: u64) -> u64 {
        let addr = self.next;
        // Round the footprint up to a 4 KB page so bases stay aligned.
        self.next += bytes.div_ceil(4096).max(1) * 4096;
        addr
    }

    /// Reserves `count` objects of `bytes` each.
    pub fn objects(&mut self, count: usize, bytes: u64) -> Vec<u64> {
        (0..count).map(|_| self.object(bytes)).collect()
    }
}

impl Default for Layout {
    fn default() -> Self {
        Self::new()
    }
}

/// A piecewise-uniform runtime sampler: `(lo_us, hi_us, weight)` pieces.
/// Used where the paper pins more than three statistics (e.g. H264 and
/// Knn, where "~95% of the tasks run for more than 100 µs" *and* the
/// min/median/average of Table I must hold).
#[derive(Debug, Clone)]
pub struct PiecewiseUs {
    pieces: Vec<(f64, f64, f64)>,
    total_weight: f64,
}

impl PiecewiseUs {
    /// Builds a sampler from `(lo_us, hi_us, weight)` pieces.
    ///
    /// # Panics
    ///
    /// Panics on an empty list, non-positive weights, or inverted pieces.
    pub fn new(pieces: Vec<(f64, f64, f64)>) -> Self {
        assert!(!pieces.is_empty(), "need at least one piece");
        for &(lo, hi, w) in &pieces {
            assert!(lo <= hi, "inverted piece [{lo}, {hi}]");
            assert!(w > 0.0, "weights must be positive");
        }
        let total_weight = pieces.iter().map(|p| p.2).sum();
        PiecewiseUs { pieces, total_weight }
    }

    /// The H264 runtime distribution: min 2 µs, median 115 µs, average
    /// 130 µs, ~95% above 100 µs (Table I + Section VI.C).
    pub fn h264() -> Self {
        PiecewiseUs::new(vec![(2.0, 100.0, 0.05), (100.0, 115.0, 0.45), (115.0, 201.0, 0.50)])
    }

    /// The Knn runtime distribution: min 17 µs, median 107 µs, average
    /// 109 µs, ~95% above 100 µs.
    pub fn knn() -> Self {
        PiecewiseUs::new(vec![(17.0, 100.0, 0.05), (100.0, 107.0, 0.45), (107.0, 131.0, 0.50)])
    }

    /// Draws one runtime in cycles.
    pub fn sample(&self, rng: &mut Rng) -> Cycle {
        let mut pick = rng.unit() * self.total_weight;
        let mut chosen = *self.pieces.last().expect("non-empty");
        for &piece in &self.pieces {
            if pick < piece.2 {
                chosen = piece;
                break;
            }
            pick -= piece.2;
        }
        let (lo, hi, _) = chosen;
        us_to_cycles(lo + rng.unit() * (hi - lo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_objects_never_overlap() {
        let mut l = Layout::new();
        let a = l.object(16 << 10);
        let b = l.object(16 << 10);
        let c = l.object(100);
        assert!(b >= a + (16 << 10));
        assert!(c >= b + (16 << 10));
        assert_eq!(a % 4096, 0);
        assert_eq!(c % 4096, 0);
    }

    #[test]
    fn h264_distribution_hits_table_one() {
        let d = PiecewiseUs::h264();
        let mut rng = Rng::seeded(42);
        let n = 50_000;
        let mut v: Vec<Cycle> = (0..n).map(|_| d.sample(&mut rng)).collect();
        v.sort_unstable();
        let mean_us = v.iter().sum::<u64>() as f64 / n as f64 / 3200.0;
        let med_us = v[n / 2] as f64 / 3200.0;
        let above_100 = v.iter().filter(|&&c| c > us_to_cycles(100.0)).count() as f64 / n as f64;
        assert!((mean_us - 130.0).abs() < 3.0, "mean {mean_us}");
        assert!((med_us - 115.0).abs() < 4.0, "median {med_us}");
        assert!((above_100 - 0.95).abs() < 0.01, "tail {above_100}");
        assert!(v[0] >= us_to_cycles(2.0));
    }

    #[test]
    fn knn_distribution_hits_table_one() {
        let d = PiecewiseUs::knn();
        let mut rng = Rng::seeded(43);
        let n = 50_000;
        let mut v: Vec<Cycle> = (0..n).map(|_| d.sample(&mut rng)).collect();
        v.sort_unstable();
        let mean_us = v.iter().sum::<u64>() as f64 / n as f64 / 3200.0;
        let med_us = v[n / 2] as f64 / 3200.0;
        let above_100 = v.iter().filter(|&&c| c > us_to_cycles(100.0)).count() as f64 / n as f64;
        assert!((mean_us - 109.0).abs() < 2.5, "mean {mean_us}");
        assert!((med_us - 107.0).abs() < 3.0, "median {med_us}");
        assert!((above_100 - 0.95).abs() < 0.01, "tail {above_100}");
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weight_rejected() {
        let _ = PiecewiseUs::new(vec![(0.0, 1.0, 0.0)]);
    }
}
