//! SPECFEM3D-style seismic wave propagation (Table I: earth physics).
//!
//! An explicit time-stepped stencil over a blocked 2D domain
//! decomposition: each task advances one domain block by one time step,
//! reading its four neighbours' *halo* exchanges from the previous step
//! and publishing its own. Halos are double-buffered (as real codes do),
//! so successive steps' halo writes are WaW — renamed by the pipeline.
//! Table I: huge 770 KB footprints (the one benchmark far beyond L1) and
//! a wide 9–49 µs runtime spread.

use crate::common::Layout;
use tss_sim::{Rng, RuntimeDist};
use tss_trace::{OperandDesc, TaskTrace, TraceGenerator};

/// Trace generator for the seismic stencil.
#[derive(Debug, Clone)]
pub struct SpecfemGen {
    /// Domain grid dimension (blocks per side).
    pub grid: usize,
    /// Time steps.
    pub steps: usize,
}

impl SpecfemGen {
    /// A generator for a `grid × grid` decomposition over `steps` steps.
    pub fn new(grid: usize, steps: usize) -> Self {
        SpecfemGen { grid, steps }
    }

    /// Tasks per run (`grid² × steps`).
    pub fn task_count(&self) -> usize {
        self.grid * self.grid * self.steps
    }
}

impl TraceGenerator for SpecfemGen {
    fn name(&self) -> &str {
        "SPECFEM"
    }

    fn generate(&self, seed: u64) -> TaskTrace {
        let mut trace = TaskTrace::new("SPECFEM");
        let step_kernel = trace.add_kernel("advance_block");
        let mut rng = Rng::seeded(seed ^ 0x5bec);
        let mut layout = Layout::new();
        // Table I: min 9 / med 14 / avg 49 us; 770 KB data.
        let dist = RuntimeDist::from_us(9.0, 14.0, 49.0);
        let g = self.grid;
        let cell_bytes: u64 = 700 << 10;
        let halo_bytes: u64 = 16 << 10;

        let cells = layout.objects(g * g, cell_bytes);
        // Double-buffered halos: [parity][block].
        let halos: Vec<Vec<u64>> = (0..2).map(|_| layout.objects(g * g, halo_bytes)).collect();
        let at = |x: usize, y: usize| y * g + x;

        for t in 0..self.steps {
            let read_parity = (t + 1) % 2; // step t reads what t-1 wrote
            let write_parity = t % 2;
            for y in 0..g {
                for x in 0..g {
                    let mut ops = vec![OperandDesc::inout(cells[at(x, y)], cell_bytes as u32)];
                    if t > 0 {
                        // Neighbour halos from the previous step.
                        if x > 0 {
                            ops.push(OperandDesc::input(
                                halos[read_parity][at(x - 1, y)],
                                halo_bytes as u32,
                            ));
                        }
                        if x + 1 < g {
                            ops.push(OperandDesc::input(
                                halos[read_parity][at(x + 1, y)],
                                halo_bytes as u32,
                            ));
                        }
                        if y > 0 {
                            ops.push(OperandDesc::input(
                                halos[read_parity][at(x, y - 1)],
                                halo_bytes as u32,
                            ));
                        }
                        if y + 1 < g {
                            ops.push(OperandDesc::input(
                                halos[read_parity][at(x, y + 1)],
                                halo_bytes as u32,
                            ));
                        }
                    }
                    ops.push(OperandDesc::output(halos[write_parity][at(x, y)], halo_bytes as u32));
                    trace.push_task(step_kernel, dist.sample(&mut rng), ops);
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::{parallelism_profile, DepGraph};

    #[test]
    fn task_count_formula() {
        let gen = SpecfemGen::new(4, 3);
        assert_eq!(gen.task_count(), 48);
        assert_eq!(gen.generate(0).len(), 48);
    }

    #[test]
    fn stencil_dependencies_cross_steps_only() {
        let g = 4;
        let gen = SpecfemGen::new(g, 2);
        let trace = gen.generate(0);
        let graph = DepGraph::from_trace(&trace);
        let id = |t: usize, x: usize, y: usize| t * g * g + y * g + x;
        // Step-1 center block reads halos written by step-0 neighbours.
        let preds = graph.preds(id(1, 1, 1));
        for (nx, ny) in [(0, 1), (2, 1), (1, 0), (1, 2)] {
            assert!(preds.contains(&id(0, nx, ny)), "missing halo ({nx},{ny})");
        }
        // Same-step blocks are mutually independent.
        assert!(!graph.reachable(id(1, 0, 0), id(1, 3, 3)));
        assert!(!graph.reachable(id(0, 0, 0), id(0, 1, 0)));
    }

    #[test]
    fn parallelism_is_one_step_wide() {
        let g = 6;
        let trace = SpecfemGen::new(g, 8).generate(1);
        let graph = DepGraph::from_trace(&trace);
        let p = parallelism_profile(&trace, &graph);
        assert!(p.max_width >= g * g, "width {} < {}", p.max_width, g * g);
        // ...but steps serialize, so parallelism cannot exceed ~2 steps.
        assert!(p.avg_parallelism < (2 * g * g) as f64);
    }

    #[test]
    fn stats_near_table_one() {
        let trace = SpecfemGen::new(12, 8).generate(3);
        let min_us = trace.min_runtime().unwrap() as f64 / 3200.0;
        let med_us = trace.median_runtime().unwrap() as f64 / 3200.0;
        let avg_us = trace.avg_runtime() / 3200.0;
        assert!((8.5..10.5).contains(&min_us), "min {min_us}");
        assert!((12.0..18.0).contains(&med_us), "med {med_us}");
        assert!((44.0..54.0).contains(&avg_us), "avg {avg_us}");
        let data_kb = trace.avg_data_bytes() / 1024.0;
        assert!((700.0..800.0).contains(&data_kb), "data {data_kb} KB");
    }
}
