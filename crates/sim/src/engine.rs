//! The discrete-event engine: components, messages, and the event queue.
//!
//! A [`Simulation`] owns a set of [`Component`]s addressed by
//! [`ComponentId`]. Events are `(deliver_at, destination, message)`
//! triples; the queue is ordered by delivery cycle and, within a cycle, by
//! insertion order (FIFO-stable), which makes every run deterministic.
//!
//! Components react to messages via [`Component::on_message`] and use the
//! provided [`Context`] to send further messages with a non-negative
//! delay. There is no "zero-time visibility" hazard: a message sent with
//! delay 0 is delivered after all messages already enqueued for the
//! current cycle.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Cycle;

/// Identifies a component registered with a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// Returns the raw index of this component.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index.
    ///
    /// Ids are assigned sequentially by [`Simulation::add_component`];
    /// this is for assemblers that lay out a topology before creating
    /// the components (they assert the returned ids match).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    pub fn from_index(index: usize) -> Self {
        ComponentId(u32::try_from(index).expect("component index overflow"))
    }
}

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A simulated entity that reacts to messages of type `M`.
///
/// The `as_any` methods allow callers to recover the concrete type after a
/// run (e.g. to read statistics out of a pipeline module).
pub trait Component<M>: 'static {
    /// Handles one message delivered at `ctx.now()`.
    fn on_message(&mut self, msg: M, ctx: &mut Context<'_, M>);

    /// Upcasts to [`Any`] for post-run downcasting.
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast to [`Any`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Per-delivery view handed to [`Component::on_message`].
///
/// Collects outgoing messages; the engine enqueues them after the handler
/// returns.
pub struct Context<'a, M> {
    now: Cycle,
    self_id: ComponentId,
    outbox: &'a mut Vec<(Cycle, ComponentId, M)>,
    stop: &'a mut bool,
}

impl<'a, M> Context<'a, M> {
    /// The current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The id of the component currently handling a message.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Sends `msg` to `dst`, to be delivered `delay` cycles from now.
    pub fn send(&mut self, dst: ComponentId, delay: Cycle, msg: M) {
        self.outbox.push((self.now + delay, dst, msg));
    }

    /// Sends `msg` to `dst` at absolute cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past.
    pub fn send_at(&mut self, dst: ComponentId, at: Cycle, msg: M) {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        self.outbox.push((at, dst, msg));
    }

    /// Requests that the simulation stop once the current handler returns.
    pub fn request_stop(&mut self) {
        *self.stop = true;
    }
}

struct Scheduled<M> {
    when: Cycle,
    seq: u64,
    dst: ComponentId,
    msg: M,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.when == other.when && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (when, seq) pops
        // first. seq breaks ties FIFO, making runs deterministic.
        (other.when, other.seq).cmp(&(self.when, self.seq))
    }
}

/// A deterministic discrete-event simulation.
///
/// See the [crate-level documentation](crate) for an example.
pub struct Simulation<M> {
    now: Cycle,
    seq: u64,
    queue: BinaryHeap<Scheduled<M>>,
    components: Vec<Box<dyn Component<M>>>,
    stop: bool,
    events_processed: u64,
}

impl<M: 'static> Default for Simulation<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: 'static> Simulation<M> {
    /// Creates an empty simulation at cycle 0.
    pub fn new() -> Self {
        Simulation {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            components: Vec::new(),
            stop: false,
            events_processed: 0,
        }
    }

    /// Registers a component and returns its id.
    pub fn add_component(&mut self, c: Box<dyn Component<M>>) -> ComponentId {
        let id = ComponentId(u32::try_from(self.components.len()).expect("too many components"));
        self.components.push(c);
        id
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Enqueues `msg` for delivery to `dst` at absolute cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past or `dst` is not registered.
    pub fn schedule(&mut self, at: Cycle, dst: ComponentId, msg: M) {
        assert!(at >= self.now, "cannot schedule into the past");
        assert!(dst.index() < self.components.len(), "unknown component {dst}");
        self.queue.push(Scheduled { when: at, seq: self.seq, dst, msg });
        self.seq += 1;
    }

    /// The current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Total messages delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Whether a stop was requested by a component.
    pub fn stop_requested(&self) -> bool {
        self.stop
    }

    /// Runs until the event queue drains or a component requests a stop.
    /// Returns the final simulation time.
    pub fn run(&mut self) -> Cycle {
        self.run_until(Cycle::MAX)
    }

    /// Runs until the queue drains, a stop is requested, or the next event
    /// would be delivered after `deadline`. Returns the final time.
    pub fn run_until(&mut self, deadline: Cycle) -> Cycle {
        let mut outbox: Vec<(Cycle, ComponentId, M)> = Vec::with_capacity(16);
        while !self.stop {
            let Some(head) = self.queue.peek() else { break };
            if head.when > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            debug_assert!(ev.when >= self.now, "event queue went backwards");
            self.now = ev.when;
            self.events_processed += 1;
            {
                let comp = &mut self.components[ev.dst.index()];
                let mut ctx = Context {
                    now: self.now,
                    self_id: ev.dst,
                    outbox: &mut outbox,
                    stop: &mut self.stop,
                };
                comp.on_message(ev.msg, &mut ctx);
            }
            for (when, dst, msg) in outbox.drain(..) {
                assert!(
                    dst.index() < self.components.len(),
                    "message sent to unknown component {dst}"
                );
                self.queue.push(Scheduled { when, seq: self.seq, dst, msg });
                self.seq += 1;
            }
        }
        self.now
    }

    /// Borrows a component, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or the component is not a `T`.
    pub fn component<T: 'static>(&self, id: ComponentId) -> &T {
        self.components[id.index()]
            .as_any()
            .downcast_ref::<T>()
            .unwrap_or_else(|| panic!("component {id} is not a {}", std::any::type_name::<T>()))
    }

    /// Mutably borrows a component, downcast to its concrete type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or the component is not a `T`.
    pub fn component_mut<T: 'static>(&mut self, id: ComponentId) -> &mut T {
        self.components[id.index()]
            .as_any_mut()
            .downcast_mut::<T>()
            .unwrap_or_else(|| panic!("component {id} is not a {}", std::any::type_name::<T>()))
    }

    /// Whether the event queue is empty.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Log,
    }

    struct Recorder {
        seen: Vec<(Cycle, u32)>,
    }

    impl Component<Msg> for Recorder {
        fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if let Msg::Ping(v) = msg {
                self.seen.push((ctx.now(), v));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn delivers_in_time_order_fifo_within_cycle() {
        let mut sim = Simulation::new();
        let r = sim.add_component(Box::new(Recorder { seen: vec![] }));
        sim.schedule(5, r, Msg::Ping(1));
        sim.schedule(3, r, Msg::Ping(2));
        sim.schedule(5, r, Msg::Ping(3));
        sim.schedule(0, r, Msg::Ping(4));
        sim.run();
        let rec = sim.component::<Recorder>(r);
        assert_eq!(rec.seen, vec![(0, 4), (3, 2), (5, 1), (5, 3)]);
        assert_eq!(sim.events_processed(), 4);
    }

    struct Chain {
        next: Option<ComponentId>,
        fired: bool,
    }

    impl Component<Msg> for Chain {
        fn on_message(&mut self, _msg: Msg, ctx: &mut Context<'_, Msg>) {
            self.fired = true;
            if let Some(n) = self.next {
                ctx.send(n, 7, Msg::Ping(0));
            } else {
                ctx.request_stop();
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn chained_sends_accumulate_latency_and_stop_works() {
        let mut sim = Simulation::new();
        let c2 = sim.add_component(Box::new(Chain { next: None, fired: false }));
        let c1 = sim.add_component(Box::new(Chain { next: Some(c2), fired: false }));
        let c0 = sim.add_component(Box::new(Chain { next: Some(c1), fired: false }));
        sim.schedule(0, c0, Msg::Log);
        // Events beyond the stop are dropped on the floor.
        sim.schedule(1_000, c0, Msg::Log);
        let end = sim.run();
        assert_eq!(end, 14);
        assert!(sim.stop_requested());
        assert!(sim.component::<Chain>(c2).fired);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new();
        let r = sim.add_component(Box::new(Recorder { seen: vec![] }));
        sim.schedule(10, r, Msg::Ping(1));
        sim.schedule(20, r, Msg::Ping(2));
        sim.run_until(15);
        assert_eq!(sim.component::<Recorder>(r).seen.len(), 1);
        sim.run_until(25);
        assert_eq!(sim.component::<Recorder>(r).seen.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new();
        let r = sim.add_component(Box::new(Recorder { seen: vec![] }));
        sim.schedule(10, r, Msg::Ping(1));
        sim.run();
        sim.schedule(5, r, Msg::Ping(2));
    }

    #[test]
    #[should_panic(expected = "is not a")]
    fn wrong_downcast_panics() {
        let mut sim: Simulation<Msg> = Simulation::new();
        let r = sim.add_component(Box::new(Recorder { seen: vec![] }));
        let _ = sim.component::<Chain>(r);
    }

    #[test]
    fn zero_delay_is_delivered_after_already_queued_same_cycle_events() {
        struct Replier {
            target: Option<ComponentId>,
        }
        impl Component<Msg> for Replier {
            fn on_message(&mut self, _m: Msg, ctx: &mut Context<'_, Msg>) {
                if let Some(t) = self.target.take() {
                    ctx.send(t, 0, Msg::Ping(99));
                }
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut sim = Simulation::new();
        let rec = sim.add_component(Box::new(Recorder { seen: vec![] }));
        let rep = sim.add_component(Box::new(Replier { target: Some(rec) }));
        sim.schedule(4, rep, Msg::Log);
        sim.schedule(4, rec, Msg::Ping(1));
        sim.run();
        // Ping(1) was enqueued first, so it is seen before the zero-delay reply.
        assert_eq!(sim.component::<Recorder>(rec).seen, vec![(4, 1), (4, 99)]);
    }
}
