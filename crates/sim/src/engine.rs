//! The discrete-event engine: components, messages, and the event queue.
//!
//! A [`Simulation`] owns a set of components addressed by
//! [`ComponentId`], held in a [`ComponentStore`]. Events are
//! `(deliver_at, destination, message)` triples; the queue is ordered by
//! delivery cycle and, within a cycle, by insertion order (FIFO-stable),
//! which makes every run deterministic.
//!
//! Components react to messages via [`Component::on_message`] and use the
//! provided [`Context`] to send further messages with a non-negative
//! delay. There is no "zero-time visibility" hazard: a message sent with
//! delay 0 is delivered after all messages already enqueued for the
//! current cycle.
//!
//! # Dispatch
//!
//! The store decides how a delivery reaches its handler. [`DynStore`]
//! (the default) boxes heterogeneous components behind `dyn Component`
//! and is what ad-hoc test benches use. Monomorphized stores — an enum
//! over the concrete module types, like `tss-core`'s `SystemStore` —
//! turn every delivery into a direct match arm instead of a vtable hop,
//! and post-run extraction into a field access instead of an `Any`
//! downcast (DESIGN.md §9.1).
//!
//! # Event core
//!
//! The queue is a hierarchical **calendar queue** (timing wheel + spill
//! level), not a comparison heap — see `DESIGN.md` §6 and §9.2. Frontend
//! delays are small bounded constants (Table II: 16-cycle packet
//! processing, 22-cycle eDRAM, single-cycle ring hops), so almost every
//! send lands within the wheel's horizon and costs O(1) with no
//! comparisons; only far-future events (task completions, congested ring
//! arrivals) take the sorted spill path. Event nodes are recycled
//! through a slab whose LIFO free list keeps the hottest node in cache,
//! steady-state scheduling performs no allocation, and a queued message
//! never moves in memory between `schedule` and delivery. Sends that
//! land on the **current** cycle take a dedicated fast lane that skips
//! the wheel entirely (§9.2).

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

use crate::time::Cycle;

/// Name of the event-queue implementation backing [`Simulation`], for
/// benchmark provenance (`perf` records it in `BENCH_pipeline.json`).
pub const EVENT_CORE: &str = "calendar-wheel/fastlane";

/// Identifies a component registered with a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub(crate) u32);

impl ComponentId {
    /// Returns the raw index of this component.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index.
    ///
    /// Ids are assigned sequentially by [`Simulation::add`]; this is for
    /// assemblers that lay out a topology before creating the components
    /// (they assert the returned ids match).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    pub fn from_index(index: usize) -> Self {
        ComponentId(u32::try_from(index).expect("component index overflow"))
    }
}

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A simulated entity that reacts to messages of type `M`.
pub trait Component<M>: 'static {
    /// Handles one message delivered at `ctx.now()`.
    fn on_message(&mut self, msg: M, ctx: &mut Context<'_, M>);
}

/// Holds a simulation's components and routes deliveries to them.
///
/// Implementations choose the dispatch mechanism: [`DynStore`] pays a
/// virtual call per delivery; a concrete enum store (see `tss-core`'s
/// `SystemStore`) dispatches through a match and lets the handlers
/// inline into the event loop.
pub trait ComponentStore<M>: 'static {
    /// Delivers `msg` to component `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `dst` is not a registered component.
    fn deliver(&mut self, dst: ComponentId, msg: M, ctx: &mut Context<'_, M>);

    /// Number of registered components.
    fn len(&self) -> usize;

    /// Whether the store holds no components.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A store that can register components of type `T`.
///
/// [`DynStore`] implements this for every `T: Component<M>`; enum stores
/// implement it once per variant type.
pub trait Insert<T> {
    /// Appends `c`, returning its raw index.
    fn insert(&mut self, c: T) -> usize;
}

/// A store that can hand back components of concrete type `T` after a
/// run (statistics extraction).
///
/// [`DynStore`] implements this via an `Any` downcast; enum stores match
/// on the variant — no `Any` in sight.
pub trait Extract<T> {
    /// The component at `index` if it exists *and* is a `T`.
    fn get(&self, index: usize) -> Option<&T>;

    /// Mutable variant of [`Extract::get`].
    fn get_mut(&mut self, index: usize) -> Option<&mut T>;
}

/// Internal upcast shim so [`DynStore`] can downcast its boxes without
/// forcing `as_any` boilerplate onto every [`Component`] implementation
/// (the blanket impl below writes it once, for all of them).
trait AnyComponent<M>: Component<M> {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<M, T: Component<M>> AnyComponent<M> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The default component store: boxed trait objects, one virtual call
/// per delivery, extraction by `Any` downcast. Maximally flexible (any
/// mix of component types, no wiring); the pipeline's hot path uses a
/// monomorphized enum store instead.
pub struct DynStore<M> {
    items: Vec<Box<dyn AnyComponent<M>>>,
}

impl<M> Default for DynStore<M> {
    fn default() -> Self {
        DynStore { items: Vec::new() }
    }
}

impl<M: 'static> ComponentStore<M> for DynStore<M> {
    #[inline]
    fn deliver(&mut self, dst: ComponentId, msg: M, ctx: &mut Context<'_, M>) {
        self.items[dst.index()].on_message(msg, ctx);
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

impl<M: 'static, T: Component<M>> Insert<T> for DynStore<M> {
    fn insert(&mut self, c: T) -> usize {
        self.items.push(Box::new(c));
        self.items.len() - 1
    }
}

impl<M: 'static, T: Component<M>> Extract<T> for DynStore<M> {
    fn get(&self, index: usize) -> Option<&T> {
        self.items.get(index)?.as_any().downcast_ref()
    }

    fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        self.items.get_mut(index)?.as_any_mut().downcast_mut()
    }
}

/// Per-delivery view handed to [`Component::on_message`].
///
/// Sends go straight into the event queue (no intermediate outbox — the
/// queue and the component store are disjoint borrows of the
/// simulation), so a handler's messages are enqueued in the order it
/// sends them.
pub struct Context<'a, M> {
    now: Cycle,
    self_id: ComponentId,
    queue: &'a mut CalendarQueue<M>,
    /// Registered component count, for the send-path destination check.
    ///
    /// Invariant: handlers only address ids handed out by
    /// [`Simulation::add`], so the check is a `debug_assert` here (the
    /// public `Simulation::schedule` keeps its release-mode check; a
    /// bad id would also fault at delivery, just less legibly).
    component_count: usize,
    stop: &'a mut bool,
}

impl<'a, M> Context<'a, M> {
    /// The current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The id of the component currently handling a message.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Sends `msg` to `dst`, to be delivered `delay` cycles from now.
    ///
    /// A zero-delay send takes the fast lane: it is delivered within the
    /// current cycle, after everything already enqueued for it.
    pub fn send(&mut self, dst: ComponentId, delay: Cycle, msg: M) {
        debug_assert!(dst.index() < self.component_count, "message sent to unknown {dst}");
        self.queue.push(self.now + delay, dst, msg);
    }

    /// Sends `msg` to `dst` at absolute cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past.
    pub fn send_at(&mut self, dst: ComponentId, at: Cycle, msg: M) {
        assert!(at >= self.now, "cannot schedule into the past: {at} < {}", self.now);
        debug_assert!(dst.index() < self.component_count, "message sent to unknown {dst}");
        self.queue.push(at, dst, msg);
    }

    /// Requests that the simulation stop once the current handler returns.
    pub fn request_stop(&mut self) {
        *self.stop = true;
    }
}

// ---------------------------------------------------------------------
// Calendar queue (fast lane + timing wheel + spill level)
// ---------------------------------------------------------------------

/// Sentinel slab index for "no node".
const NIL: u32 = u32::MAX;

/// Cycles per level-0 bucket span: level 0 resolves single cycles over
/// one 4096-cycle *segment*; level 1 resolves segments.
const L0_BITS: u32 = 12;
/// Level-0 buckets (one simulated cycle each) — one segment's worth.
const L0_SIZE: usize = 1 << L0_BITS;
const L0_MASK: u64 = (L0_SIZE - 1) as u64;
const L0_WORDS: usize = L0_SIZE / 64;
/// Level-1 buckets (one segment each): the two wheels together cover
/// `L0_SIZE * L1_SIZE` = 16.7M cycles ahead of `base`, which exceeds
/// every delay the pipeline generates (task runtimes are ≤ ~320k
/// cycles); the sorted spill level exists only for pathological sends.
const L1_SIZE: usize = 4096;
const L1_WORDS: usize = L1_SIZE / 64;

/// One event node in the slab. Freed nodes are chained through `next`.
///
/// The slab's LIFO free list is deliberate cache policy, not just
/// allocation hygiene: the most recently delivered node is reused for
/// the next send, so sparse traffic (a software-runtime decode tick
/// every ~2240 cycles, a ping-pong) keeps rewriting the same hot lines.
/// A per-bucket ring-buffer layout was tried for ISSUE 5 and *lost* on
/// exactly those patterns (§9.2): 4096 cold per-bucket buffers scatter
/// what the slab concentrates.
struct Node<M> {
    when: Cycle,
    dst: ComponentId,
    next: u32,
    msg: Option<M>,
}

/// FIFO list of a bucket (or spill segment): slab head/tail indices.
#[derive(Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
}

const EMPTY_BUCKET: Bucket = Bucket { head: NIL, tail: NIL };

/// The hierarchical calendar queue (fast lane + two timing-wheel levels
/// + spill).
///
/// - **Fast lane**: sends landing on the *current* cycle (`when ==
///   base`; in handler terms, delay 0). They skip the wheel — no node
///   allocation, no bucket indexing, no occupancy bitmaps — one
///   ring-buffer append, drained in send order after the current
///   cycle's bucket empties.
/// - **Level 0**: per-cycle FIFO buckets for the current segment
///   (`seg(base)`), with an occupancy bitmap for "next non-empty cycle".
/// - **Level 1**: per-*segment* FIFO buckets for the next 4096 segments;
///   when `base` enters a segment, its list is redistributed into level
///   0 in insertion order.
/// - **Spill**: segments beyond the level-1 horizon, as FIFO lists in a
///   sorted map; they refill level 1 as the window advances.
///
/// Determinism argument (DESIGN.md §6, §9.2): all bucket entries for
/// cycle `c` are pushed while `base < c` (once `base == c`, same-cycle
/// sends are routed to the fast lane instead), so every bucket entry
/// globally precedes every fast-lane entry of its cycle, and draining
/// bucket-then-fast-lane is exactly global insertion order. An event is
/// pushed directly to level 0 only when its cycle lies in the current
/// segment, which is strictly after that segment's level-1 list was
/// redistributed (and any spill list migrated), so every per-cycle list
/// is always in global insertion order — FIFO-within-cycle without a
/// sequence counter. All three wheel levels share one node slab;
/// steady-state scheduling allocates nothing and a queued message never
/// moves in memory between `schedule` and delivery.
struct CalendarQueue<M> {
    /// Current wheel floor. Invariant: `base` equals the delivery time
    /// of the last popped event (or 0), so it never exceeds the
    /// simulation's `now` and every `push` satisfies `when >= base`.
    base: Cycle,
    len: usize,
    peak: usize,
    /// Same-cycle sends (`when == base`), in send order.
    fast: VecDeque<(ComponentId, M)>,
    nodes: Vec<Node<M>>,
    free_head: u32,
    l0: Vec<Bucket>,
    /// Occupancy bitmaps, cache-line-aligned: each is scanned as a unit
    /// on every segment advance, so neither may straddle into the
    /// other's (or the header fields') lines (ISSUE 4 padding
    /// satellite).
    occ0: crate::stats::CachePadded<[u64; L0_WORDS]>,
    l1: Vec<Bucket>,
    occ1: crate::stats::CachePadded<[u64; L1_WORDS]>,
    /// Ultra-far events: segment index -> FIFO list, sorted.
    spill: BTreeMap<u64, Bucket>,
    /// Cached first spill segment, `u64::MAX` when empty.
    spill_min_seg: u64,
}

/// Segment of a cycle.
fn seg(when: Cycle) -> u64 {
    when >> L0_BITS
}

impl<M> CalendarQueue<M> {
    fn new() -> Self {
        CalendarQueue {
            base: 0,
            len: 0,
            peak: 0,
            fast: VecDeque::with_capacity(16),
            nodes: Vec::with_capacity(1024),
            free_head: NIL,
            l0: vec![EMPTY_BUCKET; L0_SIZE],
            occ0: crate::stats::CachePadded::new([0; L0_WORDS]),
            l1: vec![EMPTY_BUCKET; L1_SIZE],
            occ1: crate::stats::CachePadded::new([0; L1_WORDS]),
            spill: BTreeMap::new(),
            spill_min_seg: u64::MAX,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn alloc_node(&mut self, when: Cycle, dst: ComponentId, msg: M) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let n = &mut self.nodes[idx as usize];
            self.free_head = n.next;
            n.when = when;
            n.dst = dst;
            n.next = NIL;
            n.msg = Some(msg);
            idx
        } else {
            let idx = self.nodes.len();
            assert!(idx < NIL as usize, "event slab exhausted 32-bit indices");
            self.nodes.push(Node { when, dst, next: NIL, msg: Some(msg) });
            idx as u32
        }
    }

    /// Enqueues an event. Precondition (upheld by `Simulation`):
    /// `when >= self.base`.
    fn push(&mut self, when: Cycle, dst: ComponentId, msg: M) {
        debug_assert!(when >= self.base, "push below the wheel base");
        self.len += 1;
        if self.len > self.peak {
            self.peak = self.len;
        }
        if when == self.base {
            // Fast lane: the send lands on the cycle being drained (or,
            // between runs, on the resume cycle). Everything already
            // queued for this cycle was pushed earlier, so appending
            // here preserves global FIFO order.
            self.fast.push_back((dst, msg));
            return;
        }
        let idx = self.alloc_node(when, dst, msg);
        let s = seg(when);
        let delta = s - seg(self.base);
        if delta == 0 {
            let b = (when & L0_MASK) as usize;
            Self::append(&mut self.l0[b], &mut self.nodes, idx);
            self.occ0[b >> 6] |= 1u64 << (b & 63);
        } else if delta < L1_SIZE as u64 {
            let b = (s & (L1_SIZE as u64 - 1)) as usize;
            Self::append(&mut self.l1[b], &mut self.nodes, idx);
            self.occ1[b >> 6] |= 1u64 << (b & 63);
        } else {
            let list = self.spill.entry(s).or_insert(EMPTY_BUCKET);
            if list.head == NIL {
                list.head = idx;
            } else {
                nodes_link(&mut self.nodes, list.tail, idx);
            }
            list.tail = idx;
            self.spill_min_seg = self.spill_min_seg.min(s);
        }
    }

    fn append(bucket: &mut Bucket, nodes: &mut [Node<M>], idx: u32) {
        if bucket.head == NIL {
            bucket.head = idx;
        } else {
            nodes_link(nodes, bucket.tail, idx);
        }
        bucket.tail = idx;
    }

    /// First occupied level-0 bit at or after `from` (no wrap: level 0
    /// only holds cycles of the current segment at positions `>= base`).
    fn scan_l0(&self, from: usize) -> Option<usize> {
        let mut word_idx = from >> 6;
        let mut w = self.occ0[word_idx] & (u64::MAX << (from & 63));
        loop {
            if w != 0 {
                return Some((word_idx << 6) | w.trailing_zeros() as usize);
            }
            word_idx += 1;
            if word_idx == L0_WORDS {
                return None;
            }
            w = self.occ0[word_idx];
        }
    }

    /// Offset (in segments, `1..L1_SIZE`) of the next occupied level-1
    /// bucket strictly after ring position `cur`, or `None`.
    fn scan_l1(&self, cur: usize) -> Option<usize> {
        let mut word_idx = cur >> 6;
        let mut w = self.occ1[word_idx] & !(u64::MAX >> (63 - (cur & 63)));
        let mut visited = 0;
        loop {
            if w != 0 {
                let b = (word_idx << 6) | w.trailing_zeros() as usize;
                let offset = (b + L1_SIZE - cur) & (L1_SIZE - 1);
                debug_assert!(offset != 0, "current segment cannot sit in level 1");
                return Some(offset);
            }
            visited += 1;
            if visited > L1_WORDS {
                return None;
            }
            word_idx = (word_idx + 1) & (L1_WORDS - 1);
            w = self.occ1[word_idx];
        }
    }

    /// Earliest event cycle in a segment list (O(list length); runs once
    /// per segment advance, only to honor `deadline` without mutating).
    fn list_min_when(&self, mut idx: u32) -> Cycle {
        let mut min = Cycle::MAX;
        while idx != NIL {
            let n = &self.nodes[idx as usize];
            min = min.min(n.when);
            idx = n.next;
        }
        min
    }

    /// Pops the earliest event if its delivery time is `<= deadline`.
    ///
    /// Advances `base` (redistributing wheel levels) only when committing
    /// to a delivery, so a deadline miss leaves the queue untouched and
    /// `base` never outruns the simulation clock.
    fn pop_at_or_before(&mut self, deadline: Cycle) -> Option<(Cycle, ComponentId, M)> {
        if self.len == 0 || self.base > deadline {
            // Every queued event satisfies `when >= base`, so a floor
            // past the deadline rules them all out at once.
            return None;
        }
        let bit = (self.base & L0_MASK) as usize;
        // 1. Current cycle, queued-before-entry events first: they were
        //    pushed while `base` was still behind this cycle, so they
        //    precede every fast-lane entry in insertion order. (A
        //    non-empty bucket at this ring position always holds cycle
        //    `base` exactly: same-cycle pushes are diverted to the fast
        //    lane the moment `base` reaches a cycle, and ring positions
        //    are unique within a segment.)
        // 2. Fast lane, in send order.
        // 3. Advance the wheel to the next occupied cycle.
        let head = self.l0[bit].head;
        if head != NIL && self.nodes[head as usize].when == self.base {
            return Some(self.pop_bucket_head(bit));
        }
        if !self.fast.is_empty() {
            let (dst, msg) = self.fast.pop_front().expect("checked non-empty");
            self.len -= 1;
            return Some((self.base, dst, msg));
        }
        let found = match self.scan_l0(bit) {
            Some(p) => p,
            None => {
                // Current segment exhausted: locate the next source
                // segment in level 1 (or the spill), peek its earliest
                // cycle, and only then commit.
                // Level-1 segments always precede spill segments (the
                // spill starts past the level-1 horizon), so level 1
                // wins whenever it is non-empty.
                let bs = seg(self.base);
                let (next_seg, head) = match self.scan_l1((bs & (L1_SIZE as u64 - 1)) as usize) {
                    Some(off) => {
                        let s = bs + off as u64;
                        (s, self.l1[(s & (L1_SIZE as u64 - 1)) as usize].head)
                    }
                    None => {
                        let s = self.spill_min_seg;
                        debug_assert!(s != u64::MAX, "events lost: len > 0 but queues empty");
                        (s, self.spill.get(&s).expect("cached spill segment").head)
                    }
                };
                let m = self.list_min_when(head);
                debug_assert_eq!(seg(m), next_seg, "segment list holds a foreign cycle");
                if m > deadline {
                    return None;
                }
                self.advance_to(m);
                (m & L0_MASK) as usize
            }
        };
        let c = (self.base & !L0_MASK) | found as Cycle;
        if c > deadline {
            return None;
        }
        self.base = c;
        Some(self.pop_bucket_head(found))
    }

    /// Unlinks and recycles the head node of level-0 bucket `b` (which
    /// the caller has verified holds the current cycle).
    fn pop_bucket_head(&mut self, b: usize) -> (Cycle, ComponentId, M) {
        let bucket = &mut self.l0[b];
        let idx = bucket.head;
        let node = &mut self.nodes[idx as usize];
        debug_assert_eq!(node.when, self.base, "bucket holds a foreign cycle");
        let msg = node.msg.take().expect("queued node lost its message");
        let when = node.when;
        let dst = node.dst;
        bucket.head = node.next;
        node.next = self.free_head;
        self.free_head = idx;
        if bucket.head == NIL {
            bucket.tail = NIL;
            self.occ0[b >> 6] &= !(1u64 << (b & 63));
        }
        self.len -= 1;
        (when, dst, msg)
    }

    /// Commits a segment advance to the segment of `m` (the next event):
    /// migrates spill segments that entered the level-1 window, then
    /// redistributes the new current segment's list into level 0.
    fn advance_to(&mut self, m: Cycle) {
        debug_assert!(self.fast.is_empty(), "advancing with fast-lane events pending");
        self.base = m & !L0_MASK; // provisional: start of the new segment
        let bs = seg(m);
        // Spill segments now within [bs, bs + L1_SIZE) move to level 1.
        // Their ring slots are empty: the previous tenant segment lies
        // behind `bs` (redistributed long ago), the next one is still
        // beyond the horizon.
        while self.spill_min_seg != u64::MAX && self.spill_min_seg - bs < L1_SIZE as u64 {
            let (s, list) = self.spill.pop_first().expect("cached spill segment");
            let b = (s & (L1_SIZE as u64 - 1)) as usize;
            debug_assert_eq!(self.l1[b].head, NIL, "spill migration hit a live segment");
            self.l1[b] = list;
            self.occ1[b >> 6] |= 1u64 << (b & 63);
            self.spill_min_seg = self.spill.first_key_value().map(|(&k, _)| k).unwrap_or(u64::MAX);
        }
        // Redistribute the new current segment into level 0, preserving
        // insertion order (the list is walked head to tail).
        let b1 = (bs & (L1_SIZE as u64 - 1)) as usize;
        let mut idx = self.l1[b1].head;
        self.l1[b1] = EMPTY_BUCKET;
        self.occ1[b1 >> 6] &= !(1u64 << (b1 & 63));
        while idx != NIL {
            let next = self.nodes[idx as usize].next;
            self.nodes[idx as usize].next = NIL;
            let b = (self.nodes[idx as usize].when & L0_MASK) as usize;
            Self::append(&mut self.l0[b], &mut self.nodes, idx);
            self.occ0[b >> 6] |= 1u64 << (b & 63);
            idx = next;
        }
    }

    /// Slab nodes currently allocated (test hook: steady-state
    /// scheduling must recycle, not grow).
    #[cfg(test)]
    fn slab_len(&self) -> usize {
        self.nodes.len()
    }
}

/// Links `tail -> idx` in the slab (free function so bucket borrows and
/// node borrows stay disjoint).
fn nodes_link<M>(nodes: &mut [Node<M>], tail: u32, idx: u32) {
    nodes[tail as usize].next = idx;
}

// ---------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------

/// A deterministic discrete-event simulation over component store `S`.
///
/// See the [crate-level documentation](crate) for an example.
pub struct Simulation<M, S: ComponentStore<M> = DynStore<M>> {
    now: Cycle,
    queue: CalendarQueue<M>,
    store: S,
    stop: bool,
    events_processed: u64,
}

impl<M: 'static> Default for Simulation<M, DynStore<M>> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: 'static> Simulation<M, DynStore<M>> {
    /// Creates an empty simulation at cycle 0 with the default
    /// dyn-dispatch store.
    pub fn new() -> Self {
        Self::with_store(DynStore::default())
    }
}

impl<M: 'static, S: ComponentStore<M>> Simulation<M, S> {
    /// Creates an empty simulation at cycle 0 over `store` (usually an
    /// empty monomorphized store; components are added through
    /// [`Simulation::add`]).
    pub fn with_store(store: S) -> Self {
        Simulation { now: 0, queue: CalendarQueue::new(), store, stop: false, events_processed: 0 }
    }

    /// Registers a component and returns its id.
    pub fn add<T>(&mut self, c: T) -> ComponentId
    where
        S: Insert<T>,
    {
        let idx = self.store.insert(c);
        ComponentId(u32::try_from(idx).expect("too many components"))
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.store.len()
    }

    /// Enqueues `msg` for delivery to `dst` at absolute cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the past or `dst` is not registered.
    pub fn schedule(&mut self, at: Cycle, dst: ComponentId, msg: M) {
        assert!(at >= self.now, "cannot schedule into the past");
        assert!(dst.index() < self.store.len(), "unknown component {dst}");
        self.queue.push(at, dst, msg);
    }

    /// The current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Total messages delivered so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Peak number of simultaneously pending events observed so far.
    pub fn peak_queue_depth(&self) -> usize {
        self.queue.peak
    }

    /// Whether a stop was requested by a component.
    pub fn stop_requested(&self) -> bool {
        self.stop
    }

    /// Runs until the event queue drains or a component requests a stop.
    /// Returns the final simulation time.
    pub fn run(&mut self) -> Cycle {
        self.run_until(Cycle::MAX)
    }

    /// Runs until the queue drains, a stop is requested, or the next event
    /// would be delivered after `deadline`. Returns the final time.
    pub fn run_until(&mut self, deadline: Cycle) -> Cycle {
        let component_count = self.store.len();
        while !self.stop {
            let Some((when, dst, msg)) = self.queue.pop_at_or_before(deadline) else { break };
            debug_assert!(when >= self.now, "event queue went backwards");
            self.now = when;
            self.events_processed += 1;
            let mut ctx = Context {
                now: self.now,
                self_id: dst,
                queue: &mut self.queue,
                component_count,
                stop: &mut self.stop,
            };
            self.store.deliver(dst, msg, &mut ctx);
        }
        self.now
    }

    /// Borrows a component of concrete type `T`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or the component is not a `T`.
    pub fn component<T: 'static>(&self, id: ComponentId) -> &T
    where
        S: Extract<T>,
    {
        self.store
            .get(id.index())
            .unwrap_or_else(|| panic!("component {id} is not a {}", std::any::type_name::<T>()))
    }

    /// Mutably borrows a component of concrete type `T`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range or the component is not a `T`.
    pub fn component_mut<T: 'static>(&mut self, id: ComponentId) -> &mut T
    where
        S: Extract<T>,
    {
        self.store
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("component {id} is not a {}", std::any::type_name::<T>()))
    }

    /// Whether the event queue is empty.
    pub fn is_idle(&self) -> bool {
        self.queue.len() == 0
    }

    /// Borrows the component store (e.g. to read counters off a
    /// delegating instrumentation store; see `examples/msg_profile.rs`).
    pub fn store(&self) -> &S {
        &self.store
    }
}

// ---------------------------------------------------------------------
// Reference queue (tests only)
// ---------------------------------------------------------------------

/// The seed engine's `(when, seq)` binary-heap queue, kept as the
/// ordering oracle for the calendar queue's property tests.
#[cfg(test)]
mod reference {
    use super::{ComponentId, Cycle};
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    struct Scheduled<M> {
        when: Cycle,
        seq: u64,
        dst: ComponentId,
        msg: M,
    }

    impl<M> PartialEq for Scheduled<M> {
        fn eq(&self, other: &Self) -> bool {
            self.when == other.when && self.seq == other.seq
        }
    }
    impl<M> Eq for Scheduled<M> {}
    impl<M> PartialOrd for Scheduled<M> {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<M> Ord for Scheduled<M> {
        fn cmp(&self, other: &Self) -> Ordering {
            // Max-heap inverted so the earliest (when, seq) pops first;
            // seq breaks ties FIFO.
            (other.when, other.seq).cmp(&(self.when, self.seq))
        }
    }

    /// Totally ordered `(when, seq)` event queue.
    pub struct HeapQueue<M> {
        seq: u64,
        heap: BinaryHeap<Scheduled<M>>,
    }

    impl<M> HeapQueue<M> {
        pub fn new() -> Self {
            HeapQueue { seq: 0, heap: BinaryHeap::new() }
        }

        pub fn push(&mut self, when: Cycle, dst: ComponentId, msg: M) {
            self.heap.push(Scheduled { when, seq: self.seq, dst, msg });
            self.seq += 1;
        }

        pub fn pop(&mut self) -> Option<(Cycle, ComponentId, M)> {
            self.heap.pop().map(|s| (s.when, s.dst, s.msg))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug, PartialEq)]
    enum Msg {
        Ping(u32),
        Log,
    }

    struct Recorder {
        seen: Vec<(Cycle, u32)>,
    }

    impl Component<Msg> for Recorder {
        fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
            if let Msg::Ping(v) = msg {
                self.seen.push((ctx.now(), v));
            }
        }
    }

    #[test]
    fn delivers_in_time_order_fifo_within_cycle() {
        let mut sim = Simulation::new();
        let r = sim.add(Recorder { seen: vec![] });
        sim.schedule(5, r, Msg::Ping(1));
        sim.schedule(3, r, Msg::Ping(2));
        sim.schedule(5, r, Msg::Ping(3));
        sim.schedule(0, r, Msg::Ping(4));
        sim.run();
        let rec = sim.component::<Recorder>(r);
        assert_eq!(rec.seen, vec![(0, 4), (3, 2), (5, 1), (5, 3)]);
        assert_eq!(sim.events_processed(), 4);
        assert_eq!(sim.peak_queue_depth(), 4);
    }

    struct Chain {
        next: Option<ComponentId>,
        fired: bool,
    }

    impl Component<Msg> for Chain {
        fn on_message(&mut self, _msg: Msg, ctx: &mut Context<'_, Msg>) {
            self.fired = true;
            if let Some(n) = self.next {
                ctx.send(n, 7, Msg::Ping(0));
            } else {
                ctx.request_stop();
            }
        }
    }

    #[test]
    fn chained_sends_accumulate_latency_and_stop_works() {
        let mut sim = Simulation::new();
        let c2 = sim.add(Chain { next: None, fired: false });
        let c1 = sim.add(Chain { next: Some(c2), fired: false });
        let c0 = sim.add(Chain { next: Some(c1), fired: false });
        sim.schedule(0, c0, Msg::Log);
        // Events beyond the stop are dropped on the floor.
        sim.schedule(1_000, c0, Msg::Log);
        let end = sim.run();
        assert_eq!(end, 14);
        assert!(sim.stop_requested());
        assert!(sim.component::<Chain>(c2).fired);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new();
        let r = sim.add(Recorder { seen: vec![] });
        sim.schedule(10, r, Msg::Ping(1));
        sim.schedule(20, r, Msg::Ping(2));
        sim.run_until(15);
        assert_eq!(sim.component::<Recorder>(r).seen.len(), 1);
        sim.run_until(25);
        assert_eq!(sim.component::<Recorder>(r).seen.len(), 2);
    }

    #[test]
    fn scheduling_between_deadline_runs_stays_ordered() {
        // A deadline miss must not advance the wheel past `now`: events
        // scheduled afterwards, before the far-future one, still win.
        let mut sim = Simulation::new();
        let r = sim.add(Recorder { seen: vec![] });
        sim.schedule(10, r, Msg::Ping(1));
        sim.schedule(200_000, r, Msg::Ping(2)); // beyond the wheel horizon
        sim.run_until(15);
        sim.schedule(17, r, Msg::Ping(3));
        sim.run();
        assert_eq!(sim.component::<Recorder>(r).seen, vec![(10, 1), (17, 3), (200_000, 2)]);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Simulation::new();
        let r = sim.add(Recorder { seen: vec![] });
        sim.schedule(10, r, Msg::Ping(1));
        sim.run();
        sim.schedule(5, r, Msg::Ping(2));
    }

    #[test]
    #[should_panic(expected = "is not a")]
    fn wrong_downcast_panics() {
        let mut sim: Simulation<Msg> = Simulation::new();
        let r = sim.add(Recorder { seen: vec![] });
        let _ = sim.component::<Chain>(r);
    }

    #[test]
    fn zero_delay_is_delivered_after_already_queued_same_cycle_events() {
        struct Replier {
            target: Option<ComponentId>,
        }
        impl Component<Msg> for Replier {
            fn on_message(&mut self, _m: Msg, ctx: &mut Context<'_, Msg>) {
                if let Some(t) = self.target.take() {
                    ctx.send(t, 0, Msg::Ping(99));
                }
            }
        }
        let mut sim = Simulation::new();
        let rec = sim.add(Recorder { seen: vec![] });
        let rep = sim.add(Replier { target: Some(rec) });
        sim.schedule(4, rep, Msg::Log);
        sim.schedule(4, rec, Msg::Ping(1));
        sim.run();
        // Ping(1) was enqueued first, so it is seen before the zero-delay reply.
        assert_eq!(sim.component::<Recorder>(rec).seen, vec![(4, 1), (4, 99)]);
    }

    #[test]
    fn fast_lane_chains_preserve_send_order() {
        // A handler emitting several zero-delay sends, some of which
        // trigger further zero-delay sends, must deliver everything in
        // global send order within the cycle.
        struct Burster {
            sink: ComponentId,
            relay: Option<ComponentId>,
        }
        impl Component<Msg> for Burster {
            fn on_message(&mut self, _m: Msg, ctx: &mut Context<'_, Msg>) {
                ctx.send(self.sink, 0, Msg::Ping(1));
                if let Some(r) = self.relay {
                    ctx.send(r, 0, Msg::Log);
                }
                ctx.send(self.sink, 0, Msg::Ping(2));
            }
        }
        struct Relay {
            sink: ComponentId,
        }
        impl Component<Msg> for Relay {
            fn on_message(&mut self, _m: Msg, ctx: &mut Context<'_, Msg>) {
                ctx.send(self.sink, 0, Msg::Ping(10));
            }
        }
        let mut sim = Simulation::new();
        let sink = sim.add(Recorder { seen: vec![] });
        let relay = sim.add(Relay { sink });
        let burst = sim.add(Burster { sink, relay: Some(relay) });
        sim.schedule(7, burst, Msg::Log);
        sim.schedule(7, sink, Msg::Ping(0));
        sim.run();
        // Queued-before-entry Ping(0) first; then the burst in send
        // order; the relay's own send lands after the burst finished.
        assert_eq!(sim.component::<Recorder>(sink).seen, vec![(7, 0), (7, 1), (7, 2), (7, 10)]);
    }

    #[test]
    fn far_future_events_cross_the_spill_level() {
        // Several wheel revolutions apart, interleaved with near events.
        let mut sim = Simulation::new();
        let r = sim.add(Recorder { seen: vec![] });
        let horizon = (L0_SIZE * L1_SIZE) as Cycle;
        let ats = [1_000_000_000u64, 3, 123_456, 9_000_000_000, horizon - 1, horizon, 2 * horizon];
        for (i, at) in ats.iter().enumerate() {
            sim.schedule(*at, r, Msg::Ping(i as u32));
        }
        sim.run();
        let mut expected: Vec<(Cycle, u32)> =
            ats.iter().enumerate().map(|(i, &at)| (at, i as u32)).collect();
        expected.sort_unstable();
        assert_eq!(&sim.component::<Recorder>(r).seen, &expected);
    }

    #[test]
    fn slab_recycles_nodes_across_a_long_run() {
        // A two-component ping-pong delivers 10_000 events through a
        // queue that never holds more than one: the slab must keep
        // reusing its single (hot) node instead of growing.
        struct Pong {
            peer: Option<ComponentId>,
            left: u32,
        }
        impl Component<Msg> for Pong {
            fn on_message(&mut self, _m: Msg, ctx: &mut Context<'_, Msg>) {
                if self.left == 0 {
                    ctx.request_stop();
                    return;
                }
                self.left -= 1;
                let to = self.peer.unwrap_or(ctx.self_id());
                ctx.send(to, 3, Msg::Log);
            }
        }
        let mut sim = Simulation::new();
        let a = sim.add(Pong { peer: None, left: 10_000 });
        let b = sim.add(Pong { peer: Some(a), left: 10_000 });
        sim.component_mut::<Pong>(a).peer = Some(b);
        sim.schedule(0, a, Msg::Log);
        sim.run();
        assert!(sim.events_processed() > 10_000);
        assert_eq!(sim.peak_queue_depth(), 1, "ping-pong keeps exactly one event in flight");
        assert_eq!(sim.queue.slab_len(), 1, "slab must recycle its single node");
    }

    // -----------------------------------------------------------------
    // Property tests: calendar queue == reference heap, event for event
    // -----------------------------------------------------------------

    /// Delay classes covering the interesting regimes: same-cycle
    /// (zero-delay fast-lane sends from handlers), in-segment constants,
    /// the exact segment and level-1 horizons, and far-future spills.
    const DELAY_MENU: [Cycle; 8] = [
        0,
        1,
        16,
        L0_SIZE as Cycle - 1,
        L0_SIZE as Cycle,
        (L0_SIZE * L1_SIZE) as Cycle - 1,
        (L0_SIZE * L1_SIZE) as Cycle,
        3 * (L0_SIZE * L1_SIZE) as Cycle + 12_345,
    ];

    /// Fast-lane-heavy delay menu: mostly zero-delay sends, with just
    /// enough segment-crossing delays that fast-lane drains interleave
    /// with wheel advances and redistributions.
    const FAST_MENU: [Cycle; 8] =
        [0, 0, 0, 1, 0, L0_SIZE as Cycle, 0, (L0_SIZE * L1_SIZE) as Cycle + 7];

    /// Drains `cal` and `heap` in lockstep, asserting identical
    /// `(when, dst, payload)` streams; each delivery triggers the next
    /// batch of "handler" sends from `followups`, whose delays are drawn
    /// from `menu` relative to the delivered cycle (delay 0 exercises
    /// the fast lane: the calendar's `base` equals the delivered cycle).
    fn lockstep_drain(
        cal: &mut CalendarQueue<u32>,
        heap: &mut reference::HeapQueue<u32>,
        followups: &[Vec<(u8, u8)>],
        menu: &[Cycle],
        payload: &mut u32,
    ) -> Result<(), TestCaseError> {
        let mut delivered = 0usize;
        loop {
            let a = cal.pop_at_or_before(Cycle::MAX);
            let b = heap.pop();
            match (a, b) {
                (None, None) => break,
                (Some((wa, da, pa)), Some((wb, db, pb))) => {
                    prop_assert_eq!(wa, wb, "delivery cycle diverged");
                    prop_assert_eq!(da, db, "destination diverged");
                    prop_assert_eq!(pa, pb, "payload (insertion order) diverged");
                    if let Some(sends) = followups.get(delivered) {
                        for &(delay_ix, dst) in sends {
                            let when = wa + menu[delay_ix as usize % menu.len()];
                            let dst = ComponentId(dst as u32);
                            cal.push(when, dst, *payload);
                            heap.push(when, dst, *payload);
                            *payload += 1;
                        }
                    }
                    delivered += 1;
                }
                (a, b) => prop_assert!(false, "queue lengths diverged: {a:?} vs {b:?}"),
            }
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn calendar_matches_reference_heap(
            initial in prop::collection::vec((0u8..8, 0u8..16), 1..40),
            followups in prop::collection::vec(
                prop::collection::vec((0u8..8, 0u8..16), 0..3),
                0..400
            ),
        ) {
            let mut cal = CalendarQueue::<u32>::new();
            let mut heap = reference::HeapQueue::<u32>::new();
            let mut payload = 0u32;

            // Initial schedule: bursts share cycles via the small delay
            // menu, exercising FIFO-within-cycle from the first pop.
            for &(delay_ix, dst) in &initial {
                let when = DELAY_MENU[delay_ix as usize];
                let dst = ComponentId(dst as u32);
                cal.push(when, dst, payload);
                heap.push(when, dst, payload);
                payload += 1;
            }
            lockstep_drain(&mut cal, &mut heap, &followups, &DELAY_MENU, &mut payload)?;
            prop_assert_eq!(cal.len(), 0);
        }

        /// The ISSUE 5 fast-lane oracle: random handlers mix zero-delay
        /// fast-lane sends with queued sends across segment boundaries;
        /// delivery order must be bit-identical to the `(when, seq)`
        /// heap. Larger follow-up bursts than the base property so
        /// fast-lane chains (a delay-0 delivery spawning further delay-0
        /// sends) actually form.
        #[test]
        fn fast_lane_interleavings_match_reference_heap(
            initial in prop::collection::vec((0u8..8, 0u8..16), 1..30),
            followups in prop::collection::vec(
                prop::collection::vec((0u8..8, 0u8..16), 0..5),
                0..600
            ),
        ) {
            let mut cal = CalendarQueue::<u32>::new();
            let mut heap = reference::HeapQueue::<u32>::new();
            let mut payload = 0u32;
            for &(delay_ix, dst) in &initial {
                let when = FAST_MENU[delay_ix as usize];
                let dst = ComponentId(dst as u32);
                cal.push(when, dst, payload);
                heap.push(when, dst, payload);
                payload += 1;
            }
            lockstep_drain(&mut cal, &mut heap, &followups, &FAST_MENU, &mut payload)?;
            prop_assert_eq!(cal.len(), 0);
            prop_assert!(cal.fast.is_empty(), "fast lane drained");
        }
    }
}
