//! Deterministic discrete-event simulation substrate for the
//! [Task Superscalar](https://doi.org/10.1109/MICRO.2010.13) reproduction.
//!
//! The paper evaluates its pipeline on TaskSim, a trace-driven
//! cycle-accurate CMP simulator. This crate provides the equivalent
//! substrate: a cycle-resolution event engine in which *components*
//! (pipeline modules, cores, network links) exchange typed messages with
//! explicit delays. All behaviour is deterministic: the event queue is
//! FIFO-stable, and randomness comes only from seeded in-crate generators.
//!
//! # Quick example
//!
//! ```
//! use tss_sim::{Component, Context, Simulation};
//!
//! struct Echo { heard: u64 }
//! impl Component<u64> for Echo {
//!     fn on_message(&mut self, msg: u64, ctx: &mut Context<'_, u64>) {
//!         self.heard += msg;
//!         if msg > 1 {
//!             let me = ctx.self_id();
//!             ctx.send(me, 10, msg - 1);
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new();
//! let id = sim.add(Echo { heard: 0 });
//! sim.schedule(0, id, 3u64);
//! sim.run();
//! assert_eq!(sim.now(), 20);
//! assert_eq!(sim.component::<Echo>(id).heard, 3 + 2 + 1);
//! ```
//!
//! `Simulation::new()` uses the boxed [`engine::DynStore`]; hot paths
//! supply a monomorphized [`engine::ComponentStore`] (an enum over the
//! concrete component types) via [`Simulation::with_store`] so every
//! delivery is a direct match arm instead of a virtual call.

#![forbid(unsafe_code)]

pub mod engine;
pub mod rng;
pub mod server;
pub mod stats;
pub mod time;

pub use engine::{
    Component, ComponentId, ComponentStore, Context, DynStore, Extract, Insert, Simulation,
};
pub use rng::{Rng, RuntimeDist, SplitMix64};
pub use server::{LaneServer, ServerTimeline};
pub use stats::{CachePadded, Histogram, OnlineStats, SampleSet, Utilization};
pub use time::{cycles_to_ns, cycles_to_us, ns_to_cycles, us_to_cycles, Cycle, CLOCK_GHZ};
