//! Serial-server occupancy timelines.
//!
//! The paper's pipeline modules (gateway, ORTs, OVTs, TRSs) each process
//! one protocol packet at a time: "each pipeline module charges 16 cycles
//! for processing a packet on top of any eDRAM access overheads" (Table
//! II). Rather than simulating an explicit input queue per module, a
//! [`ServerTimeline`] tracks when the module becomes free; a packet
//! arriving at `now` starts service at `max(now, busy_until)` and the
//! caller schedules its effects at the returned completion time. This
//! yields exactly FIFO queuing at each module, and the back-pressure the
//! paper describes emerges from the accumulated delays.
//!
//! [`LaneServer`] generalizes to `n` parallel servers (used by the NoC's
//! "4 concurrent connections per segment", Table II).

use crate::time::Cycle;

/// Occupancy timeline of a single serial server.
#[derive(Debug, Clone, Default)]
pub struct ServerTimeline {
    busy_until: Cycle,
    busy_cycles: Cycle,
    jobs: u64,
}

impl ServerTimeline {
    /// A server that is free from cycle 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves the server for `cost` cycles starting no earlier than
    /// `now`, and returns the completion time.
    pub fn occupy(&mut self, now: Cycle, cost: Cycle) -> Cycle {
        let start = self.busy_until.max(now);
        self.busy_until = start + cost;
        self.busy_cycles += cost;
        self.jobs += 1;
        self.busy_until
    }

    /// The first cycle at which the server is free.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Total cycles of service performed.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy_cycles
    }

    /// Number of jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Fraction of `[0, horizon]` this server spent busy.
    ///
    /// Returns 0 for a zero horizon.
    pub fn utilization(&self, horizon: Cycle) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / horizon as f64
        }
    }
}

/// Occupancy of `n` interchangeable parallel servers (e.g. virtual
/// channels on a ring segment): each job takes the earliest-free lane.
#[derive(Debug, Clone)]
pub struct LaneServer {
    lanes: Vec<Cycle>,
    busy_cycles: Cycle,
    jobs: u64,
}

impl LaneServer {
    /// Creates `lanes` parallel servers, all free from cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "a server needs at least one lane");
        LaneServer { lanes: vec![0; lanes], busy_cycles: 0, jobs: 0 }
    }

    /// Reserves the earliest-free lane for `cost` cycles starting no
    /// earlier than `now`; returns the completion time.
    pub fn occupy(&mut self, now: Cycle, cost: Cycle) -> Cycle {
        let lane = self
            .lanes
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("at least one lane");
        let start = self.lanes[lane].max(now);
        self.lanes[lane] = start + cost;
        self.busy_cycles += cost;
        self.jobs += 1;
        self.lanes[lane]
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Total lane-cycles of service performed.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy_cycles
    }

    /// Jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Aggregate utilization over `[0, horizon]` across all lanes.
    pub fn utilization(&self, horizon: Cycle) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / (horizon as f64 * self.lanes.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = ServerTimeline::new();
        assert_eq!(s.occupy(100, 16), 116);
        assert_eq!(s.busy_until(), 116);
    }

    #[test]
    fn busy_server_queues_fifo() {
        let mut s = ServerTimeline::new();
        assert_eq!(s.occupy(0, 16), 16);
        // Arrives while busy: waits.
        assert_eq!(s.occupy(4, 16), 32);
        // Arrives after it drained: starts at arrival.
        assert_eq!(s.occupy(100, 10), 110);
        assert_eq!(s.busy_cycles(), 42);
        assert_eq!(s.jobs(), 3);
    }

    #[test]
    fn utilization_is_busy_over_horizon() {
        let mut s = ServerTimeline::new();
        s.occupy(0, 50);
        assert!((s.utilization(100) - 0.5).abs() < 1e-12);
        assert_eq!(s.utilization(0), 0.0);
    }

    #[test]
    fn lanes_run_in_parallel_then_queue() {
        let mut l = LaneServer::new(2);
        assert_eq!(l.occupy(0, 10), 10);
        assert_eq!(l.occupy(0, 10), 10); // second lane
        assert_eq!(l.occupy(0, 10), 20); // queues behind the earliest lane
        assert_eq!(l.occupy(15, 10), 25); // other lane is free at 10 < 15
        assert_eq!(l.jobs(), 4);
    }

    #[test]
    fn lane_utilization_counts_all_lanes() {
        let mut l = LaneServer::new(4);
        l.occupy(0, 100);
        assert!((l.utilization(100) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_panics() {
        let _ = LaneServer::new(0);
    }
}
