//! Simulation time: cycles of the 3.2 GHz clock used throughout the paper
//! (Table II), plus conversions to and from wall-clock nanoseconds.

/// A point (or span) in simulated time, in clock cycles.
pub type Cycle = u64;

/// Core clock frequency of the simulated CMP (Table II: 3.2 GHz).
pub const CLOCK_GHZ: f64 = 3.2;

/// Converts nanoseconds to clock cycles, rounding to the nearest cycle.
///
/// ```
/// // The paper's 256-way decode-rate target of 58 ns is ~186 cycles.
/// assert_eq!(tss_sim::ns_to_cycles(58.0), 186);
/// ```
pub fn ns_to_cycles(ns: f64) -> Cycle {
    debug_assert!(ns >= 0.0, "negative durations are meaningless");
    (ns * CLOCK_GHZ).round() as Cycle
}

/// Converts microseconds to clock cycles.
///
/// ```
/// // A 23 us MatMul task occupies a core for 73,600 cycles.
/// assert_eq!(tss_sim::us_to_cycles(23.0), 73_600);
/// ```
pub fn us_to_cycles(us: f64) -> Cycle {
    ns_to_cycles(us * 1_000.0)
}

/// Converts clock cycles to nanoseconds.
///
/// ```
/// assert!((tss_sim::cycles_to_ns(186) - 58.125).abs() < 1e-9);
/// ```
pub fn cycles_to_ns(cycles: Cycle) -> f64 {
    cycles as f64 / CLOCK_GHZ
}

/// Converts clock cycles to microseconds.
pub fn cycles_to_us(cycles: Cycle) -> f64 {
    cycles_to_ns(cycles) / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_round_trips_within_half_cycle() {
        for ns in [0.0, 1.0, 58.0, 700.0, 2_500.0, 1e6] {
            let c = ns_to_cycles(ns);
            assert!((cycles_to_ns(c) - ns).abs() <= 0.5 / CLOCK_GHZ + 1e-9);
        }
    }

    #[test]
    fn paper_rate_targets() {
        // Section II: 15 us / 256 = 58 ns/task; at 3.2 GHz that is ~186 cycles.
        assert_eq!(ns_to_cycles(15_000.0 / 256.0), 188);
        // Software decoder baseline: 700 ns = 2240 cycles.
        assert_eq!(ns_to_cycles(700.0), 2240);
        // Cell BE software decoder: ~2.5 us = 8000 cycles.
        assert_eq!(ns_to_cycles(2_500.0), 8000);
    }

    #[test]
    fn us_is_thousand_ns() {
        assert_eq!(us_to_cycles(1.0), ns_to_cycles(1_000.0));
        assert_eq!(us_to_cycles(23.0), 73_600);
    }

    #[test]
    fn cycles_to_us_matches_ns() {
        assert!((cycles_to_us(3200) - 1.0).abs() < 1e-12);
    }
}
