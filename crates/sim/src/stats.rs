//! Measurement helpers: running statistics, sample sets, histograms, and
//! busy-time utilization tracking. Used by every module that reports into
//! the paper's tables and figures.

use crate::time::Cycle;

/// Pads and aligns `T` to a 128-byte boundary so two instances can
/// never share a cache line (nor a destructive-interference pair of
/// lines: modern x86 prefetchers pull lines in adjacent pairs, so 128
/// is the safe granule, as in crossbeam's `CachePadded`).
///
/// Used wherever per-worker or per-module counters sit in an array and
/// are written from different threads (`tss-exec`'s deque headers and
/// worker slots), and on the simulator's per-module stats blocks so a
/// future parallel-sweep driver cannot regress into false sharing.
#[derive(Debug, Default, Clone, Copy)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache-line-aligned block.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consumes the wrapper, returning the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// Welford online mean/variance over `u64` observations.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<u64>,
    max: Option<u64>,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: u64) {
        self.count += 1;
        let xf = x as f64;
        let delta = xf - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (xf - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<u64> {
        self.max
    }
}

/// A retained sample set supporting exact percentiles.
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    samples: Vec<u64>,
    sorted: bool,
}

impl SampleSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: u64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `p`-th percentile (nearest-rank), `0 ≤ p ≤ 100`.
    ///
    /// Returns `None` on an empty set.
    ///
    /// # Panics
    ///
    /// Panics if `p > 100`.
    pub fn percentile(&mut self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let rank = ((p / 100.0) * (self.samples.len() - 1) as f64).round() as usize;
        Some(self.samples[rank])
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// Minimum sample.
    pub fn min(&mut self) -> Option<u64> {
        self.ensure_sorted();
        self.samples.first().copied()
    }

    /// Maximum sample.
    pub fn max(&mut self) -> Option<u64> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    /// Fraction of samples strictly greater than `threshold`.
    pub fn fraction_above(&self, threshold: u64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&s| s > threshold).count() as f64 / self.samples.len() as f64
    }
}

impl FromIterator<u64> for SampleSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        SampleSet { samples: iter.into_iter().collect(), sorted: false }
    }
}

impl Extend<u64> for SampleSet {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.samples.extend(iter);
        self.sorted = false;
    }
}

/// Fixed-bucket histogram over `u64` values.
#[derive(Debug, Clone)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` buckets of `bucket_width` each;
    /// values beyond the last bucket land in an overflow bin.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width == 0` or `buckets == 0`.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0 && buckets > 0, "histogram must have extent");
        Histogram { bucket_width, buckets: vec![0; buckets], overflow: 0, count: 0 }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        let idx = (v / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bucket `i` (`[i·w, (i+1)·w)`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Number of values past the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Iterates `(bucket_lower_bound, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().enumerate().map(move |(i, &c)| (i as u64 * self.bucket_width, c))
    }
}

/// Tracks the busy time of a resource from explicit busy intervals.
#[derive(Debug, Clone, Default)]
pub struct Utilization {
    busy: Cycle,
}

impl Utilization {
    /// A tracker with no recorded busy time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `cycles` of busy time.
    pub fn add_busy(&mut self, cycles: Cycle) {
        self.busy += cycles;
    }

    /// Total busy cycles.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy
    }

    /// Busy fraction of `[0, horizon]`; 0 for an empty horizon.
    pub fn fraction(&self, horizon: Cycle) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.busy as f64 / horizon as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2));
        assert_eq!(s.max(), Some(9));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let mut s: SampleSet = (1..=100u64).collect();
        assert_eq!(s.percentile(0.0), Some(1));
        assert_eq!(s.median(), Some(51)); // nearest-rank on 0..=99 indices
        assert_eq!(s.percentile(100.0), Some(100));
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(100));
    }

    #[test]
    fn fraction_above_counts_strictly() {
        let s: SampleSet = [1u64, 2, 3, 4].into_iter().collect();
        assert!((s.fraction_above(2) - 0.5).abs() < 1e-12);
        assert_eq!(s.fraction_above(4), 0.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 3);
        for v in [0, 5, 9, 10, 25, 29, 30, 1000] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 3);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 2);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 8);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(0, 3), (10, 1), (20, 2)]);
    }

    #[test]
    fn utilization_fraction() {
        let mut u = Utilization::new();
        u.add_busy(25);
        u.add_busy(25);
        assert!((u.fraction(100) - 0.5).abs() < 1e-12);
        assert_eq!(u.fraction(0), 0.0);
    }
}
