//! Deterministic pseudo-random number generation.
//!
//! Implemented in-crate (SplitMix64 seeding a xoshiro256** stream) so that
//! workload generation is bit-reproducible across platforms and toolchain
//! versions — the reproduction's tables and figures must not drift with a
//! dependency upgrade.

use crate::time::Cycle;

/// SplitMix64: a tiny, high-quality 64-bit mixer used to expand seeds.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the crate's general-purpose generator.
///
/// ```
/// use tss_sim::Rng;
/// let mut a = Rng::seeded(42);
/// let mut b = Rng::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // All-zero state is invalid for xoshiro; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style rejection-free-enough method via 128-bit multiply.
        let mut m = (self.next_u64() as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// Samples task runtimes matching a benchmark's Table-I statistics.
///
/// The distribution is a two-piece uniform mixture: with probability 1/2
/// a value in `[min, med]`, otherwise in `[med, hi]`, where `hi` is chosen
/// so the expectation equals `avg`:
/// `avg = (min + 2·med + hi) / 4  ⇒  hi = 4·avg − min − 2·med`.
/// This reproduces the min, the median, and the mean simultaneously —
/// which are exactly the three columns the paper reports.
///
/// ```
/// use tss_sim::{Rng, RuntimeDist, us_to_cycles};
/// // Cholesky: min 16 us, med 33 us, avg 31 us (Table I).
/// let d = RuntimeDist::from_us(16.0, 33.0, 31.0);
/// let mut rng = Rng::seeded(7);
/// let mut sum = 0u64;
/// let n = 20_000;
/// for _ in 0..n { sum += d.sample(&mut rng); }
/// let mean = sum as f64 / n as f64;
/// assert!((mean - us_to_cycles(31.0) as f64).abs() / mean < 0.02);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RuntimeDist {
    min: Cycle,
    med: Cycle,
    hi: Cycle,
}

impl RuntimeDist {
    /// Builds a distribution from min/median/average runtimes in cycles.
    ///
    /// # Panics
    ///
    /// Panics unless `min ≤ med` and `4·avg ≥ min + 3·med` (otherwise no
    /// two-piece distribution with these statistics exists; every Table-I
    /// benchmark satisfies the constraint).
    pub fn new(min: Cycle, med: Cycle, avg: Cycle) -> Self {
        assert!(min <= med, "min {min} must not exceed median {med}");
        let four_avg = 4 * avg;
        assert!(
            four_avg >= min + 3 * med,
            "no two-piece distribution: 4*avg ({four_avg}) < min + 3*med ({})",
            min + 3 * med
        );
        let hi = four_avg - min - 2 * med;
        RuntimeDist { min, med, hi }
    }

    /// Builds a distribution from min/median/average in microseconds.
    pub fn from_us(min_us: f64, med_us: f64, avg_us: f64) -> Self {
        Self::new(
            crate::time::us_to_cycles(min_us),
            crate::time::us_to_cycles(med_us),
            crate::time::us_to_cycles(avg_us),
        )
    }

    /// A distribution that always returns `c`.
    pub fn constant(c: Cycle) -> Self {
        RuntimeDist { min: c, med: c, hi: c }
    }

    /// Draws one runtime.
    pub fn sample(&self, rng: &mut Rng) -> Cycle {
        if self.min == self.hi {
            return self.min;
        }
        if rng.chance(0.5) {
            rng.range(self.min, self.med)
        } else {
            rng.range(self.med, self.hi)
        }
    }

    /// Smallest value the distribution can produce.
    pub fn min(&self) -> Cycle {
        self.min
    }

    /// Median of the distribution.
    pub fn median(&self) -> Cycle {
        self.med
    }

    /// Largest value the distribution can produce.
    pub fn max(&self) -> Cycle {
        self.hi.max(self.med)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference stream for seed 0 (cross-checked against the public
        // SplitMix64 reference implementation).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn rng_is_deterministic_and_seeds_differ() {
        let mut a = Rng::seeded(1);
        let mut b = Rng::seeded(1);
        let mut c = Rng::seeded(2);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::seeded(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut rng = Rng::seeded(4);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2000 {
            let v = rng.range(5, 9);
            assert!((5..=9).contains(&v));
            hit_lo |= v == 5;
            hit_hi |= v == 9;
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn unit_in_zero_one() {
        let mut rng = Rng::seeded(5);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seeded(6);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn runtime_dist_matches_min_median_mean() {
        // H264: min 2, med 115, avg 130 us.
        let d = RuntimeDist::from_us(2.0, 115.0, 130.0);
        let mut rng = Rng::seeded(9);
        let n = 40_000;
        let mut samples: Vec<Cycle> = (0..n).map(|_| d.sample(&mut rng)).collect();
        samples.sort_unstable();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let med = samples[n / 2] as f64;
        let target_mean = crate::time::us_to_cycles(130.0) as f64;
        let target_med = crate::time::us_to_cycles(115.0) as f64;
        assert!((mean - target_mean).abs() / target_mean < 0.02, "mean {mean} vs {target_mean}");
        assert!((med - target_med).abs() / target_med < 0.05, "median {med} vs {target_med}");
        assert!(*samples.first().unwrap() >= crate::time::us_to_cycles(2.0));
    }

    #[test]
    fn constant_dist_is_constant() {
        let d = RuntimeDist::constant(100);
        let mut rng = Rng::seeded(10);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 100);
        }
    }

    #[test]
    #[should_panic(expected = "no two-piece distribution")]
    fn infeasible_stats_panic() {
        // mean far below median with a high min: infeasible.
        let _ = RuntimeDist::new(100, 1000, 200);
    }
}
