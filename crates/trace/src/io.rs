//! Plain-text trace serialization.
//!
//! A `TaskTrace` round-trips through a simple line-oriented format so
//! traces can be archived, diffed, and exchanged (the paper's workflow —
//! trace-driven simulation — lives and dies by reproducible traces):
//!
//! ```text
//! # task-superscalar trace v1
//! trace Cholesky
//! kernel 0 sgemm
//! task 0 102400 in:1000:16384 in:5000:16384 inout:9000:16384
//! task 0 52800 scalar:8 out:a000:4096
//! ```
//!
//! Addresses and sizes are hexadecimal/decimal as shown; one `task` line
//! per task in program order.

use crate::task::{Direction, KernelId, OperandDesc, OperandKind, TaskDesc, TaskTrace};

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Serializes a trace to the text format.
pub fn to_text(trace: &TaskTrace) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("# task-superscalar trace v1\n");
    let _ = writeln!(out, "trace {}", trace.name());
    for k in 0..trace.kernel_count() {
        let _ = writeln!(out, "kernel {k} {}", trace.kernel_name(KernelId(k as u16)));
    }
    for t in trace.iter() {
        let _ = write!(out, "task {} {}", t.kernel.0, t.runtime);
        for o in &t.operands {
            match o.kind {
                OperandKind::Scalar => {
                    let _ = write!(out, " scalar:{}", o.size);
                }
                OperandKind::Memory => {
                    let _ = write!(out, " {}:{:x}:{}", o.dir, o.addr, o.size);
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Parses a trace from the text format.
///
/// # Errors
///
/// Returns a [`ParseTraceError`] naming the offending line for any
/// malformed input (unknown directive, bad kernel id, bad operand
/// syntax, too many operands, ...).
pub fn from_text(text: &str) -> Result<TaskTrace, ParseTraceError> {
    let err = |line: usize, message: String| ParseTraceError { line, message };
    let mut trace = TaskTrace::new("unnamed");
    let mut named = false;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        // Tolerant of hand-edited and foreign-platform files: leading /
        // trailing whitespace (including the `\r` of CRLF line endings,
        // which `lines()` leaves in place) never changes meaning.
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("trace") => {
                let name = parts.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return Err(err(lineno, "trace needs a name".into()));
                }
                if named {
                    return Err(err(
                        lineno,
                        format!(
                            "duplicate 'trace' directive: this trace is already named \
                             '{}' (a trace file declares exactly one header)",
                            trace.name()
                        ),
                    ));
                }
                if trace.kernel_count() > 0 || !trace.is_empty() {
                    return Err(err(lineno, "'trace' must be the first directive".into()));
                }
                let mut t = TaskTrace::new(name);
                std::mem::swap(&mut trace, &mut t);
                named = true;
            }
            Some("kernel") => {
                let idx: usize = parts
                    .next()
                    .ok_or_else(|| err(lineno, "kernel needs an index".into()))?
                    .parse()
                    .map_err(|e| err(lineno, format!("bad kernel index: {e}")))?;
                if idx != trace.kernel_count() {
                    return Err(err(lineno, format!("kernel {idx} out of order")));
                }
                let name = parts.collect::<Vec<_>>().join(" ");
                if name.is_empty() {
                    return Err(err(lineno, "kernel needs a name".into()));
                }
                trace.add_kernel(name);
            }
            Some("task") => {
                let kid: u16 = parts
                    .next()
                    .ok_or_else(|| err(lineno, "task needs a kernel id".into()))?
                    .parse()
                    .map_err(|e| err(lineno, format!("bad kernel id: {e}")))?;
                if (kid as usize) >= trace.kernel_count() {
                    return Err(err(lineno, format!("unknown kernel {kid}")));
                }
                let runtime: u64 = parts
                    .next()
                    .ok_or_else(|| err(lineno, "task needs a runtime".into()))?
                    .parse()
                    .map_err(|e| err(lineno, format!("bad runtime: {e}")))?;
                let mut operands = Vec::new();
                for op in parts {
                    let fields: Vec<&str> = op.split(':').collect();
                    let operand = match fields.as_slice() {
                        ["scalar", size] => OperandDesc::scalar(
                            size.parse()
                                .map_err(|e| err(lineno, format!("bad scalar size: {e}")))?,
                        ),
                        [dir, addr, size] => {
                            let dir = match *dir {
                                "in" => Direction::In,
                                "out" => Direction::Out,
                                "inout" => Direction::InOut,
                                other => {
                                    return Err(err(lineno, format!("bad direction '{other}'")))
                                }
                            };
                            let addr = u64::from_str_radix(addr, 16)
                                .map_err(|e| err(lineno, format!("bad address: {e}")))?;
                            let size =
                                size.parse().map_err(|e| err(lineno, format!("bad size: {e}")))?;
                            OperandDesc::memory(addr, size, dir)
                        }
                        _ => return Err(err(lineno, format!("bad operand '{op}'"))),
                    };
                    operands.push(operand);
                }
                if operands.len() > crate::task::MAX_OPERANDS {
                    return Err(err(lineno, format!("{} operands exceed 19", operands.len())));
                }
                trace.push(TaskDesc::new(KernelId(kid), runtime, operands));
            }
            Some(other) => return Err(err(lineno, format!("unknown directive '{other}'"))),
            None => unreachable!("empty lines are skipped"),
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TaskTrace {
        let mut tr = TaskTrace::new("sample trace");
        let a = tr.add_kernel("alpha");
        let b = tr.add_kernel("beta kernel");
        tr.push_task(a, 1000, vec![OperandDesc::output(0x1000, 512), OperandDesc::scalar(8)]);
        tr.push_task(
            b,
            2000,
            vec![OperandDesc::input(0x1000, 512), OperandDesc::inout(0x2000, 64)],
        );
        tr
    }

    #[test]
    fn round_trip_preserves_everything() {
        let tr = sample();
        let text = to_text(&tr);
        let back = from_text(&text).expect("parse");
        assert_eq!(back.name(), tr.name());
        assert_eq!(back.kernel_count(), 2);
        assert_eq!(back.kernel_name(KernelId(1)), "beta kernel");
        assert_eq!(back.tasks(), tr.tasks());
    }

    #[test]
    fn round_trip_a_generated_benchmark() {
        // Exercise every operand kind at scale.
        let mut tr = TaskTrace::new("gen");
        let k = tr.add_kernel("k");
        for i in 0..200u64 {
            tr.push_task(
                k,
                100 + i,
                vec![OperandDesc::input(0x1_0000 + i * 64, 64), OperandDesc::inout(0x9_0000, 128)],
            );
        }
        let back = from_text(&to_text(&tr)).expect("parse");
        assert_eq!(back.tasks(), tr.tasks());
        assert_eq!(back.total_runtime(), tr.total_runtime());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "# c\ntrace t\nkernel 0 k\ntask 0 nope in:10:64\n";
        let e = from_text(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("bad runtime"));
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn unknown_directive_rejected() {
        let e = from_text("bogus 1 2\n").unwrap_err();
        assert!(e.message.contains("unknown directive"));
    }

    #[test]
    fn unknown_kernel_rejected() {
        let e = from_text("trace t\ntask 3 100\n").unwrap_err();
        assert!(e.message.contains("unknown kernel"));
    }

    #[test]
    fn bad_direction_rejected() {
        let e = from_text("trace t\nkernel 0 k\ntask 0 5 sideways:10:64\n").unwrap_err();
        assert!(e.message.contains("bad direction"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# hello\ntrace t\n\nkernel 0 k\n# mid\ntask 0 7\n";
        let tr = from_text(text).expect("parse");
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.task(0).runtime, 7);
    }

    #[test]
    fn trailing_whitespace_and_crlf_tolerated() {
        let text = "trace t  \r\nkernel 0 k\t\r\n\r\n   \ntask 0 7 in:10:64   \r\n";
        let tr = from_text(text).expect("CRLF + trailing whitespace must parse");
        assert_eq!(tr.name(), "t");
        assert_eq!(tr.kernel_name(KernelId(0)), "k");
        assert_eq!(tr.len(), 1);
        assert_eq!(tr.task(0).operands[0], OperandDesc::input(0x10, 64));
    }

    #[test]
    fn duplicate_trace_header_rejected_with_a_clear_error() {
        let e = from_text("trace alpha\ntrace beta\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate 'trace'"), "{}", e.message);
        assert!(e.message.contains("alpha"), "names the existing trace: {}", e.message);
    }

    #[test]
    fn late_trace_header_still_rejected() {
        // A first-but-late header (after a kernel) is an ordering error,
        // not a duplicate.
        let e = from_text("kernel 0 k\ntrace t\n").unwrap_err();
        assert!(e.message.contains("first directive"), "{}", e.message);
    }
}
