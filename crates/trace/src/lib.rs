//! Task, operand, and trace model for the task-superscalar reproduction,
//! plus an exact dependency oracle.
//!
//! The paper (Section III.A) represents task operands as tuples of
//! *(type, base pointer, object size, directionality)*; dependencies are
//! detected by matching base addresses of memory objects. This crate
//! defines those types ([`OperandDesc`], [`TaskDesc`], [`TaskTrace`]) and
//! implements the *reference* dependency analysis ([`DepGraph`]) used:
//!
//! - by the software-runtime baseline (`tss-runtime`), which — like the
//!   StarSs decoder — computes exact dependencies, and
//! - as a correctness oracle: every simulated schedule is validated
//!   against it ([`schedule::validate_schedule`]).
//!
//! [`analytics`] provides graph analytics (critical path, parallelism
//! profile, the Section-II decode-rate rule `R = T/P`).

#![forbid(unsafe_code)]

pub mod analytics;
pub mod graph;
pub mod io;
pub mod schedule;
pub mod task;

pub use analytics::{dataflow_bound, parallelism_profile, ParallelismProfile};
pub use graph::{DepGraph, DepKind, OrderViolation};
pub use io::{from_text, to_text, ParseTraceError};
pub use schedule::{validate_schedule, ScheduleError, ScheduleRecord};
pub use task::{
    Direction, KernelId, OperandDesc, OperandKind, TaskDesc, TaskId, TaskTrace, MAX_OPERANDS,
};

/// A source of task traces (implemented by every benchmark generator in
/// `tss-workloads`).
pub trait TraceGenerator {
    /// Short benchmark name (as in Table I, e.g. `"Cholesky"`).
    fn name(&self) -> &str;

    /// Generates the task trace; `seed` makes runtime sampling
    /// deterministic and reproducible.
    fn generate(&self, seed: u64) -> TaskTrace;
}
