//! Graph analytics: critical path, parallelism profile, and dataflow
//! scheduling bounds.
//!
//! These quantify "how much parallelism is there to uncover" — the
//! question the task window size controls (Section VI.B) — independently
//! of any decode mechanism.

use crate::graph::DepGraph;
use crate::task::{TaskId, TaskTrace};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tss_sim::Cycle;

/// Parallelism statistics of a dependency graph under an idealized
/// (zero-overhead, infinite-processor) dataflow execution.
#[derive(Debug, Clone)]
pub struct ParallelismProfile {
    /// Sum of all task runtimes (sequential time).
    pub total_work: Cycle,
    /// Length of the critical path (infinite-processor makespan).
    pub critical_path: Cycle,
    /// `total_work / critical_path`: average available parallelism.
    pub avg_parallelism: f64,
    /// Maximum number of tasks simultaneously running under the ideal
    /// schedule.
    pub max_width: usize,
    /// A longest path through the graph (task ids in order).
    pub critical_tasks: Vec<TaskId>,
}

/// Computes the ideal dataflow execution profile of `trace`.
///
/// Every task starts the instant its last enforced predecessor finishes;
/// processors are unbounded. The resulting makespan is the critical-path
/// length, a hard lower bound on any real execution.
pub fn parallelism_profile(trace: &TaskTrace, graph: &DepGraph) -> ParallelismProfile {
    let n = trace.len();
    assert_eq!(graph.len(), n, "graph/trace mismatch");
    let mut finish: Vec<Cycle> = vec![0; n];
    let mut longest_pred: Vec<Option<TaskId>> = vec![None; n];
    let mut events: Vec<(Cycle, i64)> = Vec::with_capacity(2 * n);

    // Tasks are in program order, and every enforced edge points forward,
    // so a single left-to-right pass is a topological traversal.
    for t in 0..n {
        let mut start: Cycle = 0;
        for &p in graph.preds(t) {
            debug_assert!(p < t, "edges must point forward in program order");
            if finish[p] > start {
                start = finish[p];
                longest_pred[t] = Some(p);
            }
        }
        finish[t] = start + trace.task(t).runtime;
        events.push((start, 1));
        events.push((finish[t], -1));
    }

    let total_work = trace.total_runtime();
    let critical_path = finish.iter().copied().max().unwrap_or(0);

    // Reconstruct one critical path.
    let mut critical_tasks = Vec::new();
    if n > 0 {
        let mut cur = (0..n).max_by_key(|&t| finish[t]).expect("non-empty");
        critical_tasks.push(cur);
        while let Some(p) = longest_pred[cur] {
            critical_tasks.push(p);
            cur = p;
        }
        critical_tasks.reverse();
    }

    // Max width: sweep start/finish events (finishes before starts at the
    // same cycle, so back-to-back chained tasks don't double-count).
    events.sort_unstable();
    let mut width = 0i64;
    let mut max_width = 0i64;
    for (_, d) in events {
        width += d;
        max_width = max_width.max(width);
    }

    ParallelismProfile {
        total_work,
        critical_path,
        avg_parallelism: if critical_path == 0 {
            0.0
        } else {
            total_work as f64 / critical_path as f64
        },
        max_width: max_width.max(0) as usize,
        critical_tasks,
    }
}

/// Greedy list-scheduling makespan on `processors` processors with zero
/// decode/dispatch overhead: the best a *perfect* frontend could achieve.
/// Used as the reference ceiling for Figures 14–16.
///
/// # Panics
///
/// Panics if `processors == 0`.
pub fn dataflow_bound(trace: &TaskTrace, graph: &DepGraph, processors: usize) -> Cycle {
    assert!(processors > 0, "need at least one processor");
    let n = trace.len();
    let mut missing: Vec<usize> = (0..n).map(|t| graph.preds(t).len()).collect();
    // Ready tasks ordered by the time they became ready, then id (FIFO).
    let mut ready: BinaryHeap<Reverse<(Cycle, TaskId)>> = BinaryHeap::new();
    // Running tasks ordered by completion.
    let mut running: BinaryHeap<Reverse<(Cycle, TaskId)>> = BinaryHeap::new();
    for (t, &m) in missing.iter().enumerate() {
        if m == 0 {
            ready.push(Reverse((0, t)));
        }
    }
    let mut free = processors;
    let mut now: Cycle = 0;
    let mut makespan: Cycle = 0;
    let mut done = 0usize;

    while done < n {
        // Dispatch as many ready tasks as fit, but not before they became
        // ready.
        while free > 0 {
            match ready.peek() {
                Some(&Reverse((at, _))) if at <= now => {
                    let Reverse((_, t)) = ready.pop().expect("peeked");
                    let fin = now + trace.task(t).runtime;
                    running.push(Reverse((fin, t)));
                    free -= 1;
                }
                _ => break,
            }
        }
        // Advance time to the next interesting instant.
        let next_ready = ready.peek().map(|&Reverse((at, _))| at);
        let next_done = running.peek().map(|&Reverse((at, _))| at);
        now = match (next_done, next_ready) {
            (Some(d), _) if free == 0 => d,
            (Some(d), Some(r)) => d.min(r.max(now)),
            (Some(d), None) => d,
            (None, Some(r)) => r.max(now),
            (None, None) => break,
        };
        // Retire everything finished by `now`.
        while let Some(&Reverse((fin, _))) = running.peek() {
            if fin > now {
                break;
            }
            let Reverse((fin, t)) = running.pop().expect("peeked");
            makespan = makespan.max(fin);
            free += 1;
            done += 1;
            for &s in graph.succs(t) {
                missing[s] -= 1;
                if missing[s] == 0 {
                    ready.push(Reverse((fin, s)));
                }
            }
        }
    }
    makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{OperandDesc, TaskDesc, TaskTrace};

    fn chain_trace(n: usize, rt: Cycle) -> TaskTrace {
        let mut tr = TaskTrace::new("chain");
        let k = tr.add_kernel("k");
        for _ in 0..n {
            tr.push(TaskDesc::new(k, rt, vec![OperandDesc::inout(0x100, 64)]));
        }
        tr
    }

    fn independent_trace(n: usize, rt: Cycle) -> TaskTrace {
        let mut tr = TaskTrace::new("indep");
        let k = tr.add_kernel("k");
        for i in 0..n {
            tr.push(TaskDesc::new(k, rt, vec![OperandDesc::output(0x1000 + i as u64 * 64, 64)]));
        }
        tr
    }

    #[test]
    fn chain_has_no_parallelism() {
        let tr = chain_trace(10, 100);
        let g = DepGraph::from_trace(&tr);
        let p = parallelism_profile(&tr, &g);
        assert_eq!(p.total_work, 1000);
        assert_eq!(p.critical_path, 1000);
        assert!((p.avg_parallelism - 1.0).abs() < 1e-12);
        assert_eq!(p.max_width, 1);
        assert_eq!(p.critical_tasks, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn independent_tasks_fully_parallel() {
        let tr = independent_trace(8, 100);
        let g = DepGraph::from_trace(&tr);
        let p = parallelism_profile(&tr, &g);
        assert_eq!(p.critical_path, 100);
        assert_eq!(p.max_width, 8);
        assert!((p.avg_parallelism - 8.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_profile() {
        // t0 -> t1, t2 -> t3
        let mut tr = TaskTrace::new("diamond");
        let k = tr.add_kernel("k");
        tr.push(TaskDesc::new(k, 10, vec![OperandDesc::output(0xA, 64)]));
        tr.push(TaskDesc::new(
            k,
            20,
            vec![OperandDesc::input(0xA, 64), OperandDesc::output(0xB, 64)],
        ));
        tr.push(TaskDesc::new(
            k,
            30,
            vec![OperandDesc::input(0xA, 64), OperandDesc::output(0xC, 64)],
        ));
        tr.push(TaskDesc::new(
            k,
            10,
            vec![OperandDesc::input(0xB, 64), OperandDesc::input(0xC, 64)],
        ));
        let g = DepGraph::from_trace(&tr);
        let p = parallelism_profile(&tr, &g);
        assert_eq!(p.critical_path, 10 + 30 + 10);
        assert_eq!(p.max_width, 2);
        assert_eq!(p.critical_tasks, vec![0, 2, 3]);
    }

    #[test]
    fn dataflow_bound_chain_equals_work() {
        let tr = chain_trace(5, 100);
        let g = DepGraph::from_trace(&tr);
        assert_eq!(dataflow_bound(&tr, &g, 4), 500);
    }

    #[test]
    fn dataflow_bound_independent_divides_by_p() {
        let tr = independent_trace(8, 100);
        let g = DepGraph::from_trace(&tr);
        assert_eq!(dataflow_bound(&tr, &g, 1), 800);
        assert_eq!(dataflow_bound(&tr, &g, 2), 400);
        assert_eq!(dataflow_bound(&tr, &g, 8), 100);
        assert_eq!(dataflow_bound(&tr, &g, 100), 100);
    }

    #[test]
    fn dataflow_bound_never_beats_critical_path() {
        let tr = chain_trace(3, 50);
        let g = DepGraph::from_trace(&tr);
        let p = parallelism_profile(&tr, &g);
        assert!(dataflow_bound(&tr, &g, 64) >= p.critical_path);
    }

    #[test]
    fn empty_trace_is_fine() {
        let tr = TaskTrace::new("e");
        let g = DepGraph::from_trace(&tr);
        let p = parallelism_profile(&tr, &g);
        assert_eq!(p.total_work, 0);
        assert_eq!(p.critical_path, 0);
        assert_eq!(dataflow_bound(&tr, &g, 4), 0);
    }
}
