//! Schedule records and the correctness validator.
//!
//! Every simulator in this workspace (hardware pipeline, software
//! runtime) emits one [`ScheduleRecord`] per executed task. The validator
//! checks the schedule against the [`DepGraph`] oracle:
//!
//! 1. every task executed exactly once, with `start ≤ end`;
//! 2. every *enforced* dependency respected (`pred.end ≤ succ.start`);
//! 3. no core runs two tasks at once.
//!
//! A parallel execution passing these checks is equivalent to the
//! sequential program per the dataflow-execution argument of Section III
//! (renamed WaR/WaW orderings are intentionally *not* required).

use crate::graph::DepGraph;
use crate::task::TaskId;
use std::collections::HashMap;
use tss_sim::Cycle;

/// When and where one task executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleRecord {
    /// The task (index in the trace).
    pub task: TaskId,
    /// Cycle execution began on the core.
    pub start: Cycle,
    /// Cycle execution finished.
    pub end: Cycle,
    /// Which worker core ran it.
    pub core: usize,
}

/// Why a schedule is invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A task appears more than once.
    DuplicateTask(TaskId),
    /// A task never executed.
    MissingTask(TaskId),
    /// `end < start`.
    NegativeDuration(TaskId),
    /// An enforced dependency was violated.
    DependencyViolated {
        /// Producer task.
        from: TaskId,
        /// Consumer task that started too early.
        to: TaskId,
        /// Producer completion cycle.
        from_end: Cycle,
        /// Consumer start cycle.
        to_start: Cycle,
    },
    /// Two tasks overlapped on one core.
    CoreOverlap {
        /// The core in question.
        core: usize,
        /// First task.
        a: TaskId,
        /// Second (overlapping) task.
        b: TaskId,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::DuplicateTask(t) => write!(f, "task {t} executed more than once"),
            ScheduleError::MissingTask(t) => write!(f, "task {t} never executed"),
            ScheduleError::NegativeDuration(t) => write!(f, "task {t} ends before it starts"),
            ScheduleError::DependencyViolated { from, to, from_end, to_start } => write!(
                f,
                "dependency {from} -> {to} violated: producer ends at {from_end}, \
                 consumer starts at {to_start}"
            ),
            ScheduleError::CoreOverlap { core, a, b } => {
                write!(f, "tasks {a} and {b} overlap on core {core}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Validates `schedule` against the oracle `graph`.
///
/// # Errors
///
/// Returns the first [`ScheduleError`] found (checks run in the order
/// documented on the module).
pub fn validate_schedule(
    graph: &DepGraph,
    schedule: &[ScheduleRecord],
) -> Result<(), ScheduleError> {
    let n = graph.len();
    let mut by_task: Vec<Option<&ScheduleRecord>> = vec![None; n];
    for rec in schedule {
        if rec.task >= n {
            return Err(ScheduleError::MissingTask(rec.task)); // unknown id
        }
        if by_task[rec.task].is_some() {
            return Err(ScheduleError::DuplicateTask(rec.task));
        }
        if rec.end < rec.start {
            return Err(ScheduleError::NegativeDuration(rec.task));
        }
        by_task[rec.task] = Some(rec);
    }
    if let Some(t) = (0..n).find(|&t| by_task[t].is_none()) {
        return Err(ScheduleError::MissingTask(t));
    }

    for t in 0..n {
        let rec = by_task[t].expect("checked above");
        for &p in graph.preds(t) {
            let pr = by_task[p].expect("checked above");
            if pr.end > rec.start {
                return Err(ScheduleError::DependencyViolated {
                    from: p,
                    to: t,
                    from_end: pr.end,
                    to_start: rec.start,
                });
            }
        }
    }

    let mut per_core: HashMap<usize, Vec<&ScheduleRecord>> = HashMap::new();
    for rec in schedule {
        per_core.entry(rec.core).or_default().push(rec);
    }
    for (&core, recs) in per_core.iter_mut() {
        recs.sort_by_key(|r| (r.start, r.end));
        for w in recs.windows(2) {
            // Zero-length tasks may abut; strict overlap means the next
            // starts before the previous ends.
            if w[1].start < w[0].end {
                return Err(ScheduleError::CoreOverlap { core, a: w[0].task, b: w[1].task });
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepGraph;
    use crate::task::{OperandDesc, TaskDesc, TaskTrace};

    fn producer_consumer() -> DepGraph {
        let mut tr = TaskTrace::new("pc");
        let k = tr.add_kernel("k");
        tr.push(TaskDesc::new(k, 10, vec![OperandDesc::output(0xA, 64)]));
        tr.push(TaskDesc::new(k, 10, vec![OperandDesc::input(0xA, 64)]));
        DepGraph::from_trace(&tr)
    }

    #[test]
    fn valid_schedule_passes() {
        let g = producer_consumer();
        let s = vec![
            ScheduleRecord { task: 0, start: 0, end: 10, core: 0 },
            ScheduleRecord { task: 1, start: 10, end: 20, core: 0 },
        ];
        assert_eq!(validate_schedule(&g, &s), Ok(()));
    }

    #[test]
    fn dependency_violation_detected() {
        let g = producer_consumer();
        let s = vec![
            ScheduleRecord { task: 0, start: 0, end: 10, core: 0 },
            ScheduleRecord { task: 1, start: 5, end: 15, core: 1 },
        ];
        assert!(matches!(
            validate_schedule(&g, &s),
            Err(ScheduleError::DependencyViolated { from: 0, to: 1, .. })
        ));
    }

    #[test]
    fn missing_and_duplicate_tasks_detected() {
        let g = producer_consumer();
        let missing = vec![ScheduleRecord { task: 0, start: 0, end: 10, core: 0 }];
        assert_eq!(validate_schedule(&g, &missing), Err(ScheduleError::MissingTask(1)));

        let dup = vec![
            ScheduleRecord { task: 0, start: 0, end: 10, core: 0 },
            ScheduleRecord { task: 0, start: 20, end: 30, core: 0 },
            ScheduleRecord { task: 1, start: 10, end: 20, core: 1 },
        ];
        assert_eq!(validate_schedule(&g, &dup), Err(ScheduleError::DuplicateTask(0)));
    }

    fn independent_pair() -> DepGraph {
        let mut tr = TaskTrace::new("ii");
        let k = tr.add_kernel("k");
        tr.push(TaskDesc::new(k, 10, vec![OperandDesc::output(0xA, 64)]));
        tr.push(TaskDesc::new(k, 10, vec![OperandDesc::output(0xB, 64)]));
        DepGraph::from_trace(&tr)
    }

    #[test]
    fn core_overlap_detected() {
        let g = independent_pair();
        let s = vec![
            ScheduleRecord { task: 0, start: 0, end: 10, core: 3 },
            ScheduleRecord { task: 1, start: 9, end: 19, core: 3 },
        ];
        assert!(matches!(
            validate_schedule(&g, &s),
            Err(ScheduleError::CoreOverlap { core: 3, .. })
        ));
    }

    #[test]
    fn abutting_tasks_on_one_core_are_fine() {
        let g = producer_consumer();
        let s = vec![
            ScheduleRecord { task: 0, start: 0, end: 10, core: 0 },
            ScheduleRecord { task: 1, start: 10, end: 20, core: 0 },
        ];
        assert!(validate_schedule(&g, &s).is_ok());
    }

    #[test]
    fn negative_duration_detected() {
        let g = producer_consumer();
        let s = vec![
            ScheduleRecord { task: 0, start: 10, end: 5, core: 0 },
            ScheduleRecord { task: 1, start: 10, end: 20, core: 0 },
        ];
        assert_eq!(validate_schedule(&g, &s), Err(ScheduleError::NegativeDuration(0)));
    }

    #[test]
    fn renamed_waw_not_required() {
        // Two writers to the same object: renaming lets them run in any
        // order / in parallel.
        let mut tr = TaskTrace::new("ww");
        let k = tr.add_kernel("k");
        tr.push(TaskDesc::new(k, 10, vec![OperandDesc::output(0xA, 64)]));
        tr.push(TaskDesc::new(k, 10, vec![OperandDesc::output(0xA, 64)]));
        let g = DepGraph::from_trace(&tr);
        let s = vec![
            ScheduleRecord { task: 1, start: 0, end: 10, core: 0 },
            ScheduleRecord { task: 0, start: 0, end: 10, core: 1 },
        ];
        assert!(validate_schedule(&g, &s).is_ok());
    }

    #[test]
    fn error_display_is_informative() {
        let e = ScheduleError::DependencyViolated { from: 1, to: 2, from_end: 30, to_start: 20 };
        let s = e.to_string();
        assert!(s.contains("1 -> 2"));
        assert!(s.contains("30"));
    }
}
