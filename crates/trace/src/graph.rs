//! The reference dependency analysis (oracle).
//!
//! Replays a [`TaskTrace`] in program order, tracking for every memory
//! object (identified by base address, exactly as the ORTs do) its last
//! writer and the readers of the current version. Edges are classified:
//!
//! - **RaW** — true data dependency: always enforced.
//! - **InoutAnti** — a reader of the current version precedes an `inout`
//!   writer. The pipeline does *not* rename inout operands (Figure 9), so
//!   these are enforced: the inout task receives its "output buffer free"
//!   data-ready only when the previous version drains.
//! - **WaR** / **WaW** against a pure `out` operand — *removed by
//!   renaming* (the OVT allocates a fresh buffer, Figure 7). Recorded for
//!   statistics and for no-renaming ablations, but not enforced.
//!
//! The enforced edge set is what any correct out-of-order execution must
//! respect; `tss-runtime` executes directly from it, and the hardware
//! pipeline's schedules are validated against it.

use crate::task::{TaskId, TaskTrace};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Deterministic multiply-xor hasher for object base addresses.
///
/// `from_trace` hashes one `u64` per tracked operand of every task; the
/// default SipHash shows up in simulator-throughput profiles, and its
/// DoS resistance buys nothing against synthetic traces. The constant is
/// the 64-bit golden ratio (same mixer as `SplitMix64`).
#[derive(Default)]
pub struct AddrHasher(u64);

impl Hasher for AddrHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        // Finish with an xor-shift so low output bits depend on high
        // input bits (table indices use the low bits).
        self.0 ^ (self.0 >> 32)
    }
}

/// `HashMap` keyed by object address with the fast deterministic hasher.
pub type AddrMap<V> = HashMap<u64, V, BuildHasherDefault<AddrHasher>>;

/// Dependency edge classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write: true dependency (enforced).
    RaW,
    /// Readers of a version ordered before an inout writer (enforced,
    /// because inout operands are not renamed).
    InoutAnti,
    /// Write-after-read against a renamed `out` operand (not enforced).
    WaR,
    /// Write-after-write against a renamed `out` operand (not enforced).
    WaW,
}

impl DepKind {
    /// Whether the pipeline must order the two tasks.
    pub fn enforced(self) -> bool {
        matches!(self, DepKind::RaW | DepKind::InoutAnti)
    }
}

/// Why a completion order is not a valid topological order of the
/// enforced dependency graph (see [`DepGraph::validate_order`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderViolation {
    /// The order names a task id outside the graph.
    UnknownTask(TaskId),
    /// A task appears more than once.
    DuplicateTask(TaskId),
    /// A task never appears (reported when the order is too short).
    MissingTask(TaskId),
    /// A task completed before one of its enforced producers.
    ProducerAfterConsumer {
        /// The producer that finished too late.
        producer: TaskId,
        /// The consumer that finished too early.
        consumer: TaskId,
    },
}

impl std::fmt::Display for OrderViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderViolation::UnknownTask(t) => write!(f, "order names unknown task {t}"),
            OrderViolation::DuplicateTask(t) => write!(f, "task {t} completed more than once"),
            OrderViolation::MissingTask(t) => write!(f, "task {t} never completed"),
            OrderViolation::ProducerAfterConsumer { producer, consumer } => write!(
                f,
                "dependency {producer} -> {consumer} inverted: the consumer \
                 completed before its producer"
            ),
        }
    }
}

impl std::error::Error for OrderViolation {}

/// One dependency edge `from → to` (with `from` earlier in program order).
///
/// Endpoints are `u32` (not `TaskId = usize`): the edge list of a paper-
/// scale trace runs to hundreds of thousands of entries and is scanned
/// several times during CSR construction, so halving the record from 24
/// to 12 bytes measurably shortens the graph build (ISSUE 5). Use
/// [`DepEdge::from_id`]/[`DepEdge::to_id`] for `TaskId`-typed endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Producer / predecessor task.
    pub from: u32,
    /// Consumer / successor task.
    pub to: u32,
    /// Classification.
    pub kind: DepKind,
}

impl DepEdge {
    /// Producer endpoint as a [`TaskId`].
    pub fn from_id(&self) -> TaskId {
        self.from as TaskId
    }

    /// Consumer endpoint as a [`TaskId`].
    pub fn to_id(&self) -> TaskId {
        self.to as TaskId
    }
}

#[derive(Debug, Default, Clone)]
struct ObjectState {
    /// Task holding the latest version (last writer), if in flight.
    last_writer: Option<TaskId>,
    /// Readers of the latest version since the last write. Table-I
    /// traces rarely exceed a handful of readers per version (Figure
    /// 10), so the first 8 live inline and the replay loop allocates
    /// only for outliers.
    readers_len: usize,
    readers: [TaskId; 8],
    readers_overflow: Vec<TaskId>,
}

impl ObjectState {
    fn push_reader(&mut self, t: TaskId) {
        if self.readers_len < self.readers.len() {
            self.readers[self.readers_len] = t;
        } else {
            self.readers_overflow.push(t);
        }
        self.readers_len += 1;
    }

    fn readers(&self) -> impl Iterator<Item = TaskId> + '_ {
        let inline = self.readers_len.min(self.readers.len());
        self.readers[..inline].iter().copied().chain(self.readers_overflow.iter().copied())
    }

    fn clear_readers(&mut self) {
        self.readers_len = 0;
        self.readers_overflow.clear();
    }
}

/// The dependency graph of a trace: full classified edge list plus
/// enforced predecessor/successor adjacency.
///
/// Adjacency is stored flat (CSR: one offsets array, one data array per
/// direction) instead of `Vec<Vec<_>>`: graph construction runs once per
/// software-runtime simulation, and 2·n little vectors dominated its
/// allocator traffic.
#[derive(Debug, Clone)]
pub struct DepGraph {
    n: usize,
    edges: Vec<DepEdge>,
    pred_off: Vec<u32>,
    pred_dat: Vec<TaskId>,
    succ_off: Vec<u32>,
    succ_dat: Vec<TaskId>,
    removed_by_renaming: usize,
}

/// Builds one CSR direction from `(node, neighbor)` pairs; neighbors of
/// each node end up sorted and deduplicated.
fn build_csr(n: usize, pairs: impl Iterator<Item = (u32, u32)> + Clone) -> (Vec<u32>, Vec<TaskId>) {
    let mut counts = vec![0u32; n + 1];
    for (node, _) in pairs.clone() {
        counts[node as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let mut dat = vec![0 as TaskId; *counts.last().unwrap() as usize];
    let mut cursor = counts.clone();
    for (node, nb) in pairs {
        dat[cursor[node as usize] as usize] = nb as TaskId;
        cursor[node as usize] += 1;
    }
    // Sort + dedup each node's range in place, compacting as we go.
    let mut write = 0usize;
    let mut off = vec![0u32; n + 1];
    for i in 0..n {
        let (lo, hi) = (counts[i] as usize, counts[i + 1] as usize);
        dat[lo..hi].sort_unstable();
        let start = write;
        let mut last: Option<TaskId> = None;
        for k in lo..hi {
            if last != Some(dat[k]) {
                last = Some(dat[k]);
                dat[write] = dat[k];
                write += 1;
            }
        }
        off[i] = start as u32;
        off[i + 1] = write as u32;
    }
    dat.truncate(write);
    (off, dat)
}

impl DepGraph {
    /// Builds the graph by exact replay of `trace` in program order.
    ///
    /// Prefer [`TaskTrace::dep_graph`] when the trace is shared (sweeps,
    /// repeated validation): it memoizes one `Arc<DepGraph>` per trace.
    pub fn from_trace(trace: &TaskTrace) -> Self {
        let n = trace.len();
        // Rough upper-bound reservation: one RaW per read plus ordering
        // edges against prior readers — about 2 edges per operand in the
        // Table-I traces. Growing a multi-megabyte edge list by doubling
        // was measurable in the software-runtime build.
        let total_ops: usize = trace.iter().map(|t| t.operands.len()).sum();
        let mut edges = Vec::with_capacity(2 * total_ops);
        // Object states live in a dense vector; the hash map only
        // interns addresses to indices. Keeping the map entries at 12
        // bytes (vs. a ~100-byte inline state) keeps the whole probe
        // table cache-resident for big traces. Sized for the common
        // case of roughly one distinct object per task (Table-I traces
        // all fit); a wider-fan-in trace may still rehash once or twice.
        let mut object_index: AddrMap<u32> =
            AddrMap::with_capacity_and_hasher(n.max(16), BuildHasherDefault::default());
        let mut states: Vec<ObjectState> = Vec::with_capacity(n.max(16));

        for (tid, task) in trace.iter().enumerate() {
            for op in task.operands.iter().filter(|o| o.is_tracked()) {
                let id = *object_index.entry(op.addr).or_insert_with(|| {
                    states.push(ObjectState::default());
                    (states.len() - 1) as u32
                });
                let st = &mut states[id as usize];
                if op.dir.reads() {
                    // RaW from the in-flight producer, if any.
                    if let Some(w) = st.last_writer {
                        if w != tid {
                            edges.push(DepEdge {
                                from: w as u32,
                                to: tid as u32,
                                kind: DepKind::RaW,
                            });
                        }
                    }
                }
                if op.dir.writes() {
                    let inout = op.dir.reads();
                    // Ordering against the previous version's readers.
                    for r in st.readers() {
                        if r != tid {
                            let kind = if inout { DepKind::InoutAnti } else { DepKind::WaR };
                            edges.push(DepEdge { from: r as u32, to: tid as u32, kind });
                        }
                    }
                    // Ordering against the previous writer.
                    if let Some(w) = st.last_writer {
                        if w != tid && !inout {
                            // (for inout the RaW edge above already covers it)
                            edges.push(DepEdge {
                                from: w as u32,
                                to: tid as u32,
                                kind: DepKind::WaW,
                            });
                        }
                    }
                    st.last_writer = Some(tid);
                    st.clear_readers();
                }
                if op.dir.reads() {
                    st.push_reader(tid);
                }
            }
        }

        let removed = edges.iter().filter(|e| !e.kind.enforced()).count();
        let enforced: Vec<(u32, u32)> =
            edges.iter().filter(|e| e.kind.enforced()).map(|e| (e.from, e.to)).collect();
        let (pred_off, pred_dat) = build_csr(n, enforced.iter().map(|&(f, t)| (t, f)));
        let (succ_off, succ_dat) = build_csr(n, enforced.iter().copied());

        DepGraph { n, edges, pred_off, pred_dat, succ_off, succ_dat, removed_by_renaming: removed }
    }

    /// Number of tasks (graph nodes).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All classified edges, including the non-enforced WaR/WaW ones.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Enforced (deduplicated) predecessors of `t`.
    pub fn preds(&self, t: TaskId) -> &[TaskId] {
        &self.pred_dat[self.pred_off[t] as usize..self.pred_off[t + 1] as usize]
    }

    /// Enforced (deduplicated) successors of `t`.
    pub fn succs(&self, t: TaskId) -> &[TaskId] {
        &self.succ_dat[self.succ_off[t] as usize..self.succ_off[t + 1] as usize]
    }

    /// Number of WaR/WaW edges that operand renaming eliminates.
    pub fn edges_removed_by_renaming(&self) -> usize {
        self.removed_by_renaming
    }

    /// Number of enforced edges (after dedup).
    pub fn enforced_edge_count(&self) -> usize {
        self.succ_dat.len()
    }

    /// Tasks with no enforced predecessors (immediately runnable).
    pub fn roots(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.n).filter(|&t| self.preds(t).is_empty())
    }

    /// Validates a *completion order* — task ids in the sequence they
    /// finished — against the enforced dependency graph: every task
    /// exactly once, every enforced producer before its consumer.
    ///
    /// This is the oracle check shared by the native executor
    /// (`tss-exec`, whose completion log is a linearization of real
    /// threaded execution) and the simulator (whose schedule, sorted by
    /// completion cycle, must linearize the same way). It is weaker
    /// than [`validate_schedule`](crate::validate_schedule) — no
    /// timestamps, no core-occupancy check — and is exactly what an
    /// execution without a global clock can be held to.
    ///
    /// # Errors
    ///
    /// Returns the first [`OrderViolation`] found.
    pub fn validate_order(&self, order: &[TaskId]) -> Result<(), OrderViolation> {
        // position[t] = index of t in `order`.
        const UNSEEN: u32 = u32::MAX;
        let mut position = vec![UNSEEN; self.n];
        for (i, &t) in order.iter().enumerate() {
            if t >= self.n {
                return Err(OrderViolation::UnknownTask(t));
            }
            if position[t] != UNSEEN {
                return Err(OrderViolation::DuplicateTask(t));
            }
            position[t] = i as u32;
        }
        if let Some(t) = (0..self.n).find(|&t| position[t] == UNSEEN) {
            return Err(OrderViolation::MissingTask(t));
        }
        for (i, &t) in order.iter().enumerate() {
            for &p in self.preds(t) {
                if position[p] > i as u32 {
                    return Err(OrderViolation::ProducerAfterConsumer { producer: p, consumer: t });
                }
            }
        }
        Ok(())
    }

    /// Whether `to` is reachable from `from` over enforced edges.
    /// (Figure 1's observation: tasks 6 and 23 are *not* ordered.)
    pub fn reachable(&self, from: TaskId, to: TaskId) -> bool {
        if from == to {
            return true;
        }
        let mut visited = vec![false; self.n];
        let mut stack = vec![from];
        visited[from] = true;
        while let Some(t) = stack.pop() {
            for &s in self.succs(t) {
                if s == to {
                    return true;
                }
                if !visited[s] {
                    visited[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Renders the enforced graph in Graphviz DOT (labels are `creation
    /// order + 1`, matching Figure 1's numbering).
    pub fn to_dot(&self, trace: &TaskTrace) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph tasks {\n  rankdir=TB;\n");
        for t in 0..self.n {
            let kernel = trace.kernel_name(trace.task(t).kernel);
            let _ = writeln!(out, "  t{t} [label=\"{} ({kernel})\"];", t + 1);
        }
        for t in 0..self.n {
            for &s in self.succs(t) {
                let _ = writeln!(out, "  t{t} -> t{s};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{OperandDesc, TaskDesc, TaskTrace};

    fn trace_of(ops_per_task: Vec<Vec<OperandDesc>>) -> TaskTrace {
        let mut tr = TaskTrace::new("t");
        let k = tr.add_kernel("k");
        for ops in ops_per_task {
            tr.push(TaskDesc::new(k, 10, ops));
        }
        tr
    }

    #[test]
    fn raw_edge_detected() {
        let tr = trace_of(vec![
            vec![OperandDesc::output(0x100, 64)],
            vec![OperandDesc::input(0x100, 64)],
        ]);
        let g = DepGraph::from_trace(&tr);
        assert_eq!(g.preds(1), &[0]);
        assert_eq!(g.succs(0), &[1]);
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.edges()[0].kind, DepKind::RaW);
    }

    #[test]
    fn waw_and_war_removed_by_renaming() {
        let tr = trace_of(vec![
            vec![OperandDesc::output(0x100, 64)], // writer v0
            vec![OperandDesc::input(0x100, 64)],  // reader of v0
            vec![OperandDesc::output(0x100, 64)], // writer v1: WaW + WaR, renamed
        ]);
        let g = DepGraph::from_trace(&tr);
        assert!(g.preds(2).is_empty(), "renamed writer must not wait");
        assert_eq!(g.edges_removed_by_renaming(), 2);
        // Reader still depends on the first writer.
        assert_eq!(g.preds(1), &[0]);
    }

    #[test]
    fn inout_enforces_anti_dependencies() {
        let tr = trace_of(vec![
            vec![OperandDesc::output(0x100, 64)], // producer
            vec![OperandDesc::input(0x100, 64)],  // reader
            vec![OperandDesc::inout(0x100, 64)],  // inout: waits for both
        ]);
        let g = DepGraph::from_trace(&tr);
        assert_eq!(g.preds(2), &[0, 1]);
        let kinds: Vec<DepKind> = g.edges().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&DepKind::InoutAnti));
        assert_eq!(g.edges_removed_by_renaming(), 0);
    }

    #[test]
    fn inout_chains_are_serialized() {
        let tr = trace_of(vec![
            vec![OperandDesc::inout(0x100, 64)],
            vec![OperandDesc::inout(0x100, 64)],
            vec![OperandDesc::inout(0x100, 64)],
        ]);
        let g = DepGraph::from_trace(&tr);
        assert_eq!(g.preds(1), &[0]);
        assert_eq!(g.preds(2), &[1]);
        assert!(g.reachable(0, 2));
    }

    #[test]
    fn readers_do_not_depend_on_each_other() {
        let tr = trace_of(vec![
            vec![OperandDesc::output(0x100, 64)],
            vec![OperandDesc::input(0x100, 64)],
            vec![OperandDesc::input(0x100, 64)],
        ]);
        let g = DepGraph::from_trace(&tr);
        assert!(!g.reachable(1, 2));
        assert!(!g.reachable(2, 1));
        assert_eq!(g.preds(2), &[0]);
    }

    #[test]
    fn new_version_hides_old_producer() {
        let tr = trace_of(vec![
            vec![OperandDesc::output(0x100, 64)], // v0
            vec![OperandDesc::output(0x100, 64)], // v1 (renamed)
            vec![OperandDesc::input(0x100, 64)],  // reads v1, not v0
        ]);
        let g = DepGraph::from_trace(&tr);
        assert_eq!(g.preds(2), &[1]);
    }

    #[test]
    fn untracked_scalars_create_no_edges() {
        let tr = trace_of(vec![vec![OperandDesc::scalar(8)], vec![OperandDesc::scalar(8)]]);
        let g = DepGraph::from_trace(&tr);
        assert_eq!(g.edges().len(), 0);
        assert_eq!(g.roots().count(), 2);
    }

    #[test]
    fn self_dependency_is_ignored() {
        // A task reading and writing the same object through two operands
        // must not depend on itself.
        let tr =
            trace_of(vec![vec![OperandDesc::output(0x100, 64), OperandDesc::input(0x100, 64)]]);
        let g = DepGraph::from_trace(&tr);
        assert!(g.preds(0).is_empty());
    }

    #[test]
    fn different_objects_are_independent() {
        let tr = trace_of(vec![
            vec![OperandDesc::output(0x100, 64)],
            vec![OperandDesc::input(0x200, 64)],
        ]);
        let g = DepGraph::from_trace(&tr);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn validate_order_accepts_any_linearization() {
        let tr = trace_of(vec![
            vec![OperandDesc::output(0x100, 64)],
            vec![OperandDesc::input(0x100, 64), OperandDesc::output(0x200, 64)],
            vec![OperandDesc::input(0x100, 64)],
            vec![OperandDesc::input(0x200, 64)],
        ]);
        let g = DepGraph::from_trace(&tr);
        assert_eq!(g.validate_order(&[0, 1, 2, 3]), Ok(()));
        assert_eq!(g.validate_order(&[0, 2, 1, 3]), Ok(()), "siblings reorder freely");
    }

    #[test]
    fn validate_order_reports_each_violation_kind() {
        let tr = trace_of(vec![
            vec![OperandDesc::output(0x100, 64)],
            vec![OperandDesc::input(0x100, 64)],
        ]);
        let g = DepGraph::from_trace(&tr);
        assert_eq!(
            g.validate_order(&[1, 0]),
            Err(OrderViolation::ProducerAfterConsumer { producer: 0, consumer: 1 })
        );
        assert_eq!(g.validate_order(&[0, 0]), Err(OrderViolation::DuplicateTask(0)));
        assert_eq!(g.validate_order(&[0]), Err(OrderViolation::MissingTask(1)));
        assert_eq!(g.validate_order(&[0, 7]), Err(OrderViolation::UnknownTask(7)));
        let msg = OrderViolation::ProducerAfterConsumer { producer: 3, consumer: 9 }.to_string();
        assert!(msg.contains("3 -> 9"));
    }

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let tr = trace_of(vec![
            vec![OperandDesc::output(0x100, 64)],
            vec![OperandDesc::input(0x100, 64)],
        ]);
        let g = DepGraph::from_trace(&tr);
        let dot = g.to_dot(&tr);
        assert!(dot.contains("t0 -> t1"));
        assert!(dot.contains("label=\"1 (k)\""));
    }
}
