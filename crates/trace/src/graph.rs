//! The reference dependency analysis (oracle).
//!
//! Replays a [`TaskTrace`] in program order, tracking for every memory
//! object (identified by base address, exactly as the ORTs do) its last
//! writer and the readers of the current version. Edges are classified:
//!
//! - **RaW** — true data dependency: always enforced.
//! - **InoutAnti** — a reader of the current version precedes an `inout`
//!   writer. The pipeline does *not* rename inout operands (Figure 9), so
//!   these are enforced: the inout task receives its "output buffer free"
//!   data-ready only when the previous version drains.
//! - **WaR** / **WaW** against a pure `out` operand — *removed by
//!   renaming* (the OVT allocates a fresh buffer, Figure 7). Recorded for
//!   statistics and for no-renaming ablations, but not enforced.
//!
//! The enforced edge set is what any correct out-of-order execution must
//! respect; `tss-runtime` executes directly from it, and the hardware
//! pipeline's schedules are validated against it.

use crate::task::{TaskId, TaskTrace};
use std::collections::HashMap;

/// Dependency edge classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write: true dependency (enforced).
    RaW,
    /// Readers of a version ordered before an inout writer (enforced,
    /// because inout operands are not renamed).
    InoutAnti,
    /// Write-after-read against a renamed `out` operand (not enforced).
    WaR,
    /// Write-after-write against a renamed `out` operand (not enforced).
    WaW,
}

impl DepKind {
    /// Whether the pipeline must order the two tasks.
    pub fn enforced(self) -> bool {
        matches!(self, DepKind::RaW | DepKind::InoutAnti)
    }
}

/// One dependency edge `from → to` (with `from` earlier in program order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Producer / predecessor task.
    pub from: TaskId,
    /// Consumer / successor task.
    pub to: TaskId,
    /// Classification.
    pub kind: DepKind,
}

#[derive(Debug, Default, Clone)]
struct ObjectState {
    /// Task holding the latest version (last writer), if in flight.
    last_writer: Option<TaskId>,
    /// Readers of the latest version since the last write.
    readers: Vec<TaskId>,
}

/// The dependency graph of a trace: full classified edge list plus
/// enforced predecessor/successor adjacency.
#[derive(Debug, Clone)]
pub struct DepGraph {
    n: usize,
    edges: Vec<DepEdge>,
    preds: Vec<Vec<TaskId>>,
    succs: Vec<Vec<TaskId>>,
    removed_by_renaming: usize,
}

impl DepGraph {
    /// Builds the graph by exact replay of `trace` in program order.
    pub fn from_trace(trace: &TaskTrace) -> Self {
        let n = trace.len();
        let mut edges = Vec::new();
        let mut objects: HashMap<u64, ObjectState> = HashMap::new();

        for (tid, task) in trace.iter().enumerate() {
            for op in task.operands.iter().filter(|o| o.is_tracked()) {
                let st = objects.entry(op.addr).or_default();
                if op.dir.reads() {
                    // RaW from the in-flight producer, if any.
                    if let Some(w) = st.last_writer {
                        if w != tid {
                            edges.push(DepEdge { from: w, to: tid, kind: DepKind::RaW });
                        }
                    }
                }
                if op.dir.writes() {
                    let inout = op.dir.reads();
                    // Ordering against the previous version's readers.
                    for &r in &st.readers {
                        if r != tid {
                            let kind = if inout { DepKind::InoutAnti } else { DepKind::WaR };
                            edges.push(DepEdge { from: r, to: tid, kind });
                        }
                    }
                    // Ordering against the previous writer.
                    if let Some(w) = st.last_writer {
                        if w != tid && !inout {
                            // (for inout the RaW edge above already covers it)
                            edges.push(DepEdge { from: w, to: tid, kind: DepKind::WaW });
                        }
                    }
                    st.last_writer = Some(tid);
                    st.readers.clear();
                }
                if op.dir.reads() {
                    st.readers.push(tid);
                }
            }
        }

        let mut preds: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        let mut removed = 0usize;
        for e in &edges {
            if e.kind.enforced() {
                preds[e.to].push(e.from);
                succs[e.from].push(e.to);
            } else {
                removed += 1;
            }
        }
        for v in preds.iter_mut().chain(succs.iter_mut()) {
            v.sort_unstable();
            v.dedup();
        }

        DepGraph { n, edges, preds, succs, removed_by_renaming: removed }
    }

    /// Number of tasks (graph nodes).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All classified edges, including the non-enforced WaR/WaW ones.
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Enforced (deduplicated) predecessors of `t`.
    pub fn preds(&self, t: TaskId) -> &[TaskId] {
        &self.preds[t]
    }

    /// Enforced (deduplicated) successors of `t`.
    pub fn succs(&self, t: TaskId) -> &[TaskId] {
        &self.succs[t]
    }

    /// Number of WaR/WaW edges that operand renaming eliminates.
    pub fn edges_removed_by_renaming(&self) -> usize {
        self.removed_by_renaming
    }

    /// Number of enforced edges (after dedup).
    pub fn enforced_edge_count(&self) -> usize {
        self.succs.iter().map(|s| s.len()).sum()
    }

    /// Tasks with no enforced predecessors (immediately runnable).
    pub fn roots(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.n).filter(|&t| self.preds[t].is_empty())
    }

    /// Whether `to` is reachable from `from` over enforced edges.
    /// (Figure 1's observation: tasks 6 and 23 are *not* ordered.)
    pub fn reachable(&self, from: TaskId, to: TaskId) -> bool {
        if from == to {
            return true;
        }
        let mut visited = vec![false; self.n];
        let mut stack = vec![from];
        visited[from] = true;
        while let Some(t) = stack.pop() {
            for &s in &self.succs[t] {
                if s == to {
                    return true;
                }
                if !visited[s] {
                    visited[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Renders the enforced graph in Graphviz DOT (labels are `creation
    /// order + 1`, matching Figure 1's numbering).
    pub fn to_dot(&self, trace: &TaskTrace) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph tasks {\n  rankdir=TB;\n");
        for t in 0..self.n {
            let kernel = trace.kernel_name(trace.task(t).kernel);
            let _ = writeln!(out, "  t{t} [label=\"{} ({kernel})\"];", t + 1);
        }
        for t in 0..self.n {
            for &s in self.succs(t) {
                let _ = writeln!(out, "  t{t} -> t{s};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{OperandDesc, TaskDesc, TaskTrace};

    fn trace_of(ops_per_task: Vec<Vec<OperandDesc>>) -> TaskTrace {
        let mut tr = TaskTrace::new("t");
        let k = tr.add_kernel("k");
        for ops in ops_per_task {
            tr.push(TaskDesc::new(k, 10, ops));
        }
        tr
    }

    #[test]
    fn raw_edge_detected() {
        let tr = trace_of(vec![
            vec![OperandDesc::output(0x100, 64)],
            vec![OperandDesc::input(0x100, 64)],
        ]);
        let g = DepGraph::from_trace(&tr);
        assert_eq!(g.preds(1), &[0]);
        assert_eq!(g.succs(0), &[1]);
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.edges()[0].kind, DepKind::RaW);
    }

    #[test]
    fn waw_and_war_removed_by_renaming() {
        let tr = trace_of(vec![
            vec![OperandDesc::output(0x100, 64)], // writer v0
            vec![OperandDesc::input(0x100, 64)],  // reader of v0
            vec![OperandDesc::output(0x100, 64)], // writer v1: WaW + WaR, renamed
        ]);
        let g = DepGraph::from_trace(&tr);
        assert!(g.preds(2).is_empty(), "renamed writer must not wait");
        assert_eq!(g.edges_removed_by_renaming(), 2);
        // Reader still depends on the first writer.
        assert_eq!(g.preds(1), &[0]);
    }

    #[test]
    fn inout_enforces_anti_dependencies() {
        let tr = trace_of(vec![
            vec![OperandDesc::output(0x100, 64)], // producer
            vec![OperandDesc::input(0x100, 64)],  // reader
            vec![OperandDesc::inout(0x100, 64)],  // inout: waits for both
        ]);
        let g = DepGraph::from_trace(&tr);
        assert_eq!(g.preds(2), &[0, 1]);
        let kinds: Vec<DepKind> = g.edges().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&DepKind::InoutAnti));
        assert_eq!(g.edges_removed_by_renaming(), 0);
    }

    #[test]
    fn inout_chains_are_serialized() {
        let tr = trace_of(vec![
            vec![OperandDesc::inout(0x100, 64)],
            vec![OperandDesc::inout(0x100, 64)],
            vec![OperandDesc::inout(0x100, 64)],
        ]);
        let g = DepGraph::from_trace(&tr);
        assert_eq!(g.preds(1), &[0]);
        assert_eq!(g.preds(2), &[1]);
        assert!(g.reachable(0, 2));
    }

    #[test]
    fn readers_do_not_depend_on_each_other() {
        let tr = trace_of(vec![
            vec![OperandDesc::output(0x100, 64)],
            vec![OperandDesc::input(0x100, 64)],
            vec![OperandDesc::input(0x100, 64)],
        ]);
        let g = DepGraph::from_trace(&tr);
        assert!(!g.reachable(1, 2));
        assert!(!g.reachable(2, 1));
        assert_eq!(g.preds(2), &[0]);
    }

    #[test]
    fn new_version_hides_old_producer() {
        let tr = trace_of(vec![
            vec![OperandDesc::output(0x100, 64)], // v0
            vec![OperandDesc::output(0x100, 64)], // v1 (renamed)
            vec![OperandDesc::input(0x100, 64)],  // reads v1, not v0
        ]);
        let g = DepGraph::from_trace(&tr);
        assert_eq!(g.preds(2), &[1]);
    }

    #[test]
    fn untracked_scalars_create_no_edges() {
        let tr = trace_of(vec![vec![OperandDesc::scalar(8)], vec![OperandDesc::scalar(8)]]);
        let g = DepGraph::from_trace(&tr);
        assert_eq!(g.edges().len(), 0);
        assert_eq!(g.roots().count(), 2);
    }

    #[test]
    fn self_dependency_is_ignored() {
        // A task reading and writing the same object through two operands
        // must not depend on itself.
        let tr =
            trace_of(vec![vec![OperandDesc::output(0x100, 64), OperandDesc::input(0x100, 64)]]);
        let g = DepGraph::from_trace(&tr);
        assert!(g.preds(0).is_empty());
    }

    #[test]
    fn different_objects_are_independent() {
        let tr = trace_of(vec![
            vec![OperandDesc::output(0x100, 64)],
            vec![OperandDesc::input(0x200, 64)],
        ]);
        let g = DepGraph::from_trace(&tr);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn dot_output_contains_nodes_and_edges() {
        let tr = trace_of(vec![
            vec![OperandDesc::output(0x100, 64)],
            vec![OperandDesc::input(0x100, 64)],
        ]);
        let g = DepGraph::from_trace(&tr);
        let dot = g.to_dot(&tr);
        assert!(dot.contains("t0 -> t1"));
        assert!(dot.contains("label=\"1 (k)\""));
    }
}
