//! Core task and operand types.
//!
//! A *task* is a dynamic instance of an annotated kernel function
//! (paper, Section I footnote 1). Its interactions with shared state are
//! fully exposed as operands: memory objects (base address + size) with
//! explicit directionality, or scalar values (inputs only) — Section
//! III.A.

use tss_sim::Cycle;

/// Maximum operands per task supported by the TRS inode layout: one main
/// block holds 4 operands, up to three indirect blocks hold 5 each
/// (paper, Figure 11).
pub const MAX_OPERANDS: usize = 19;

/// Index of a task within its [`TaskTrace`] (program/creation order).
pub type TaskId = usize;

/// Identifies a kernel function within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(pub u16);

/// Operand directionality, as annotated in the programming model
/// (`input` / `output` / `inout` in StarSs pragmas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Read-only (`input`): a data consumer.
    In,
    /// Write-only (`output`): a data producer; renamable.
    Out,
    /// Read-write (`inout`): a true dependency; never renamed.
    InOut,
}

impl Direction {
    /// Whether the operand reads the object.
    pub fn reads(self) -> bool {
        matches!(self, Direction::In | Direction::InOut)
    }

    /// Whether the operand writes the object.
    pub fn writes(self) -> bool {
        matches!(self, Direction::Out | Direction::InOut)
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Direction::In => "in",
            Direction::Out => "out",
            Direction::InOut => "inout",
        })
    }
}

/// Operand type: a consecutive memory object or an immediate scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OperandKind {
    /// A consecutive memory object, tracked for dependencies.
    Memory,
    /// An immediate value; never tracked (always ready).
    Scalar,
}

/// One task operand: the paper's *(type, base pointer, size,
/// directionality)* tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperandDesc {
    /// Base address of the memory object (or an opaque id for scalars).
    pub addr: u64,
    /// Object size in bytes (scalar payload size for scalars).
    pub size: u32,
    /// Directionality annotation.
    pub dir: Direction,
    /// Memory object vs. immediate scalar.
    pub kind: OperandKind,
}

impl OperandDesc {
    /// A memory operand.
    pub fn memory(addr: u64, size: u32, dir: Direction) -> Self {
        OperandDesc { addr, size, dir, kind: OperandKind::Memory }
    }

    /// An input memory operand.
    pub fn input(addr: u64, size: u32) -> Self {
        Self::memory(addr, size, Direction::In)
    }

    /// An output memory operand.
    pub fn output(addr: u64, size: u32) -> Self {
        Self::memory(addr, size, Direction::Out)
    }

    /// An inout memory operand.
    pub fn inout(addr: u64, size: u32) -> Self {
        Self::memory(addr, size, Direction::InOut)
    }

    /// A scalar (immediate) operand; scalars are always inputs
    /// (Section III.A).
    pub fn scalar(size: u32) -> Self {
        OperandDesc { addr: 0, size, dir: Direction::In, kind: OperandKind::Scalar }
    }

    /// Whether this operand participates in dependency tracking.
    pub fn is_tracked(&self) -> bool {
        self.kind == OperandKind::Memory
    }
}

/// One task: a kernel instance with a measured runtime and its operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskDesc {
    /// Which kernel this task executes.
    pub kernel: KernelId,
    /// Core-occupancy time when executed (trace-driven, like TaskSim).
    pub runtime: Cycle,
    /// The task's operands, in kernel-signature order.
    pub operands: Vec<OperandDesc>,
}

impl TaskDesc {
    /// Creates a task.
    ///
    /// # Panics
    ///
    /// Panics if `operands` exceeds [`MAX_OPERANDS`] (the TRS inode
    /// layout limit) or if a scalar operand is not an input.
    pub fn new(kernel: KernelId, runtime: Cycle, operands: Vec<OperandDesc>) -> Self {
        assert!(
            operands.len() <= MAX_OPERANDS,
            "task has {} operands; the TRS layout supports at most {MAX_OPERANDS}",
            operands.len()
        );
        assert!(
            operands.iter().all(|o| o.kind == OperandKind::Memory || o.dir == Direction::In),
            "scalar operands can only be inputs"
        );
        TaskDesc { kernel, runtime, operands }
    }

    /// Total bytes of memory operands (the "data size" of Table I).
    pub fn data_bytes(&self) -> u64 {
        self.operands.iter().filter(|o| o.is_tracked()).map(|o| o.size as u64).sum()
    }

    /// Number of memory (dependency-tracked) operands.
    pub fn memory_operand_count(&self) -> usize {
        self.operands.iter().filter(|o| o.is_tracked()).count()
    }
}

/// A sequential stream of tasks, as emitted by the task-generating
/// thread. Order is program order: the in-order decode requirement
/// (Section III.B) applies to this sequence.
#[derive(Debug, Clone, Default)]
pub struct TaskTrace {
    name: String,
    kernel_names: Vec<String>,
    tasks: Vec<TaskDesc>,
    /// Memoized dependency oracle (ISSUE 5): sweeps and repeated
    /// validations over one shared trace build the graph once. Cloning
    /// a trace shares the cached `Arc`; pushing a task invalidates it.
    graph_cache: std::sync::OnceLock<std::sync::Arc<crate::graph::DepGraph>>,
}

impl TaskTrace {
    /// An empty trace with a benchmark name.
    pub fn new(name: impl Into<String>) -> Self {
        TaskTrace {
            name: name.into(),
            kernel_names: Vec::new(),
            tasks: Vec::new(),
            graph_cache: std::sync::OnceLock::new(),
        }
    }

    /// The benchmark name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a kernel and returns its id.
    pub fn add_kernel(&mut self, name: impl Into<String>) -> KernelId {
        let id = KernelId(u16::try_from(self.kernel_names.len()).expect("too many kernels"));
        self.kernel_names.push(name.into());
        id
    }

    /// Name of a kernel.
    ///
    /// # Panics
    ///
    /// Panics if `k` was not issued by [`TaskTrace::add_kernel`].
    pub fn kernel_name(&self, k: KernelId) -> &str {
        &self.kernel_names[k.0 as usize]
    }

    /// Number of registered kernels.
    pub fn kernel_count(&self) -> usize {
        self.kernel_names.len()
    }

    /// Appends a task (program order) and returns its id.
    pub fn push(&mut self, task: TaskDesc) -> TaskId {
        self.graph_cache.take(); // deps changed: drop the memoized graph
        self.tasks.push(task);
        self.tasks.len() - 1
    }

    /// The memoized dependency oracle of this trace (built on first use
    /// by [`crate::graph::DepGraph::from_trace`]; shared by clones,
    /// invalidated by [`TaskTrace::push`]).
    pub fn dep_graph(&self) -> std::sync::Arc<crate::graph::DepGraph> {
        self.graph_cache
            .get_or_init(|| std::sync::Arc::new(crate::graph::DepGraph::from_trace(self)))
            .clone()
    }

    /// Convenience: create and append a task.
    pub fn push_task(
        &mut self,
        kernel: KernelId,
        runtime: Cycle,
        operands: Vec<OperandDesc>,
    ) -> TaskId {
        self.push(TaskDesc::new(kernel, runtime, operands))
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the trace has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Borrow a task by id.
    pub fn task(&self, id: TaskId) -> &TaskDesc {
        &self.tasks[id]
    }

    /// Iterates tasks in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, TaskDesc> {
        self.tasks.iter()
    }

    /// All tasks as a slice.
    pub fn tasks(&self) -> &[TaskDesc] {
        &self.tasks
    }

    /// Sum of all task runtimes: the sequential execution time that
    /// speedups are measured against (Figure 16).
    pub fn total_runtime(&self) -> Cycle {
        self.tasks.iter().map(|t| t.runtime).sum()
    }

    /// Mean memory-operand bytes per task (Table I "Data Sz. Avg").
    pub fn avg_data_bytes(&self) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.tasks.iter().map(|t| t.data_bytes()).sum::<u64>() as f64 / self.tasks.len() as f64
    }

    /// Minimum task runtime (Table I "Runtime Min"), if non-empty.
    pub fn min_runtime(&self) -> Option<Cycle> {
        self.tasks.iter().map(|t| t.runtime).min()
    }

    /// Median task runtime (Table I "Runtime Med"), if non-empty.
    pub fn median_runtime(&self) -> Option<Cycle> {
        if self.tasks.is_empty() {
            return None;
        }
        let mut rts: Vec<Cycle> = self.tasks.iter().map(|t| t.runtime).collect();
        rts.sort_unstable();
        Some(rts[rts.len() / 2])
    }

    /// Mean task runtime (Table I "Runtime Avg"); 0 if empty.
    pub fn avg_runtime(&self) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.total_runtime() as f64 / self.tasks.len() as f64
    }

    /// The Section-II decode-rate target `R = T/P` in cycles/task for a
    /// `processors`-way CMP, where `T` is the *shortest* task runtime —
    /// "the target decode rate is ... the runtime of the shortest tasks"
    /// (the paper's Table I "Decode Rate" column uses exactly this).
    ///
    /// Returns `None` for an empty trace.
    ///
    /// # Panics
    ///
    /// Panics if `processors == 0`.
    pub fn decode_rate_limit(&self, processors: usize) -> Option<f64> {
        assert!(processors > 0, "a CMP needs at least one processor");
        self.min_runtime().map(|t| t as f64 / processors as f64)
    }
}

impl<'a> IntoIterator for &'a TaskTrace {
    type Item = &'a TaskDesc;
    type IntoIter = std::slice::Iter<'a, TaskDesc>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_sim::us_to_cycles;

    #[test]
    fn direction_read_write_flags() {
        assert!(Direction::In.reads() && !Direction::In.writes());
        assert!(!Direction::Out.reads() && Direction::Out.writes());
        assert!(Direction::InOut.reads() && Direction::InOut.writes());
    }

    #[test]
    fn operand_constructors() {
        let o = OperandDesc::input(0x1000, 512);
        assert_eq!(o.dir, Direction::In);
        assert!(o.is_tracked());
        let s = OperandDesc::scalar(8);
        assert!(!s.is_tracked());
        assert_eq!(s.dir, Direction::In);
    }

    #[test]
    #[should_panic(expected = "at most 19")]
    fn too_many_operands_rejected() {
        let ops = vec![OperandDesc::input(0, 64); 20];
        let _ = TaskDesc::new(KernelId(0), 100, ops);
    }

    #[test]
    #[should_panic(expected = "scalar operands can only be inputs")]
    fn scalar_output_rejected() {
        let mut s = OperandDesc::scalar(8);
        s.dir = Direction::Out;
        let _ = TaskDesc::new(KernelId(0), 100, vec![s]);
    }

    #[test]
    fn data_bytes_excludes_scalars() {
        let t = TaskDesc::new(
            KernelId(0),
            10,
            vec![
                OperandDesc::input(0x0, 1000),
                OperandDesc::scalar(8),
                OperandDesc::output(0x1000, 24),
            ],
        );
        assert_eq!(t.data_bytes(), 1024);
        assert_eq!(t.memory_operand_count(), 2);
    }

    #[test]
    fn trace_stats() {
        let mut tr = TaskTrace::new("test");
        let k = tr.add_kernel("k");
        tr.push_task(k, 100, vec![OperandDesc::output(0, 64)]);
        tr.push_task(k, 300, vec![OperandDesc::input(0, 64)]);
        tr.push_task(k, 200, vec![OperandDesc::inout(0, 128)]);
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.total_runtime(), 600);
        assert_eq!(tr.min_runtime(), Some(100));
        assert_eq!(tr.median_runtime(), Some(200));
        assert!((tr.avg_runtime() - 200.0).abs() < 1e-12);
        assert!((tr.avg_data_bytes() - (64.0 + 64.0 + 128.0) / 3.0).abs() < 1e-12);
        assert_eq!(tr.kernel_name(k), "k");
    }

    #[test]
    fn decode_rate_limit_matches_table_one() {
        // MatMul: min runtime 23 us; for 256 processors Table I reports
        // 90 ns/task.
        let mut tr = TaskTrace::new("MatMul");
        let k = tr.add_kernel("sgemm");
        tr.push_task(k, us_to_cycles(23.0), vec![]);
        let limit_cycles = tr.decode_rate_limit(256).unwrap();
        let limit_ns = tss_sim::cycles_to_ns(limit_cycles as u64);
        assert!((limit_ns - 90.0).abs() < 1.0, "{limit_ns} ns");
    }

    #[test]
    fn empty_trace_stats_are_none_or_zero() {
        let tr = TaskTrace::new("empty");
        assert!(tr.is_empty());
        assert_eq!(tr.min_runtime(), None);
        assert_eq!(tr.median_runtime(), None);
        assert_eq!(tr.avg_runtime(), 0.0);
        assert_eq!(tr.decode_rate_limit(256), None);
    }
}
