//! Execution backend: the "generic CMP substrate" of Section IV.B.5.
//!
//! The frontend pushes runnable tasks into a queuing system similar to
//! Carbon (a global hardware ready queue; no task stealing, as in the
//! paper), a scheduler hands them to idle in-order cores, and completion
//! messages travel back to the owning TRS. Dispatch and completion
//! messages ride the two-level ring of `tss-noc`, so backend latencies
//! scale with machine size and congestion.
//!
//! [`CorePool`] models the queue + scheduler + all cores as one
//! component (cores are pure occupancy: the simulator is trace-driven,
//! exactly like the paper's TaskSim). It serves both the hardware
//! pipeline (`TaskReady` carrying a `TaskRef`) and the software-runtime
//! baseline (`SoftDecoded` from the decoder, with completion reported
//! back to it).

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::Arc;

use tss_noc::{Node, RingConfig, RingNetwork};
use tss_pipeline::{Msg, TaskRef, Topology};
use tss_sim::{Component, ComponentId, Context, Cycle};
use tss_trace::{ScheduleRecord, TaskId, TaskTrace};

/// Backend parameters.
#[derive(Debug, Clone)]
pub struct BackendConfig {
    /// Number of worker cores (32–256 in the paper).
    pub cores: usize,
    /// Ring interconnect parameters.
    pub ring: RingConfig,
    /// Fixed cost of popping the ready queue and making a scheduling
    /// decision, in cycles.
    pub schedule_cost: Cycle,
    /// Bytes of a dispatch message (task descriptor sent to a core).
    pub dispatch_bytes: u64,
    /// Bytes of a completion message.
    pub completion_bytes: u64,
}

impl BackendConfig {
    /// Defaults for a `cores`-way CMP (Table II ring).
    pub fn for_cores(cores: usize) -> Self {
        BackendConfig {
            cores,
            ring: RingConfig::for_cores(cores),
            schedule_cost: 4,
            dispatch_bytes: 64,
            completion_bytes: 16,
        }
    }
}

/// Where task completions are reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionSink {
    /// Hardware pipeline: notify the owning TRS (`TaskFinished`).
    Trs,
    /// Software runtime: notify the decoder (`SoftTaskFinished`).
    Decoder(ComponentId),
}

#[derive(Debug, Clone, Copy)]
struct QueuedTask {
    task: Option<TaskRef>,
    trace_id: TaskId,
    enqueued: Cycle,
}

/// Global ready queue + scheduler + worker cores.
pub struct CorePool {
    trace: Arc<TaskTrace>,
    topo: Topology,
    cfg: BackendConfig,
    sink: CompletionSink,
    ring: RingNetwork,
    ready: VecDeque<QueuedTask>,
    idle_cores: Vec<usize>,
    schedule: Vec<ScheduleRecord>,
    completed: u64,
    queue_wait_total: Cycle,
    peak_queue: usize,
    busy_cycles: Cycle,
}

impl CorePool {
    /// Creates the backend.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores == 0`.
    pub fn new(
        trace: Arc<TaskTrace>,
        topo: Topology,
        cfg: BackendConfig,
        sink: CompletionSink,
    ) -> Self {
        assert!(cfg.cores > 0, "a backend needs cores");
        // Reserve the send-path buffers up front. The schedule gets
        // exactly one record per task and never grows mid-run; the
        // ready-queue reservation is a heuristic (it can back up to the
        // whole frontend window, so a deep backlog may still grow it).
        let tasks = trace.len();
        CorePool {
            trace,
            topo,
            ring: RingNetwork::new(cfg.ring.clone()),
            idle_cores: (0..cfg.cores).rev().collect(),
            cfg,
            sink,
            ready: VecDeque::with_capacity(1024.min(tasks + 1)),
            schedule: Vec::with_capacity(tasks),
            completed: 0,
            queue_wait_total: 0,
            peak_queue: 0,
            busy_cycles: 0,
        }
    }

    /// The execution schedule (one record per completed task).
    pub fn schedule(&self) -> &[ScheduleRecord] {
        &self.schedule
    }

    /// Tasks completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Mean ready-queue wait in cycles.
    pub fn avg_queue_wait(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.queue_wait_total as f64 / self.completed as f64
        }
    }

    /// Peak ready-queue depth.
    pub fn peak_queue(&self) -> usize {
        self.peak_queue
    }

    /// Aggregate core-busy cycles.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy_cycles
    }

    /// Core utilization over a makespan.
    pub fn utilization(&self, makespan: Cycle) -> f64 {
        if makespan == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / (makespan as f64 * self.cfg.cores as f64)
        }
    }

    fn dispatch(&mut self, ctx: &mut Context<'_, Msg>) {
        while !self.ready.is_empty() && !self.idle_cores.is_empty() {
            let qt = self.ready.pop_front().expect("non-empty");
            let core = self.idle_cores.pop().expect("non-empty");
            self.queue_wait_total += ctx.now() - qt.enqueued;
            // Scheduling decision + dispatch message over the ring.
            let depart = ctx.now() + self.cfg.schedule_cost;
            let arrive =
                self.ring.route(Node::Frontend, Node::Core(core), self.cfg.dispatch_bytes, depart);
            let runtime = self.trace.task(qt.trace_id).runtime;
            let start = arrive;
            let end = start + runtime;
            self.busy_cycles += runtime;
            self.schedule.push(ScheduleRecord { task: qt.trace_id, start, end, core });
            let me = ctx.self_id();
            ctx.send_at(me, end, Msg::CoreDone { core, task: qt.task, trace_id: qt.trace_id });
        }
    }
}

impl Component<Msg> for CorePool {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            Msg::TaskReady { task, trace_id } => {
                self.ready.push_back(QueuedTask {
                    task: Some(task),
                    trace_id,
                    enqueued: ctx.now(),
                });
                self.peak_queue = self.peak_queue.max(self.ready.len());
                self.dispatch(ctx);
            }
            Msg::SoftDecoded { trace_id } => {
                // The software runtime path: the decoder marked this task
                // runnable (no TaskRef — there is no TRS slot).
                self.ready.push_back(QueuedTask { task: None, trace_id, enqueued: ctx.now() });
                self.peak_queue = self.peak_queue.max(self.ready.len());
                self.dispatch(ctx);
            }
            Msg::CoreDone { core, task, trace_id } => {
                self.completed += 1;
                self.idle_cores.push(core);
                // Completion message back over the ring.
                let arrive = self.ring.route(
                    Node::Core(core),
                    Node::Frontend,
                    self.cfg.completion_bytes,
                    ctx.now(),
                );
                let delay = arrive - ctx.now();
                match self.sink {
                    CompletionSink::Trs => {
                        let task = task.expect("hardware tasks carry a TaskRef");
                        ctx.send(
                            self.topo.trs[task.trs as usize],
                            delay,
                            Msg::TaskFinished { task },
                        );
                    }
                    CompletionSink::Decoder(dec) => {
                        ctx.send(dec, delay, Msg::SoftTaskFinished { trace_id });
                    }
                }
                self.dispatch(ctx);
            }
            other => panic!("backend received unexpected message {other:?}"),
        }
    }
}

/// Factory for a hardware-pipeline backend, matching
/// `tss_pipeline::assembly::build_frontend`'s signature.
pub fn cmp_backend(cfg: BackendConfig) -> impl FnOnce(Arc<TaskTrace>, Topology) -> CorePool {
    move |trace, topo| CorePool::new(trace, topo, cfg, CompletionSink::Trs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_sim::Simulation;
    use tss_trace::OperandDesc;

    fn topo_for(backend_idx: usize) -> Topology {
        Topology {
            generators: vec![ComponentId::from_index(1_000)], // unused in these tests
            gateway: ComponentId::from_index(1_001),
            trs: vec![],
            ort: vec![],
            backend: ComponentId::from_index(backend_idx),
        }
    }

    /// Decoder stand-in that records completions.
    struct Collector {
        done: Vec<(Cycle, TaskId)>,
    }
    impl Component<Msg> for Collector {
        fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
            match msg {
                Msg::SoftTaskFinished { trace_id } => self.done.push((ctx.now(), trace_id)),
                other => panic!("collector got {other:?}"),
            }
        }
    }

    fn two_task_trace(rt: Cycle) -> Arc<TaskTrace> {
        let mut tr = TaskTrace::new("t");
        let k = tr.add_kernel("k");
        for i in 0..2u64 {
            tr.push_task(k, rt, vec![OperandDesc::output(0x1000 + i * 0x100, 64)]);
        }
        Arc::new(tr)
    }

    #[test]
    fn single_core_serializes_two_tasks() {
        let trace = two_task_trace(1_000);
        let mut sim = Simulation::<Msg>::new();
        let collector = sim.add(Collector { done: vec![] });
        let pool = sim.add(CorePool::new(
            trace.clone(),
            topo_for(1),
            BackendConfig::for_cores(1),
            CompletionSink::Decoder(collector),
        ));
        sim.schedule(0, pool, Msg::SoftDecoded { trace_id: 0 });
        sim.schedule(0, pool, Msg::SoftDecoded { trace_id: 1 });
        sim.run();
        let pool_ref = sim.component::<CorePool>(pool);
        assert_eq!(pool_ref.completed(), 2);
        let s = pool_ref.schedule();
        assert_eq!(s.len(), 2);
        assert!(s[1].start >= s[0].end, "one core cannot overlap tasks");
        assert_eq!(s[0].core, s[1].core);
        assert!(pool_ref.avg_queue_wait() > 0.0, "second task must have waited");
    }

    #[test]
    fn two_cores_run_in_parallel() {
        let trace = two_task_trace(10_000);
        let mut sim = Simulation::<Msg>::new();
        let collector = sim.add(Collector { done: vec![] });
        let pool = sim.add(CorePool::new(
            trace.clone(),
            topo_for(1),
            BackendConfig::for_cores(2),
            CompletionSink::Decoder(collector),
        ));
        sim.schedule(0, pool, Msg::SoftDecoded { trace_id: 0 });
        sim.schedule(0, pool, Msg::SoftDecoded { trace_id: 1 });
        sim.run();
        let pool_ref = sim.component::<CorePool>(pool);
        let s = pool_ref.schedule();
        assert_ne!(s[0].core, s[1].core);
        assert!(s[1].start < s[0].end, "two cores must overlap");
    }

    #[test]
    fn dispatch_pays_ring_latency() {
        let trace = two_task_trace(100);
        let mut sim = Simulation::<Msg>::new();
        let collector = sim.add(Collector { done: vec![] });
        let pool = sim.add(CorePool::new(
            trace.clone(),
            topo_for(1),
            BackendConfig::for_cores(4),
            CompletionSink::Decoder(collector),
        ));
        sim.schedule(0, pool, Msg::SoftDecoded { trace_id: 0 });
        sim.run();
        let s = sim.component::<CorePool>(pool).schedule();
        assert!(s[0].start > 0, "dispatch cannot be instantaneous");
    }

    #[test]
    fn completions_reach_the_decoder_sink() {
        let trace = two_task_trace(500);
        let mut sim = Simulation::<Msg>::new();
        let collector = sim.add(Collector { done: vec![] });
        let pool = sim.add(CorePool::new(
            trace.clone(),
            topo_for(1),
            BackendConfig::for_cores(2),
            CompletionSink::Decoder(collector),
        ));
        sim.schedule(0, pool, Msg::SoftDecoded { trace_id: 1 });
        sim.run();
        let c = sim.component::<Collector>(collector);
        assert_eq!(c.done.len(), 1);
        assert_eq!(c.done[0].1, 1);
    }

    #[test]
    fn utilization_and_peak_queue_reported() {
        let trace = two_task_trace(1_000);
        let mut sim = Simulation::<Msg>::new();
        let collector = sim.add(Collector { done: vec![] });
        let pool = sim.add(CorePool::new(
            trace.clone(),
            topo_for(1),
            BackendConfig::for_cores(1),
            CompletionSink::Decoder(collector),
        ));
        sim.schedule(0, pool, Msg::SoftDecoded { trace_id: 0 });
        sim.schedule(0, pool, Msg::SoftDecoded { trace_id: 1 });
        let end = sim.run();
        let pool_ref = sim.component::<CorePool>(pool);
        // The first task dispatches immediately; the second waits queued.
        assert_eq!(pool_ref.peak_queue(), 1);
        let u = pool_ref.utilization(end);
        assert!(u > 0.5 && u <= 1.0, "one busy core: {u}");
    }

    #[test]
    #[should_panic(expected = "needs cores")]
    fn zero_cores_rejected() {
        let trace = two_task_trace(1);
        let _ = CorePool::new(
            trace,
            topo_for(0),
            BackendConfig { cores: 0, ..BackendConfig::for_cores(1) },
            CompletionSink::Trs,
        );
    }
}
