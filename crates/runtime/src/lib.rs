//! The software StarSs-like runtime baseline (paper, Sections II and
//! VI.C).
//!
//! The StarSs master thread decodes task dependencies in software: the
//! paper measured "just over 700 ns" per task for the highly tuned x86
//! decoder (2.66 GHz Core Duo) and ~2.5 µs for the Cell BE port. The
//! decoder is strictly serial — that rate is the hard ceiling on task
//! throughput — but its task window is effectively *infinite* (heap
//! allocated), which is exactly the trade-off Figure 16 evaluates
//! against the hardware pipeline.
//!
//! [`SoftDecoder`] decodes the trace in program order at a fixed cost
//! per task, resolves dependencies exactly (using the `tss-trace`
//! oracle, as the real runtime computes exact dependencies), and feeds
//! the same `tss-backend` core pool the hardware pipeline uses.

#![forbid(unsafe_code)]

use std::sync::Arc;

use tss_backend::{BackendConfig, CompletionSink, CorePool};
use tss_pipeline::{Msg, Topology};
use tss_sim::{ns_to_cycles, Component, ComponentId, Context, Cycle, Simulation};
use tss_trace::{DepGraph, TaskId, TaskTrace};

/// Software-runtime parameters.
#[derive(Debug, Clone)]
pub struct SoftRuntimeConfig {
    /// Serial decode cost per task, in cycles.
    pub decode_cost: Cycle,
}

impl SoftRuntimeConfig {
    /// The paper's tuned x86 decoder: ~700 ns/task.
    pub fn x86() -> Self {
        SoftRuntimeConfig { decode_cost: ns_to_cycles(700.0) }
    }

    /// The Cell BE decoder measured by Rico et al.: ~2.5 µs/task.
    pub fn cell_be() -> Self {
        SoftRuntimeConfig { decode_cost: ns_to_cycles(2_500.0) }
    }
}

impl Default for SoftRuntimeConfig {
    fn default() -> Self {
        Self::x86()
    }
}

/// The serial software dependency decoder (master thread).
pub struct SoftDecoder {
    graph: std::sync::Arc<DepGraph>,
    decode_cost: Cycle,
    backend: ComponentId,
    next_decode: TaskId,
    n: usize,
    decoded: Vec<bool>,
    completed: Vec<bool>,
    missing_preds: Vec<usize>,
    tasks_completed: usize,
    decode_times: Vec<Cycle>,
    finished_at: Option<Cycle>,
}

impl SoftDecoder {
    /// Creates a decoder over `trace`'s exact dependency graph.
    pub fn new(trace: &TaskTrace, cfg: &SoftRuntimeConfig, backend: ComponentId) -> Self {
        // Memoized oracle: sweeps running one shared trace through many
        // software systems decode the dependency graph once (ISSUE 5).
        let graph = trace.dep_graph();
        let n = trace.len();
        let missing_preds = (0..n).map(|t| graph.preds(t).len()).collect();
        SoftDecoder {
            graph,
            decode_cost: cfg.decode_cost,
            backend,
            next_decode: 0,
            n,
            decoded: vec![false; n],
            completed: vec![false; n],
            missing_preds,
            tasks_completed: 0,
            decode_times: Vec::with_capacity(n),
            finished_at: None,
        }
    }

    /// Decode completion timestamps (for decode-rate comparison).
    pub fn decode_times(&self) -> &[Cycle] {
        &self.decode_times
    }

    /// When the last task completed, if the run is done.
    pub fn finished_at(&self) -> Option<Cycle> {
        self.finished_at
    }

    /// Tasks completed so far.
    pub fn tasks_completed(&self) -> usize {
        self.tasks_completed
    }

    fn start_next_decode(&mut self, ctx: &mut Context<'_, Msg>) {
        if self.next_decode < self.n {
            let id = self.next_decode;
            let me = ctx.self_id();
            ctx.send(me, self.decode_cost, Msg::SoftDecoded { trace_id: id });
        }
    }

    fn release_if_runnable(&mut self, t: TaskId, ctx: &mut Context<'_, Msg>) {
        if self.decoded[t] && !self.completed[t] && self.missing_preds[t] == 0 {
            ctx.send(self.backend, 1, Msg::SoftDecoded { trace_id: t });
        }
    }
}

impl Component<Msg> for SoftDecoder {
    fn on_message(&mut self, msg: Msg, ctx: &mut Context<'_, Msg>) {
        match msg {
            // Self-message: one task finished decoding on the master
            // thread.
            Msg::SoftDecoded { trace_id } => {
                debug_assert_eq!(trace_id, self.next_decode, "decode is strictly in order");
                self.decoded[trace_id] = true;
                self.decode_times.push(ctx.now());
                self.next_decode += 1;
                self.release_if_runnable(trace_id, ctx);
                self.start_next_decode(ctx);
            }
            Msg::SoftTaskFinished { trace_id } => {
                debug_assert!(!self.completed[trace_id], "double completion");
                self.completed[trace_id] = true;
                self.tasks_completed += 1;
                // Indexed loop instead of a scratch copy (releasing
                // borrows `self` mutably): completion is once per task,
                // but a per-task allocation here was visible in profiles.
                for i in 0..self.graph.succs(trace_id).len() {
                    let s = self.graph.succs(trace_id)[i];
                    self.missing_preds[s] -= 1;
                    self.release_if_runnable(s, ctx);
                }
                if self.tasks_completed == self.n {
                    self.finished_at = Some(ctx.now());
                }
            }
            // The initial kick reuses the credit message.
            Msg::GatewayCredit { .. } => self.start_next_decode(ctx),
            other => panic!("software decoder received unexpected message {other:?}"),
        }
    }
}

/// Assembles the software-runtime system: serial decoder + CMP backend.
/// Returns `(decoder, pool)` component ids; the initial decode kick is
/// scheduled automatically.
pub fn build_software_runtime<S>(
    sim: &mut Simulation<Msg, S>,
    trace: Arc<TaskTrace>,
    rt_cfg: &SoftRuntimeConfig,
    backend_cfg: BackendConfig,
) -> (ComponentId, ComponentId)
where
    S: tss_sim::ComponentStore<Msg> + tss_sim::Insert<SoftDecoder> + tss_sim::Insert<CorePool>,
{
    let decoder_id = ComponentId::from_index(sim.component_count());
    let pool_id = ComponentId::from_index(sim.component_count() + 1);
    // The pool only uses `topo.trs` for the hardware sink; a software
    // pool reports to the decoder instead.
    let topo = Topology {
        generators: vec![decoder_id],
        gateway: decoder_id,
        trs: Vec::new(),
        ort: Vec::new(),
        backend: pool_id,
    };
    let id = sim.add(SoftDecoder::new(&trace, rt_cfg, pool_id));
    assert_eq!(id, decoder_id);
    let id = sim.add(CorePool::new(
        trace.clone(),
        topo,
        backend_cfg,
        CompletionSink::Decoder(decoder_id),
    ));
    assert_eq!(id, pool_id);
    if !trace.is_empty() {
        sim.schedule(0, decoder_id, Msg::GatewayCredit { free_bytes: 0 });
    }
    (decoder_id, pool_id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::{validate_schedule, OperandDesc};

    fn run(
        trace: TaskTrace,
        cores: usize,
        cfg: SoftRuntimeConfig,
    ) -> (Simulation<Msg>, ComponentId, ComponentId, Arc<TaskTrace>) {
        let trace = Arc::new(trace);
        let mut sim = Simulation::<Msg>::new();
        let (dec, pool) =
            build_software_runtime(&mut sim, trace.clone(), &cfg, BackendConfig::for_cores(cores));
        sim.run();
        (sim, dec, pool, trace)
    }

    fn chain(n: usize, rt: Cycle) -> TaskTrace {
        let mut tr = TaskTrace::new("chain");
        let k = tr.add_kernel("k");
        for _ in 0..n {
            tr.push_task(k, rt, vec![OperandDesc::inout(0x1000, 64)]);
        }
        tr
    }

    fn independent(n: usize, rt: Cycle) -> TaskTrace {
        let mut tr = TaskTrace::new("ind");
        let k = tr.add_kernel("k");
        for i in 0..n as u64 {
            tr.push_task(k, rt, vec![OperandDesc::output(0x1000 + i * 0x100, 64)]);
        }
        tr
    }

    #[test]
    fn all_tasks_complete_and_schedule_is_valid() {
        let (sim, dec, pool, trace) = run(chain(20, 5_000), 4, SoftRuntimeConfig::x86());
        let d = sim.component::<SoftDecoder>(dec);
        assert_eq!(d.tasks_completed(), 20);
        let p = sim.component::<CorePool>(pool);
        let g = DepGraph::from_trace(&trace);
        validate_schedule(&g, p.schedule()).expect("valid schedule");
    }

    #[test]
    fn decode_rate_is_the_serial_bottleneck() {
        // 100 independent 1-cycle tasks on 64 cores: throughput is bound
        // by the 2240-cycle decode, so the makespan is ~100 x 2240.
        let (sim, _, _, _) = run(independent(100, 1), 64, SoftRuntimeConfig::x86());
        let expected = 100 * ns_to_cycles(700.0);
        assert!(
            sim.now() >= expected && sim.now() < expected + 10_000,
            "makespan {} vs serial decode {}",
            sim.now(),
            expected
        );
    }

    #[test]
    fn infinite_window_uncovers_distant_parallelism() {
        // A long serial chain followed by independent tasks: the software
        // decoder's unbounded window lets the independent tail overlap
        // the chain's execution.
        let mut tr = chain(10, 50_000);
        let k = tr.add_kernel("k2");
        for i in 0..10u64 {
            tr.push_task(k, 50_000, vec![OperandDesc::output(0x100_0000 + i * 0x100, 64)]);
        }
        let (sim, _, pool, trace) = run(tr, 16, SoftRuntimeConfig::x86());
        let p = sim.component::<CorePool>(pool);
        let g = DepGraph::from_trace(&trace);
        validate_schedule(&g, p.schedule()).expect("valid");
        // Chain: 10 x 50k serial = 500k; the independent tail must finish
        // well within that window.
        let chain_end = p.schedule().iter().filter(|r| r.task < 10).map(|r| r.end).max().unwrap();
        let tail_end = p.schedule().iter().filter(|r| r.task >= 10).map(|r| r.end).max().unwrap();
        assert!(tail_end < chain_end, "tail {tail_end} must overlap chain {chain_end}");
    }

    #[test]
    fn cell_preset_is_slower() {
        let (sim_x86, ..) = run(independent(50, 1), 8, SoftRuntimeConfig::x86());
        let (sim_cell, ..) = run(independent(50, 1), 8, SoftRuntimeConfig::cell_be());
        assert!(sim_cell.now() > 3 * sim_x86.now());
    }

    #[test]
    fn plateau_matches_avg_runtime_over_decode_cost() {
        // Section VI.C: software speedup saturates near
        // avg_runtime / decode_cost regardless of core count.
        let rt = 10 * ns_to_cycles(700.0); // plateau at ~10 cores
        let trace = independent(400, rt);
        let total: Cycle = trace.total_runtime();
        let (sim, ..) = run(trace, 64, SoftRuntimeConfig::x86());
        let speedup = total as f64 / sim.now() as f64;
        assert!(
            (8.0..=11.0).contains(&speedup),
            "speedup {speedup} should plateau near 10 despite 64 cores"
        );
    }

    #[test]
    fn empty_trace_is_noop() {
        let (sim, ..) = run(TaskTrace::new("e"), 2, SoftRuntimeConfig::x86());
        assert_eq!(sim.now(), 0);
    }
}
