//! Shared plumbing for the table/figure harness binaries.
//!
//! Every binary accepts:
//!
//! - `--scale small|paper|large` — trace size (default `paper`; `small`
//!   for a quick smoke run),
//! - `--csv` — emit CSV instead of the aligned table,
//! - `--seed N` — workload seed (default 42),
//! - `--jobs N` — sweep-fabric worker threads (default: available
//!   parallelism). Points are independent single-threaded simulations
//!   collected in deterministic order, so any `--jobs` value produces
//!   byte-identical stdout (gated in CI; DESIGN.md §9.3).
//!
//! See `DESIGN.md` §4 for the experiment-to-binary index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.

#![forbid(unsafe_code)]

use tss_workloads::Scale;

/// Parsed common command-line options.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Trace scale.
    pub scale: Scale,
    /// Emit CSV instead of aligned text.
    pub csv: bool,
    /// Workload seed.
    pub seed: u64,
    /// Sweep-fabric worker threads.
    pub jobs: usize,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: Scale::Paper,
            csv: false,
            seed: 42,
            jobs: tss_core::fabric::default_jobs(),
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on unknown flags or bad values.
    pub fn parse() -> Self {
        let mut out = HarnessArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    out.scale = Scale::parse(&v)
                        .unwrap_or_else(|| panic!("unknown scale '{v}' (small|paper|large)"));
                }
                "--csv" => out.csv = true,
                "--seed" => {
                    out.seed = args
                        .next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed must be an integer");
                }
                "--jobs" => {
                    out.jobs = args
                        .next()
                        .expect("--jobs needs a value")
                        .parse()
                        .expect("--jobs must be a positive integer");
                    assert!(out.jobs >= 1, "--jobs must be >= 1");
                }
                "--help" | "-h" => {
                    eprintln!("usage: [--scale small|paper|large] [--csv] [--seed N] [--jobs N]");
                    std::process::exit(0);
                }
                other => panic!("unknown flag '{other}' (try --help)"),
            }
        }
        out
    }

    /// Prints a table per the `--csv` flag.
    pub fn emit(&self, table: &tss_core::Table) {
        if self.csv {
            print!("{}", table.to_csv());
        } else {
            println!("{}", table.render());
        }
    }

    /// Fans one closure per benchmark across the sweep fabric and
    /// returns the results in `Benchmark::all()` order — the standard
    /// shape of the per-benchmark figure binaries. The closure receives
    /// the benchmark and its generated trace.
    pub fn sweep_benchmarks<R: Send>(
        &self,
        f: impl Fn(tss_workloads::Benchmark, tss_trace::TaskTrace) -> R + Sync,
    ) -> Vec<R> {
        let points: Vec<tss_workloads::Benchmark> = tss_workloads::Benchmark::all().to_vec();
        tss_core::fabric::sweep(self.jobs, points, |bench| {
            let trace = bench.trace(self.scale, self.seed);
            f(bench, trace)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_scale() {
        let a = HarnessArgs::default();
        assert_eq!(a.scale, Scale::Paper);
        assert!(!a.csv);
        assert_eq!(a.seed, 42);
        assert!(a.jobs >= 1);
    }
}
