//! Shared plumbing for the table/figure harness binaries.
//!
//! Every binary accepts:
//!
//! - `--scale small|paper|large` — trace size (default `paper`; `small`
//!   for a quick smoke run),
//! - `--csv` — emit CSV instead of the aligned table,
//! - `--seed N` — workload seed (default 42).
//!
//! See `DESIGN.md` §4 for the experiment-to-binary index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.

use tss_workloads::Scale;

/// Parsed common command-line options.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Trace scale.
    pub scale: Scale,
    /// Emit CSV instead of aligned text.
    pub csv: bool,
    /// Workload seed.
    pub seed: u64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs { scale: Scale::Paper, csv: false, seed: 42 }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on unknown flags or bad values.
    pub fn parse() -> Self {
        let mut out = HarnessArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    out.scale = Scale::parse(&v)
                        .unwrap_or_else(|| panic!("unknown scale '{v}' (small|paper|large)"));
                }
                "--csv" => out.csv = true,
                "--seed" => {
                    out.seed = args
                        .next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed must be an integer");
                }
                "--help" | "-h" => {
                    eprintln!("usage: [--scale small|paper|large] [--csv] [--seed N]");
                    std::process::exit(0);
                }
                other => panic!("unknown flag '{other}' (try --help)"),
            }
        }
        out
    }

    /// Prints a table per the `--csv` flag.
    pub fn emit(&self, table: &tss_core::Table) {
        if self.csv {
            print!("{}", table.to_csv());
        } else {
            println!("{}", table.render());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_scale() {
        let a = HarnessArgs::default();
        assert_eq!(a.scale, Scale::Paper);
        assert!(!a.csv);
        assert_eq!(a.seed, 42);
    }
}
