//! Simulator throughput harness: the benchmark trajectory for the event
//! core itself (DESIGN.md §6, §9).
//!
//! Runs all nine Table-I benchmarks through **both** engines (hardware
//! pipeline and software runtime) at the requested `--scale`, measuring
//! host wall time, delivered events per second, and peak event-queue
//! depth, then writes `BENCH_pipeline.json` (schema
//! `tss-bench-pipeline/v2`) next to the working directory for CI to
//! archive and EXPERIMENTS.md to quote.
//!
//! Unlike the figure binaries this one times the *simulator*, not the
//! simulated machine: oracle validation is skipped so the measurement is
//! the event loop plus module handlers, nothing else.
//!
//! `--jobs N` fans the benchmarks across the sweep fabric. Per-row wall
//! times are each run's own span, so with `--jobs > 1` concurrent runs
//! share the host and per-row `events_per_sec` is *not* comparable to a
//! serial session — use `--jobs 1` (what CI's baseline gate runs) for
//! per-row throughput numbers. `suite_wall_ms` in `totals` is the
//! end-to-end suite span, the figure the fabric is meant to shrink; the
//! `jobs` field records what produced the artifact.
//!
//! Flags: `--scale small|paper|large`, `--seed N`, `--jobs N`, `--json`
//! (print the JSON document to stdout instead of the aligned table),
//! `--out PATH` (where to write the JSON file; default
//! `BENCH_pipeline.json`).

use std::sync::Arc;
use std::time::Instant;

use tss_core::report::fmt_f;
use tss_core::{fabric, RunReport, SystemBuilder, Table};
use tss_workloads::{Benchmark, Scale};

struct PerfArgs {
    scale: Scale,
    seed: u64,
    jobs: usize,
    json: bool,
    out: String,
}

fn parse_args() -> PerfArgs {
    let mut out = PerfArgs {
        scale: Scale::Paper,
        seed: 42,
        jobs: fabric::default_jobs(),
        json: false,
        out: "BENCH_pipeline.json".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                out.scale = Scale::parse(&v)
                    .unwrap_or_else(|| panic!("unknown scale '{v}' (small|paper|large)"));
            }
            "--seed" => {
                out.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            "--jobs" => {
                out.jobs = args
                    .next()
                    .expect("--jobs needs a value")
                    .parse()
                    .expect("--jobs must be a positive integer");
                assert!(out.jobs >= 1, "--jobs must be >= 1");
            }
            "--json" => out.json = true,
            "--out" => out.out = args.next().expect("--out needs a path"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: perf [--scale small|paper|large] [--seed N] [--jobs N] [--json] \
                     [--out PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }
    out
}

struct PerfPoint {
    benchmark: &'static str,
    engine: &'static str,
    tasks: usize,
    makespan: u64,
    events: u64,
    event_queue_peak: usize,
    wall_s: f64,
}

impl PerfPoint {
    fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

fn measure(report: RunReport, engine: &'static str, wall_s: f64) -> PerfPoint {
    PerfPoint {
        benchmark: Box::leak(report.benchmark.clone().into_boxed_str()),
        engine,
        tasks: report.tasks,
        makespan: report.makespan,
        events: report.events,
        event_queue_peak: report.event_queue_peak,
        wall_s,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn to_json(args: &PerfArgs, points: &[PerfPoint], suite_wall_s: f64) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tss-bench-pipeline/v2\",\n");
    s.push_str(&format!("  \"scale\": \"{}\",\n", args.scale.name()));
    s.push_str(&format!("  \"seed\": {},\n", args.seed));
    s.push_str(&format!("  \"jobs\": {},\n", args.jobs));
    s.push_str(&format!("  \"event_core\": \"{}\",\n", tss_sim::engine::EVENT_CORE));
    s.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"engine\": \"{}\", \"tasks\": {}, \
             \"makespan_cycles\": {}, \"events\": {}, \"peak_event_queue\": {}, \
             \"wall_ms\": {:.3}, \"events_per_sec\": {:.0}}}{}\n",
            json_escape(p.benchmark),
            p.engine,
            p.tasks,
            p.makespan,
            p.events,
            p.event_queue_peak,
            p.wall_s * 1e3,
            p.events_per_sec(),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    let events: u64 = points.iter().map(|p| p.events).sum();
    let wall: f64 = points.iter().map(|p| p.wall_s).sum();
    let eps = if wall > 0.0 { events as f64 / wall } else { 0.0 };
    s.push_str(&format!(
        "  \"totals\": {{\"events\": {events}, \"wall_ms\": {:.3}, \
         \"events_per_sec\": {eps:.0}, \"suite_wall_ms\": {:.3}, \"jobs\": {}}}\n",
        wall * 1e3,
        suite_wall_s * 1e3,
        args.jobs,
    ));
    s.push_str("}\n");
    s
}

fn main() {
    let args = parse_args();
    let suite_t0 = Instant::now();
    // One fabric point per benchmark (hardware + software measured
    // back-to-back inside the point); rows come back in catalog order.
    let benches: Vec<Benchmark> = Benchmark::all().to_vec();
    let rows = fabric::sweep(args.jobs, benches, |bench| {
        let trace = Arc::new(bench.trace(args.scale, args.seed));
        // Validation is O(edges) outside the event loop; skip it so the
        // clock sees only the engine + handlers.
        let t0 = Instant::now();
        let hw = SystemBuilder::new().processors(256).skip_validation().run_hardware_arc(&trace);
        let hw_wall = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let sw = SystemBuilder::new().processors(256).skip_validation().run_software_arc(&trace);
        let sw_wall = t1.elapsed().as_secs_f64();
        eprintln!("  [perf] {bench} done (hw {:.0} ms, sw {:.0} ms)", hw_wall * 1e3, sw_wall * 1e3);
        [measure(hw, "hardware", hw_wall), measure(sw, "software", sw_wall)]
    });
    let points: Vec<PerfPoint> = rows.into_iter().flatten().collect();
    let suite_wall_s = suite_t0.elapsed().as_secs_f64();

    let json = to_json(&args, &points, suite_wall_s);
    std::fs::write(&args.out, &json).expect("write BENCH_pipeline.json");

    if args.json {
        print!("{json}");
    } else {
        let mut table = Table::new(
            format!(
                "Simulator throughput ({} scale, seed {}, event core: {})",
                args.scale.name(),
                args.seed,
                tss_sim::engine::EVENT_CORE
            ),
            &["Benchmark", "engine", "tasks", "events", "peakQ", "wall ms", "events/s"],
        );
        for p in &points {
            table.row(vec![
                p.benchmark.to_string(),
                p.engine.to_string(),
                p.tasks.to_string(),
                p.events.to_string(),
                p.event_queue_peak.to_string(),
                fmt_f(p.wall_s * 1e3, 1),
                fmt_f(p.events_per_sec(), 0),
            ]);
        }
        let events: u64 = points.iter().map(|p| p.events).sum();
        let wall: f64 = points.iter().map(|p| p.wall_s).sum();
        table.row(vec![
            "Total".to_string(),
            "both".to_string(),
            String::new(),
            events.to_string(),
            String::new(),
            fmt_f(wall * 1e3, 1),
            fmt_f(if wall > 0.0 { events as f64 / wall } else { 0.0 }, 0),
        ]);
        println!("{}", table.render());
        println!(
            "suite wall: {:.1} ms with --jobs {} (wrote {})",
            suite_wall_s * 1e3,
            args.jobs,
            args.out
        );
    }
}
