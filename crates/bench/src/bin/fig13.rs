//! Regenerates **Figure 13**: average task decode rate over all nine
//! benchmarks vs #TRS and #ORT, with the 128- and 256-processor rate
//! limits.
//!
//! Expected shape (Section VI.A): a single TRS serializes all task-graph
//! operations, so extra ORTs barely help there; multiple TRSs help even
//! with one ORT; 8 TRSs + 2 ORTs beats the 256-processor target.

use tss_bench::HarnessArgs;
use tss_core::experiments::decode_rate_sweep;
use tss_core::report::fmt_f;
use tss_core::Table;
use tss_workloads::Benchmark;

fn main() {
    let args = HarnessArgs::parse();
    let trs_counts = [1usize, 2, 4, 8, 16, 32, 64];
    let ort_counts = [1usize, 2, 4, 8];

    // rate[ort][trs], averaged across benchmarks.
    let mut sums = vec![vec![0.0f64; trs_counts.len()]; ort_counts.len()];
    let mut limit_128 = 0.0f64;
    let mut limit_256 = 0.0f64;
    for bench in Benchmark::all() {
        let trace = bench.trace(args.scale, args.seed);
        limit_128 += trace.decode_rate_limit(128).unwrap() / 9.0;
        limit_256 += trace.decode_rate_limit(256).unwrap() / 9.0;
        let pts = decode_rate_sweep(&trace, &trs_counts, &ort_counts, args.jobs);
        for (j, _) in ort_counts.iter().enumerate() {
            for (i, _) in trs_counts.iter().enumerate() {
                sums[j][i] += pts[j * trs_counts.len() + i].rate_cycles / 9.0;
            }
        }
        eprintln!("  [fig13] {bench} done");
    }

    let mut table = Table::new(
        "Figure 13: average decode rate [cycles/task] over the nine benchmarks",
        &["#TRS", "1 ORT", "2 ORTs", "4 ORTs", "8 ORTs"],
    );
    for (i, &trs) in trs_counts.iter().enumerate() {
        let mut row = vec![trs.to_string()];
        for (j, _) in ort_counts.iter().enumerate() {
            row.push(fmt_f(sums[j][i], 0));
        }
        table.row(row);
    }
    args.emit(&table);
    println!(
        "rate limits (avg of per-benchmark min-runtime/P): 128p = {limit_128:.0} cycles, \
         256p = {limit_256:.0} cycles"
    );
    let chosen = sums[1][3]; // 8 TRS, 2 ORTs
    println!(
        "chosen operating point (8 TRS, 2 ORT): {chosen:.0} cycles/task = {:.0} ns \
         (paper: <60 ns on average)",
        tss_sim::cycles_to_ns(chosen.round() as u64)
    );
}
