//! Regenerates **Figure 14**: speedup (256 processors) as a function of
//! the total ORT capacity — 16 KB to 1 MB — for Cholesky, H264, and the
//! average over all nine benchmarks.
//!
//! Expected shape (Section VI.B): speedups grow with ORT capacity and
//! flatten — around 128 KB for Cholesky, ~512 KB for H264 and for the
//! average — once the window uncovers parallelism as fast as tasks
//! execute.

use tss_bench::HarnessArgs;
use tss_core::experiments::ort_capacity_sweep;
use tss_core::report::fmt_f;
use tss_core::Table;
use tss_workloads::Benchmark;

fn main() {
    let args = HarnessArgs::parse();
    let caps: Vec<u64> =
        [16u64 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20].to_vec();

    let mut avg = vec![0.0f64; caps.len()];
    let mut cholesky_row: Vec<String> = Vec::new();
    let mut h264_row: Vec<String> = Vec::new();
    for bench in Benchmark::all() {
        let trace = bench.trace(args.scale, args.seed);
        let pts = ort_capacity_sweep(&trace, &caps, 256, args.jobs);
        for (i, p) in pts.iter().enumerate() {
            avg[i] += p.speedup / 9.0;
        }
        if bench == Benchmark::Cholesky {
            cholesky_row = pts.iter().map(|p| fmt_f(p.speedup, 1)).collect();
        }
        if bench == Benchmark::H264 {
            h264_row = pts.iter().map(|p| fmt_f(p.speedup, 1)).collect();
        }
        eprintln!("  [fig14] {bench} done");
    }

    let mut table = Table::new(
        "Figure 14: speedup vs total ORT capacity (256 processors)",
        &["ORT capacity", "Cholesky", "H264", "Average"],
    );
    for (i, &cap) in caps.iter().enumerate() {
        table.row(vec![
            format!("{} KB", cap >> 10),
            cholesky_row[i].clone(),
            h264_row[i].clone(),
            fmt_f(avg[i], 1),
        ]);
    }
    args.emit(&table);
}
