//! Ablations of the design choices DESIGN.md calls out:
//!
//! - **renaming off** — WaR/WaW serialize like inout (the paper's
//!   register-renaming analogy is the mechanism under test);
//! - **chaining off** — producers keep full consumer lists and notify
//!   all consumers directly (what Figure 10's transformation avoids);
//! - **eDRAM latency** and **packet cost** sensitivity (Table II values
//!   halved/doubled).

use tss_bench::HarnessArgs;
use tss_core::report::fmt_f;
use tss_core::{SystemBuilder, Table};
use tss_workloads::Benchmark;

fn main() {
    let args = HarnessArgs::parse();
    let benches = [Benchmark::Cholesky, Benchmark::KMeans, Benchmark::H264, Benchmark::Stap];

    let mut table = Table::new(
        "Ablations: speedup at 256 processors (decode rate in cycles/task)",
        &[
            "Benchmark",
            "baseline",
            "no renaming",
            "no chaining",
            "eDRAM 11cy",
            "eDRAM 44cy",
            "packet 8cy",
            "packet 32cy",
        ],
    );

    for bench in benches {
        let trace = bench.trace(args.scale, args.seed);
        let run = |f: &dyn Fn(&mut tss_pipeline::FrontendConfig)| {
            let r = SystemBuilder::new()
                .processors(256)
                .with_frontend(f)
                .skip_validation()
                .run_hardware(&trace);
            format!("{} ({})", fmt_f(r.speedup(), 1), fmt_f(r.decode_rate_cycles, 0))
        };
        table.row(vec![
            bench.name().to_string(),
            run(&|_| {}),
            run(&|f| f.renaming = false),
            run(&|f| f.chaining = false),
            run(&|f| f.timing.edram_latency = 11),
            run(&|f| f.timing.edram_latency = 44),
            run(&|f| f.timing.packet_cost = 8),
            run(&|f| f.timing.packet_cost = 32),
        ]);
        eprintln!("  [ablations] {bench} done");
    }
    args.emit(&table);
}
