//! Ablations of the design choices DESIGN.md calls out:
//!
//! - **renaming off** — WaR/WaW serialize like inout (the paper's
//!   register-renaming analogy is the mechanism under test);
//! - **chaining off** — producers keep full consumer lists and notify
//!   all consumers directly (what Figure 10's transformation avoids);
//! - **eDRAM latency** and **packet cost** sensitivity (Table II values
//!   halved/doubled).

use tss_bench::HarnessArgs;
use tss_core::report::fmt_f;
use tss_core::{SystemBuilder, Table};
use tss_workloads::Benchmark;

fn main() {
    let args = HarnessArgs::parse();
    let benches = [Benchmark::Cholesky, Benchmark::KMeans, Benchmark::H264, Benchmark::Stap];

    let mut table = Table::new(
        "Ablations: speedup at 256 processors (decode rate in cycles/task)",
        &[
            "Benchmark",
            "baseline",
            "no renaming",
            "no chaining",
            "eDRAM 11cy",
            "eDRAM 44cy",
            "packet 8cy",
            "packet 32cy",
        ],
    );

    // The grid is benchmark × ablation: every cell is an independent
    // run, so the fabric fans over the full cross product and the rows
    // are reassembled in declaration order afterwards.
    type Knob = fn(&mut tss_pipeline::FrontendConfig);
    let knobs: [Knob; 7] = [
        |_| {},
        |f| f.renaming = false,
        |f| f.chaining = false,
        |f| f.timing.edram_latency = 11,
        |f| f.timing.edram_latency = 44,
        |f| f.timing.packet_cost = 8,
        |f| f.timing.packet_cost = 32,
    ];
    let mut points = Vec::new();
    for &bench in &benches {
        let trace = std::sync::Arc::new(bench.trace(args.scale, args.seed));
        for knob in 0..7usize {
            points.push((trace.clone(), knob));
        }
    }
    let cells = tss_core::fabric::sweep(args.jobs, points, |(trace, knob)| {
        let r = SystemBuilder::new()
            .processors(256)
            .with_frontend(|f| knobs[knob](f))
            .skip_validation()
            .run_hardware_arc(&trace);
        format!("{} ({})", fmt_f(r.speedup(), 1), fmt_f(r.decode_rate_cycles, 0))
    });
    for (bi, bench) in benches.iter().enumerate() {
        let mut row = vec![bench.name().to_string()];
        row.extend(cells[bi * 7..(bi + 1) * 7].iter().cloned());
        table.row(row);
        eprintln!("  [ablations] {bench} done");
    }
    args.emit(&table);
}
