//! Regenerates **Figure 12**: task decode rate (cycles/task) for
//! Cholesky and H264 as a function of the number of TRSs (1–64) and
//! ORTs (1, 2, 4, 8).
//!
//! Expected shape (Section VI.A): rates fall as TRSs are added; extra
//! ORTs help H264 (>6 operands/task) more than Cholesky (≤3); with 4
//! TRSs and 4 ORTs Cholesky decodes in under ~185 cycles (58 ns).

use tss_bench::HarnessArgs;
use tss_core::experiments::decode_rate_sweep;
use tss_core::report::fmt_f;
use tss_core::Table;
use tss_workloads::Benchmark;

fn main() {
    let args = HarnessArgs::parse();
    let trs_counts = [1usize, 2, 4, 8, 16, 32, 64];
    let ort_counts = [1usize, 2, 4, 8];

    for bench in [Benchmark::Cholesky, Benchmark::H264] {
        let trace = bench.trace(args.scale, args.seed);
        let points = decode_rate_sweep(&trace, &trs_counts, &ort_counts, args.jobs);
        let mut table = Table::new(
            format!("Figure 12: {} decode rate [cycles/task] ({} tasks)", bench, trace.len()),
            &["#TRS", "1 ORT", "2 ORTs", "4 ORTs", "8 ORTs"],
        );
        for (i, &trs) in trs_counts.iter().enumerate() {
            let mut row = vec![trs.to_string()];
            for (j, _) in ort_counts.iter().enumerate() {
                let p = &points[j * trs_counts.len() + i];
                debug_assert_eq!(p.num_trs, trs);
                row.push(fmt_f(p.rate_cycles, 0));
            }
            table.row(row);
        }
        args.emit(&table);
    }
}
