//! Regenerates **Table I**: per-benchmark task information (average data
//! size, min/median/average runtimes, 256-way decode-rate limit),
//! measured on the generated traces, next to the paper's values.

use tss_bench::HarnessArgs;
use tss_core::report::fmt_f;
use tss_core::Table;

fn main() {
    let args = HarnessArgs::parse();
    let mut table = Table::new(
        "Table I: benchmark task information (measured | paper)",
        &[
            "Name",
            "Data KB",
            "(paper)",
            "Min us",
            "(paper)",
            "Med us",
            "(paper)",
            "Avg us",
            "(paper)",
            "Rate ns/task",
            "(paper)",
        ],
    );
    let rows = args.sweep_benchmarks(|b, trace| {
        let (p_data, p_min, p_med, p_avg, p_rate) = b.table1_reference();
        let rate_ns = tss_sim::cycles_to_ns(trace.decode_rate_limit(256).unwrap() as u64);
        let row = vec![
            b.name().to_string(),
            fmt_f(trace.avg_data_bytes() / 1024.0, 0),
            fmt_f(p_data, 0),
            fmt_f(trace.min_runtime().unwrap() as f64 / 3200.0, 0),
            fmt_f(p_min, 0),
            fmt_f(trace.median_runtime().unwrap() as f64 / 3200.0, 0),
            fmt_f(p_med, 0),
            fmt_f(trace.avg_runtime() / 3200.0, 0),
            fmt_f(p_avg, 0),
            fmt_f(rate_ns, 0),
            fmt_f(p_rate, 0),
        ];
        (row, rate_ns)
    });
    let mut rate_sum = 0.0;
    for (row, rate_ns) in rows {
        rate_sum += rate_ns;
        table.row(row);
    }
    args.emit(&table);
    println!(
        "Average measured decode-rate limit: {:.0} ns/task (paper: 58 ns — \
         'a pipeline targeting a 256-way CMP should maintain ... 58 ns/task').",
        rate_sum / 9.0
    );
}
