//! Regenerates the **Section II** motivation:
//!
//! 1. the decode-rate rule `R = T/P` (Figure 3): target decode rates for
//!    32–256 processors against the software decoder's ~700 ns;
//! 2. the L1 knee: task runtime and stall fraction vs working-set size
//!    on the modeled cache hierarchy (64 KB L1) — why the paper insists
//!    on L1-sized blocks instead of longer tasks.

use tss_bench::HarnessArgs;
use tss_core::report::fmt_f;
use tss_core::Table;
use tss_mem::TaskRuntimeModel;

fn main() {
    let args = HarnessArgs::parse();

    // ------------------------------------------------ decode-rate rule
    let mut rule = Table::new(
        "Section II / Figure 3: target decode rate R = T/P [ns/task]",
        &["Benchmark", "P=32", "P=64", "P=128", "P=256"],
    );
    let mut avg = [0.0f64; 4];
    // One fabric point per benchmark (trace generation is the cost
    // here); the averages fold afterwards in catalog order.
    let rows = args.sweep_benchmarks(|bench, trace| {
        let mut row = vec![bench.name().to_string()];
        let mut rates = [0.0f64; 4];
        for (i, p) in [32usize, 64, 128, 256].iter().enumerate() {
            let ns = tss_sim::cycles_to_ns(trace.decode_rate_limit(*p).unwrap() as u64);
            rates[i] = ns;
            row.push(fmt_f(ns, 0));
        }
        (row, rates)
    });
    for (row, rates) in rows {
        for (a, r) in avg.iter_mut().zip(rates) {
            *a += r / 9.0;
        }
        rule.row(row);
    }
    let mut row = vec!["Average".to_string()];
    for v in avg {
        row.push(fmt_f(v, 0));
    }
    rule.row(row);
    args.emit(&rule);
    println!(
        "software decoder: ~700 ns/task (x86), ~2500 ns (Cell BE) — more than an order of\n\
         magnitude slower than the 256-way target ({:.0} ns avg).\n",
        avg[3]
    );

    // ------------------------------------------------------ the L1 knee
    let model = TaskRuntimeModel::default();
    let mut knee = Table::new(
        "Section II: task runtime vs working-set size (64 KB L1)",
        &["block size", "runtime (us)", "stall fraction"],
    );
    for kb in [8u64, 16, 32, 48, 64, 96, 128, 256, 512] {
        let (rt, _stalls) = model.estimate(kb << 10);
        knee.row(vec![
            format!("{kb} KB"),
            fmt_f(tss_sim::cycles_to_us(rt), 1),
            fmt_f(model.stall_fraction(kb << 10), 2),
        ]);
    }
    args.emit(&knee);
    println!(
        "past the 64 KB L1 the stall fraction jumps: longer tasks need bigger datasets,\n\
         and \"performance will degrade\" — hence L1-sized tasks + fast decode."
    );
}
