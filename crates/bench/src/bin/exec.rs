//! Native-executor harness: replay all nine Table-I benchmarks on real
//! threads (`tss-exec`), oracle-validate every completion log, and
//! record decode + replay throughput in `BENCH_exec.json` (DESIGN.md
//! §7).
//!
//! Two numbers per benchmark:
//!
//! - **decode** — the software renamer's one-pass, single-thread decode
//!   rate in ns/task (best of [`DECODE_REPS`] passes). This is the
//!   native analog of the paper's Section-II measurement that a
//!   software task decoder costs ~700 ns/task — the ceiling the whole
//!   hardware pipeline exists to break. The cross-check printed at the
//!   bottom (and recorded in EXPERIMENTS.md) is the fig16 story at
//!   native speed: how much decode headroom a lean software frontend
//!   actually has.
//! - **replay** — end-to-end threaded replay throughput in tasks/sec
//!   with the selected payload, plus steals and per-worker utilization.
//!
//! Every replay's completion log is checked against the
//! `DepGraph` oracle; any violation exits nonzero (CI gates on this,
//! not on timing).
//!
//! Flags: `--scale small|paper|large`, `--threads N`, `--payload
//! noop|spin|memcpy`, `--spin-scale F`, `--seed N`, `--no-renaming`,
//! `--json`, `--out PATH`.

use std::time::{Duration, Instant};

use tss_core::report::fmt_f;
use tss_core::Table;
use tss_exec::{ExecConfig, ExecReport, Executor, PayloadMode, Renamer};
use tss_trace::DepGraph;
use tss_workloads::{Benchmark, Scale};

/// The paper's software-decoder baseline (Section II): ~700 ns/task.
const PAPER_SOFTWARE_DECODE_NS: f64 = 700.0;

/// Decode passes per benchmark; the best is reported (first pass pays
/// page faults and cache warmup).
const DECODE_REPS: usize = 3;

struct Args {
    scale: Scale,
    threads: usize,
    payload: PayloadMode,
    seed: u64,
    renaming: bool,
    json: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut out = Args {
        scale: Scale::Small,
        threads: 4,
        payload: PayloadMode::Noop,
        seed: 42,
        renaming: true,
        json: false,
        out: "BENCH_exec.json".into(),
    };
    let mut spin_scale = 1.0f64;
    let mut payload_name = String::from("noop");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                out.scale = Scale::parse(&v)
                    .unwrap_or_else(|| panic!("unknown scale '{v}' (small|paper|large)"));
            }
            "--threads" => {
                out.threads = args
                    .next()
                    .expect("--threads needs a value")
                    .parse()
                    .expect("--threads must be a positive integer");
                assert!(out.threads >= 1, "--threads must be at least 1");
            }
            "--payload" => {
                payload_name = args.next().expect("--payload needs a value");
            }
            "--spin-scale" => {
                spin_scale = args
                    .next()
                    .expect("--spin-scale needs a value")
                    .parse()
                    .expect("--spin-scale must be a float");
            }
            "--seed" => {
                out.seed = args
                    .next()
                    .expect("--seed needs a value")
                    .parse()
                    .expect("--seed must be an integer");
            }
            "--no-renaming" => out.renaming = false,
            "--json" => out.json = true,
            "--out" => out.out = args.next().expect("--out needs a path"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: exec [--scale small|paper|large] [--threads N] \
                     [--payload noop|spin|memcpy] [--spin-scale F] [--seed N] \
                     [--no-renaming] [--json] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag '{other}' (try --help)"),
        }
    }
    out.payload = PayloadMode::parse(&payload_name, spin_scale)
        .unwrap_or_else(|| panic!("unknown payload '{payload_name}' (noop|spin|memcpy)"));
    out
}

struct Point {
    report: ExecReport,
    decode_best: Duration,
}

impl Point {
    fn decode_ns_per_task(&self) -> f64 {
        if self.report.tasks == 0 {
            return 0.0;
        }
        self.decode_best.as_nanos() as f64 / self.report.tasks as f64
    }

    fn decode_tasks_per_sec(&self) -> f64 {
        let ns = self.decode_ns_per_task();
        if ns > 0.0 {
            1e9 / ns
        } else {
            0.0
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Aggregate decode stats over all benchmarks: `(total tasks, ns/task,
/// tasks/sec, headroom vs the paper's software decoder)`. One helper so
/// the JSON artifact and the printed summary can never disagree.
fn aggregate_decode(points: &[Point]) -> (usize, f64, f64, f64) {
    let tasks: usize = points.iter().map(|p| p.report.tasks).sum();
    let decode_wall: f64 = points.iter().map(|p| p.decode_best.as_secs_f64()).sum();
    let agg_ns = if tasks > 0 { decode_wall * 1e9 / tasks as f64 } else { 0.0 };
    if agg_ns > 0.0 {
        (tasks, agg_ns, 1e9 / agg_ns, PAPER_SOFTWARE_DECODE_NS / agg_ns)
    } else {
        (tasks, 0.0, 0.0, 0.0)
    }
}

fn to_json(args: &Args, points: &[Point]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tss-bench-exec/v1\",\n");
    s.push_str(&format!("  \"scale\": \"{}\",\n", args.scale.name()));
    s.push_str(&format!("  \"threads\": {},\n", args.threads));
    s.push_str(&format!("  \"payload\": \"{}\",\n", args.payload.name()));
    s.push_str(&format!("  \"seed\": {},\n", args.seed));
    s.push_str(&format!("  \"renaming\": {},\n", args.renaming));
    s.push_str(&format!("  \"paper_software_decoder_ns_per_task\": {PAPER_SOFTWARE_DECODE_NS},\n"));
    s.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let r = &p.report;
        let workers: Vec<String> = (0..r.workers.len())
            .map(|w| {
                format!(
                    "{{\"executed\": {}, \"steals\": {}, \"busy_frac\": {:.4}}}",
                    r.workers[w].executed,
                    r.workers[w].steals,
                    r.utilization(w)
                )
            })
            .collect();
        s.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"tasks\": {}, \"enforced_edges\": {}, \
             \"decode_ns_per_task\": {:.1}, \"decode_tasks_per_sec\": {:.0}, \
             \"exec_wall_ms\": {:.3}, \"exec_tasks_per_sec\": {:.0}, \"steals\": {}, \
             \"validated\": {}, \"workers\": [{}]}}{}\n",
            json_escape(&r.benchmark),
            r.tasks,
            r.rename.enforced_edges,
            p.decode_ns_per_task(),
            p.decode_tasks_per_sec(),
            r.exec_wall.as_secs_f64() * 1e3,
            r.tasks_per_sec(),
            r.total_steals(),
            r.validated,
            workers.join(", "),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    let (tasks, agg_ns, per_sec, headroom) = aggregate_decode(points);
    s.push_str(&format!(
        "  \"totals\": {{\"tasks\": {tasks}, \"decode_ns_per_task\": {agg_ns:.1}, \
         \"decode_tasks_per_sec\": {per_sec:.0}, \"decode_headroom_vs_paper\": {headroom:.1}}}\n",
    ));
    s.push_str("}\n");
    s
}

fn main() {
    let args = parse_args();
    let mut points = Vec::with_capacity(9);
    for bench in Benchmark::all() {
        let trace = bench.trace(args.scale, args.seed);

        // Decode microbench: the renamer alone, single pass, best of N.
        let renamer = Renamer::new().renaming(args.renaming);
        let mut decode_best = Duration::MAX;
        for _ in 0..DECODE_REPS {
            let t0 = Instant::now();
            let g = renamer.decode(&trace);
            let dt = t0.elapsed();
            std::hint::black_box(g.len());
            decode_best = decode_best.min(dt);
        }

        // Full replay: validation is part of the run contract — the
        // executor panics on an oracle violation, but the harness also
        // checks explicitly so a failure exits with a clear message.
        let cfg = ExecConfig {
            threads: args.threads,
            payload: args.payload,
            renaming: args.renaming,
            seed: args.seed,
            validate: false, // the harness validates below, outside the timed run
        };
        let report = Executor::new(cfg).run(&trace);
        let oracle = DepGraph::from_trace(&trace);
        let mut report = report;
        if let Err(v) = oracle.validate_order(&report.order) {
            eprintln!("[exec] {bench}: ORACLE VIOLATION: {v}");
            std::process::exit(1);
        }
        report.validated = true;
        eprintln!(
            "  [exec] {bench}: {} tasks, decode {:.0} ns/task, replay {:.2} ms ({} steals) — ok",
            report.tasks,
            decode_best.as_nanos() as f64 / report.tasks.max(1) as f64,
            report.exec_wall.as_secs_f64() * 1e3,
            report.total_steals(),
        );
        points.push(Point { report, decode_best });
    }

    let json = to_json(&args, &points);
    std::fs::write(&args.out, &json).expect("write BENCH_exec.json");

    if args.json {
        print!("{json}");
    } else {
        let mut table = Table::new(
            format!(
                "Native executor ({} scale, {} threads, {} payload, seed {})",
                args.scale.name(),
                args.threads,
                args.payload.name(),
                args.seed
            ),
            &[
                "Benchmark",
                "tasks",
                "edges",
                "decode ns/t",
                "decode Mt/s",
                "replay ms",
                "replay t/s",
                "steals",
                "valid",
            ],
        );
        for p in &points {
            let r = &p.report;
            table.row(vec![
                r.benchmark.clone(),
                r.tasks.to_string(),
                r.rename.enforced_edges.to_string(),
                fmt_f(p.decode_ns_per_task(), 0),
                fmt_f(p.decode_tasks_per_sec() / 1e6, 2),
                fmt_f(r.exec_wall.as_secs_f64() * 1e3, 2),
                fmt_f(r.tasks_per_sec(), 0),
                r.total_steals().to_string(),
                if r.validated { "ok".into() } else { "FAIL".into() },
            ]);
        }
        println!("{}", table.render());
        let (_, agg_ns, per_sec, headroom) = aggregate_decode(&points);
        println!(
            "Aggregate native decode: {agg_ns:.0} ns/task ({:.2}M tasks/s) vs the paper's \
             ~{PAPER_SOFTWARE_DECODE_NS:.0} ns/task software decoder — {headroom:.1}x headroom.",
            per_sec / 1e6,
        );
        println!("(wrote {})", args.out);
    }
}
