//! Native-executor harness: replay all nine Table-I benchmarks on real
//! threads (`tss-exec`), oracle-validate every completion log, and
//! record decode + replay + pipelined-streaming throughput in
//! `BENCH_exec.json` (DESIGN.md §7–§8).
//!
//! Three numbers per benchmark:
//!
//! - **decode** — the software renamer's one-pass, single-thread decode
//!   rate in ns/task (best of [`DECODE_REPS`] passes). This is the
//!   native analog of the paper's Section-II measurement that a
//!   software task decoder costs ~700 ns/task — the ceiling the whole
//!   hardware pipeline exists to break.
//! - **replay** — two-phase (decode first, then execute) threaded
//!   replay throughput in tasks/sec with the selected payload: the
//!   scheduler-only number, comparable across PRs.
//! - **stream** — the pipelined end-to-end run: decode shard threads
//!   rename window by window *while* workers execute earlier windows.
//!   Reported as end-to-end tasks/sec plus `decode_overlap_pct` (share
//!   of the run during which decode was still streaming — the paper's
//!   "decode must not serialize the backend" claim, at native speed).
//!
//! Every replay's completion log is checked against the `DepGraph`
//! oracle; any violation exits nonzero (CI gates on this, not timing).
//! Chaos runs (DESIGN.md §11) additionally gate on the accounting
//! identity `completed + failed + poisoned = tasks` and on the replay
//! and streamed runs agreeing on the (seed-deterministic) failure sets.
//!
//! Flags: `--scale small|paper|large`, `--threads N`, `--payload
//! noop|spin|memcpy|faulty|mixed`, `--policy lifo|fifo|cost|locality`
//! (DESIGN.md §13; `--classes N`/`--domains N` shape the locality
//! policy only — naming them with any other policy exits 2),
//! `--spin-scale F`, `--seed N`, `--window N`,
//! `--decode-shards N`, `--no-renaming`, `--json`, `--out PATH`, plus
//! the failure domain: `--fault-rate F` (0..=1), `--fault-seed N`,
//! `--failure-policy fail-fast|retry|quarantine`, `--retry-max N`,
//! `--retry-backoff-ms F`, `--task-deadline-ms N`, `--run-deadline-ms
//! N`, `--kill-worker W`. Bad flag values *and* bad flag combinations
//! print a clear error naming the flags and exit 2 (they never panic);
//! a structured run failure ([`ExecError`]) also exits 2.
//!
//! Observability (DESIGN.md §12, needs a `--features obs` build —
//! rejected up front otherwise): `--trace-out PATH` writes the
//! streaming runs as Chrome `trace_event` JSON (one process per
//! benchmark, one track per worker + decode shard); `--histogram`
//! prints the sampled per-task latency quantiles. An obs build also
//! adds `latency_p50/p99/p999_ns` and `queue_p50/p99/p999_ns` (from
//! the replay runs) to every JSON row and to `totals`.

use std::time::{Duration, Instant};

use tss_core::report::{fmt_count_pct, fmt_f};
use tss_core::Table;
use tss_exec::fault::install_quiet_hook;
use tss_exec::{
    ExecConfig, ExecError, ExecReport, Executor, FailurePolicy, PayloadMode, Renamer, SchedKind,
    SCHED_MENU,
};
use tss_trace::DepGraph;
use tss_workloads::{Benchmark, Scale};

/// The paper's software-decoder baseline (Section II): ~700 ns/task.
const PAPER_SOFTWARE_DECODE_NS: f64 = 700.0;

/// Decode passes per benchmark; the best is reported (first pass pays
/// page faults and cache warmup).
const DECODE_REPS: usize = 3;

struct Args {
    scale: Scale,
    threads: usize,
    payload: PayloadMode,
    sched: SchedKind,
    classes: usize,
    domains: usize,
    seed: u64,
    window: usize,
    decode_shards: usize,
    renaming: bool,
    json: bool,
    out: String,
    // --- failure domain (DESIGN.md §11) ---
    policy: FailurePolicy,
    fault_rate_ppm: u32,
    fault_seed: u64,
    task_deadline: Option<Duration>,
    run_deadline: Option<Duration>,
    kill_worker: Option<usize>,
    // --- observability (DESIGN.md §12) ---
    trace_out: Option<String>,
    histogram: bool,
}

/// CLI contract: bad input is a user error, not a bug — report it
/// plainly and exit nonzero (the CLI-error tests pin this).
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2);
}

fn want(value: Option<String>, flag: &str) -> String {
    value.unwrap_or_else(|| fail(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(raw: &str, what: &str) -> T {
    raw.parse().unwrap_or_else(|_| fail(format!("{what} must be a number, got '{raw}'")))
}

fn parse_args() -> Args {
    let mut out = Args {
        scale: Scale::Small,
        threads: 4,
        payload: PayloadMode::Noop,
        sched: SchedKind::Lifo,
        classes: 2,
        domains: 1,
        seed: 42,
        window: 1024,
        decode_shards: 1,
        renaming: true,
        json: false,
        out: "BENCH_exec.json".into(),
        policy: FailurePolicy::FailFast,
        fault_rate_ppm: 0,
        fault_seed: 7,
        task_deadline: None,
        run_deadline: None,
        kill_worker: None,
        trace_out: None,
        histogram: false,
    };
    let mut spin_scale = 1.0f64;
    let mut payload_name = String::from("noop");
    let mut classes_flag: Option<usize> = None;
    let mut domains_flag: Option<usize> = None;
    let mut fault_rate: Option<f64> = None;
    let mut policy_name: Option<String> = None;
    let mut retry_max: Option<u32> = None;
    let mut retry_backoff_ms = 1.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = want(args.next(), "--scale");
                out.scale = Scale::parse(&v)
                    .unwrap_or_else(|| fail(format!("unknown scale '{v}' (small|paper|large)")));
            }
            "--threads" => {
                out.threads = parse_num(&want(args.next(), "--threads"), "--threads");
                if out.threads == 0 {
                    fail("--threads must be at least 1");
                }
            }
            "--window" => {
                out.window = parse_num(&want(args.next(), "--window"), "--window");
                if out.window == 0 {
                    fail("--window must be at least 1 task");
                }
            }
            "--decode-shards" => {
                out.decode_shards =
                    parse_num(&want(args.next(), "--decode-shards"), "--decode-shards");
                if out.decode_shards == 0 {
                    fail("--decode-shards must be at least 1");
                }
            }
            "--payload" => payload_name = want(args.next(), "--payload"),
            "--policy" => {
                let v = want(args.next(), "--policy");
                out.sched = SchedKind::parse(&v)
                    .unwrap_or_else(|| fail(format!("unknown policy '{v}' ({SCHED_MENU})")));
            }
            "--classes" => {
                let n: usize = parse_num(&want(args.next(), "--classes"), "--classes");
                if n == 0 {
                    fail("--classes must be at least 1");
                }
                classes_flag = Some(n);
            }
            "--domains" => {
                let n: usize = parse_num(&want(args.next(), "--domains"), "--domains");
                if n == 0 {
                    fail("--domains must be at least 1");
                }
                domains_flag = Some(n);
            }
            "--spin-scale" => {
                spin_scale = parse_num(&want(args.next(), "--spin-scale"), "--spin-scale");
            }
            "--seed" => out.seed = parse_num(&want(args.next(), "--seed"), "--seed"),
            "--no-renaming" => out.renaming = false,
            "--json" => out.json = true,
            "--out" => out.out = want(args.next(), "--out"),
            "--fault-rate" => {
                let f: f64 = parse_num(&want(args.next(), "--fault-rate"), "--fault-rate");
                if !(0.0..=1.0).contains(&f) {
                    fail("--fault-rate must be a probability in 0..=1");
                }
                fault_rate = Some(f);
            }
            "--fault-seed" => {
                out.fault_seed = parse_num(&want(args.next(), "--fault-seed"), "--fault-seed");
            }
            "--failure-policy" => policy_name = Some(want(args.next(), "--failure-policy")),
            "--retry-max" => {
                let n: u32 = parse_num(&want(args.next(), "--retry-max"), "--retry-max");
                if n == 0 {
                    fail("--retry-max must be at least 1 attempt");
                }
                retry_max = Some(n);
            }
            "--retry-backoff-ms" => {
                retry_backoff_ms =
                    parse_num(&want(args.next(), "--retry-backoff-ms"), "--retry-backoff-ms");
                if retry_backoff_ms < 0.0 {
                    fail("--retry-backoff-ms must be non-negative");
                }
            }
            "--task-deadline-ms" => {
                let ms: u64 =
                    parse_num(&want(args.next(), "--task-deadline-ms"), "--task-deadline-ms");
                if ms == 0 {
                    fail("--task-deadline-ms must be at least 1 ms (0 would fail every task)");
                }
                out.task_deadline = Some(Duration::from_millis(ms));
            }
            "--run-deadline-ms" => {
                let ms: u64 =
                    parse_num(&want(args.next(), "--run-deadline-ms"), "--run-deadline-ms");
                if ms == 0 {
                    fail("--run-deadline-ms must be at least 1 ms (0 would fail every run)");
                }
                out.run_deadline = Some(Duration::from_millis(ms));
            }
            "--kill-worker" => {
                out.kill_worker =
                    Some(parse_num(&want(args.next(), "--kill-worker"), "--kill-worker"));
            }
            "--trace-out" => out.trace_out = Some(want(args.next(), "--trace-out")),
            "--histogram" => out.histogram = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: exec [--scale small|paper|large] [--threads N] \
                     [--payload noop|spin|memcpy|faulty|mixed] [--spin-scale F] [--seed N] \
                     [--policy {SCHED_MENU}] [--classes N --domains N (locality only)] \
                     [--window N] [--decode-shards N] [--no-renaming] [--json] [--out PATH] \
                     [--fault-rate F --failure-policy fail-fast|retry|quarantine] \
                     [--fault-seed N] [--retry-max N] [--retry-backoff-ms F] \
                     [--task-deadline-ms N] [--run-deadline-ms N] [--kill-worker W] \
                     [--trace-out PATH] [--histogram]"
                );
                std::process::exit(0);
            }
            other => fail(format!("unknown flag '{other}'")),
        }
    }
    out.payload = PayloadMode::parse(&payload_name, spin_scale).unwrap_or_else(|| {
        fail(format!("unknown payload '{payload_name}' (noop|spin|memcpy|faulty|mixed)"))
    });

    // Worker-class / affinity-domain shaping only means anything to the
    // locality policy; silently ignoring the flags elsewhere would make
    // an ablation sweep lie about what it ran.
    if !matches!(out.sched, SchedKind::Locality) {
        if let Some(n) = classes_flag {
            fail(format!(
                "--classes {n} only applies to --policy locality, not --policy {}",
                out.sched.name()
            ));
        }
        if let Some(n) = domains_flag {
            fail(format!(
                "--domains {n} only applies to --policy locality, not --policy {}",
                out.sched.name()
            ));
        }
    }
    if let Some(n) = domains_flag {
        if n > out.threads {
            fail(format!("--domains {n} cannot exceed --threads {}", out.threads));
        }
    }
    out.classes = classes_flag.unwrap_or(out.classes);
    out.domains = domains_flag.unwrap_or(out.domains);

    // Flag-combination validation (all errors name the flags involved;
    // the CLI tests pin these). Injection must be paired with an
    // explicit policy: silently defaulting to fail-fast would turn a
    // chaos run into a guaranteed exit-2.
    let injecting =
        fault_rate.is_some_and(|f| f > 0.0) || matches!(out.payload, PayloadMode::Faulty { .. });
    if fault_rate.is_some()
        && !matches!(out.payload, PayloadMode::Noop | PayloadMode::Faulty { .. })
    {
        fail(format!("--fault-rate needs --payload noop or faulty, not {}", out.payload.name()));
    }
    if injecting && policy_name.is_none() {
        fail("--fault-rate / --payload faulty needs --failure-policy fail-fast|retry|quarantine");
    }
    if let Some(name) = &policy_name {
        let backoff = Duration::from_secs_f64(retry_backoff_ms / 1e3);
        out.policy =
            FailurePolicy::parse(name, retry_max.unwrap_or(3), backoff).unwrap_or_else(|| {
                fail(format!("unknown --failure-policy '{name}' (fail-fast|retry|quarantine)"))
            });
        if retry_max.is_some() && !matches!(out.policy, FailurePolicy::Retry { .. }) {
            fail(format!("--retry-max only applies to --failure-policy retry, not {name}"));
        }
    } else if retry_max.is_some() {
        fail("--retry-max needs --failure-policy retry");
    }
    if let Some(k) = out.kill_worker {
        if out.threads < 2 {
            fail("--kill-worker needs --threads of at least 2 (a lone dead worker cannot finish)");
        }
        if k >= out.threads {
            fail(format!("--kill-worker {k} is out of range for --threads {}", out.threads));
        }
    }
    if let Some(rate) = fault_rate {
        out.fault_rate_ppm = (rate * 1e6).round() as u32;
    } else if let PayloadMode::Faulty { rate_ppm, .. } = out.payload {
        out.fault_rate_ppm = rate_ppm;
    }
    if out.fault_rate_ppm > 0 {
        out.payload = PayloadMode::Faulty { rate_ppm: out.fault_rate_ppm, seed: out.fault_seed };
    }
    // Observability flags need a recording build: in the default
    // NoopSink build there is nothing to export, so failing up front
    // beats writing an empty trace file (the CLI tests pin exit 2).
    if !tss_exec::obs_enabled() {
        if out.trace_out.is_some() {
            fail("--trace-out needs a build with the obs feature (cargo ... --features obs)");
        }
        if out.histogram {
            fail("--histogram needs a build with the obs feature (cargo ... --features obs)");
        }
    }
    out
}

struct Point {
    /// Two-phase replay (decode excluded from `exec_wall`).
    replay: ExecReport,
    /// Pipelined streaming run (decode inside `exec_wall`).
    stream: ExecReport,
    decode_best: Duration,
}

impl Point {
    fn decode_ns_per_task(&self) -> f64 {
        if self.replay.tasks == 0 {
            return 0.0;
        }
        self.decode_best.as_nanos() as f64 / self.replay.tasks as f64
    }

    fn decode_tasks_per_sec(&self) -> f64 {
        let ns = self.decode_ns_per_task();
        if ns > 0.0 {
            1e9 / ns
        } else {
            0.0
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Hardware threads actually available to this process. Stamped into
/// every artifact (top level *and* totals) so nobody reads a
/// `--threads 32` sweep row from a 1-core CI container as a scaling
/// result again (EXPERIMENTS.md carries the full mea culpa).
fn hw_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The six latency fields for one report's obs data, ready to splice
/// into a JSON object — empty in a NoopSink build (`bench_check`'s
/// latency layer is presence-gated on exactly this).
fn latency_json(obs: Option<&tss_exec::obs::ObsReport>) -> String {
    match obs {
        Some(o) => format!(
            "\"latency_p50_ns\": {}, \"latency_p99_ns\": {}, \"latency_p999_ns\": {}, \
             \"queue_p50_ns\": {}, \"queue_p99_ns\": {}, \"queue_p999_ns\": {}, ",
            o.exec_latency.p50(),
            o.exec_latency.p99(),
            o.exec_latency.p999(),
            o.queue_wait.p50(),
            o.queue_wait.p99(),
            o.queue_wait.p999(),
        ),
        None => String::new(),
    }
}

/// Merges every replay run's sampled histograms for the totals row.
/// `None` in a NoopSink build.
fn merged_obs(points: &[Point]) -> Option<tss_exec::obs::ObsReport> {
    let mut merged: Option<tss_exec::obs::ObsReport> = None;
    for p in points {
        let Some(o) = &p.replay.obs else { continue };
        match &mut merged {
            Some(m) => {
                m.exec_latency.merge(&o.exec_latency);
                m.queue_wait.merge(&o.queue_wait);
            }
            None => {
                merged = Some(tss_exec::obs::ObsReport {
                    exec_latency: o.exec_latency.clone(),
                    queue_wait: o.queue_wait.clone(),
                    tracks: Vec::new(),
                    gauges: o.gauges,
                    sample_every: o.sample_every,
                });
            }
        }
    }
    merged
}

/// Aggregate decode stats over all benchmarks: `(total tasks, ns/task,
/// tasks/sec, headroom vs the paper's software decoder)`. One helper so
/// the JSON artifact and the printed summary can never disagree.
fn aggregate_decode(points: &[Point]) -> (usize, f64, f64, f64) {
    let tasks: usize = points.iter().map(|p| p.replay.tasks).sum();
    let decode_wall: f64 = points.iter().map(|p| p.decode_best.as_secs_f64()).sum();
    let agg_ns = if tasks > 0 { decode_wall * 1e9 / tasks as f64 } else { 0.0 };
    if agg_ns > 0.0 {
        (tasks, agg_ns, 1e9 / agg_ns, PAPER_SOFTWARE_DECODE_NS / agg_ns)
    } else {
        (tasks, 0.0, 0.0, 0.0)
    }
}

/// Aggregate throughput over a wall-time extractor: `sum(tasks) /
/// sum(wall)` — the headline number EXPERIMENTS.md tracks across PRs.
fn aggregate_rate(points: &[Point], wall: impl Fn(&Point) -> f64) -> f64 {
    let tasks: usize = points.iter().map(|p| p.replay.tasks).sum();
    let total: f64 = points.iter().map(wall).sum();
    if total > 0.0 {
        tasks as f64 / total
    } else {
        0.0
    }
}

fn to_json(args: &Args, points: &[Point]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tss-bench-exec/v5\",\n");
    s.push_str(&format!("  \"scale\": \"{}\",\n", args.scale.name()));
    s.push_str(&format!("  \"threads\": {},\n", args.threads));
    s.push_str(&format!("  \"hw_threads\": {},\n", hw_threads()));
    s.push_str(&format!("  \"payload\": \"{}\",\n", args.payload.name()));
    s.push_str(&format!("  \"policy\": \"{}\",\n", args.sched.name()));
    s.push_str(&format!("  \"classes\": {},\n", args.classes));
    s.push_str(&format!("  \"domains\": {},\n", args.domains));
    s.push_str(&format!("  \"seed\": {},\n", args.seed));
    s.push_str(&format!("  \"window\": {},\n", args.window));
    s.push_str(&format!("  \"decode_shards\": {},\n", args.decode_shards));
    s.push_str(&format!("  \"renaming\": {},\n", args.renaming));
    s.push_str(&format!("  \"failure_policy\": \"{}\",\n", args.policy.name()));
    s.push_str(&format!("  \"fault_rate_ppm\": {},\n", args.fault_rate_ppm));
    s.push_str(&format!("  \"fault_seed\": {},\n", args.fault_seed));
    s.push_str(&format!("  \"paper_software_decoder_ns_per_task\": {PAPER_SOFTWARE_DECODE_NS},\n"));
    s.push_str("  \"results\": [\n");
    for (i, p) in points.iter().enumerate() {
        let r = &p.replay;
        let workers: Vec<String> = (0..r.workers.len())
            .map(|w| {
                format!(
                    "{{\"executed\": {}, \"steals\": {}, \"busy_frac\": {:.4}}}",
                    r.workers[w].executed,
                    r.workers[w].steals,
                    r.utilization(w)
                )
            })
            .collect();
        s.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"tasks\": {}, \"enforced_edges\": {}, \
             \"decode_ns_per_task\": {:.1}, \"decode_tasks_per_sec\": {:.0}, \
             \"exec_wall_ms\": {:.3}, \"exec_tasks_per_sec\": {:.0}, \"steals\": {}, \
             \"cross_steals\": {}, \
             \"stream_wall_ms\": {:.3}, \"stream_tasks_per_sec\": {:.0}, \
             \"decode_overlap_pct\": {:.1}, {}\
             \"failed\": {}, \"poisoned\": {}, \"retried_ok\": {}, \"workers_lost\": {}, \
             \"validated\": {}, \"workers\": [{}]}}{}\n",
            json_escape(&r.benchmark),
            r.tasks,
            r.rename.enforced_edges,
            p.decode_ns_per_task(),
            p.decode_tasks_per_sec(),
            r.exec_wall.as_secs_f64() * 1e3,
            r.tasks_per_sec(),
            r.total_steals(),
            r.total_cross_steals(),
            p.stream.exec_wall.as_secs_f64() * 1e3,
            p.stream.tasks_per_sec(),
            p.stream.decode_overlap_pct,
            latency_json(r.obs.as_ref()),
            r.fault.failed.len(),
            r.fault.poisoned.len(),
            r.fault.retried_ok,
            r.fault.workers_lost + p.stream.fault.workers_lost,
            r.validated && p.stream.validated,
            workers.join(", "),
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    let (tasks, agg_ns, per_sec, headroom) = aggregate_decode(points);
    let exec_rate = aggregate_rate(points, |p| p.replay.exec_wall.as_secs_f64());
    let stream_rate = aggregate_rate(points, |p| p.stream.exec_wall.as_secs_f64());
    let overlap = if points.is_empty() {
        0.0
    } else {
        points.iter().map(|p| p.stream.decode_overlap_pct).sum::<f64>() / points.len() as f64
    };
    let failed: usize = points.iter().map(|p| p.replay.fault.failed.len()).sum();
    let poisoned: usize = points.iter().map(|p| p.replay.fault.poisoned.len()).sum();
    let retried_ok: usize = points.iter().map(|p| p.replay.fault.retried_ok).sum();
    let workers_lost: usize =
        points.iter().map(|p| p.replay.fault.workers_lost + p.stream.fault.workers_lost).sum();
    let merged = merged_obs(points);
    s.push_str(&format!(
        "  \"totals\": {{\"tasks\": {tasks}, \"hw_threads\": {}, \"decode_ns_per_task\": {agg_ns:.1}, \
         \"decode_tasks_per_sec\": {per_sec:.0}, \"decode_headroom_vs_paper\": {headroom:.1}, \
         \"exec_tasks_per_sec\": {exec_rate:.0}, \"stream_tasks_per_sec\": {stream_rate:.0}, \
         \"decode_overlap_pct_mean\": {overlap:.1}, {}\
         \"failed\": {failed}, \"poisoned\": {poisoned}, \"retried_ok\": {retried_ok}, \
         \"workers_lost\": {workers_lost}}}\n",
        hw_threads(),
        latency_json(merged.as_ref()),
    ));
    s.push_str("}\n");
    s
}

/// Renders the sampled latency quantiles as a table (`--histogram`;
/// only reachable in an obs build, so the replay reports carry obs).
fn histogram_table(points: &[Point]) -> String {
    let mut table = Table::new(
        format!("Sampled task latency (1 in {} tasks, ns)", tss_exec::obs::SAMPLE_EVERY),
        &[
            "Benchmark",
            "samples",
            "exec p50",
            "exec p99",
            "exec p999",
            "queue p50",
            "queue p99",
            "queue p999",
        ],
    );
    let row = |table: &mut Table, name: String, o: &tss_exec::obs::ObsReport| {
        table.row(vec![
            name,
            o.exec_latency.count().to_string(),
            o.exec_latency.p50().to_string(),
            o.exec_latency.p99().to_string(),
            o.exec_latency.p999().to_string(),
            o.queue_wait.p50().to_string(),
            o.queue_wait.p99().to_string(),
            o.queue_wait.p999().to_string(),
        ]);
    };
    for p in points {
        if let Some(o) = &p.replay.obs {
            row(&mut table, p.replay.benchmark.clone(), o);
        }
    }
    if let Some(m) = merged_obs(points) {
        row(&mut table, "TOTAL".into(), &m);
    }
    table.render()
}

/// The failure identity of a run: which tasks finally failed and which
/// were cone-poisoned. Injection is a pure function of `(fault seed,
/// task, attempt)` (DESIGN.md §11), so with `--fault-rate` armed the
/// replay and streamed runs must agree on this exactly.
fn failure_sets(r: &ExecReport) -> (Vec<u32>, Vec<u32>) {
    (r.fault.failed.iter().map(|f| f.task).collect(), r.fault.poisoned.clone())
}

/// Unwraps one run's result and applies the post-run gates, in severity
/// order: a structured run failure ([`ExecError`]) is a user-visible
/// outcome and exits 2; an oracle violation or a non-reconciling
/// accounting identity is an executor bug and exits 1.
fn run_checked(
    bench: Benchmark,
    result: Result<ExecReport, ExecError>,
    oracle: &DepGraph,
) -> ExecReport {
    let mut report = match result {
        Ok(r) => r,
        Err(e) => {
            // A structured run failure, not a flag error: no --help hint.
            eprintln!("error: {bench}: {e}");
            std::process::exit(2);
        }
    };
    if let Err(v) = oracle.validate_order(&report.order) {
        eprintln!("[exec] {bench}: ORACLE VIOLATION: {v}");
        std::process::exit(1);
    }
    if !report.accounting_reconciles() {
        eprintln!(
            "[exec] {bench}: ACCOUNTING MISMATCH: completed {} + failed {} + poisoned {} \
             != tasks {} (retried_ok {})",
            report.completed(),
            report.fault.failed.len(),
            report.fault.poisoned.len(),
            report.tasks,
            report.fault.retried_ok,
        );
        std::process::exit(1);
    }
    report.validated = true;
    report
}

fn main() {
    let args = parse_args();
    let chaos = args.fault_rate_ppm > 0 || args.kill_worker.is_some();
    if chaos {
        // Injected panics are expected traffic at a 5% rate; keep the
        // default hook's backtraces for *real* panics only.
        install_quiet_hook();
    }
    let mut points = Vec::with_capacity(9);
    for bench in Benchmark::all() {
        let trace = bench.trace(args.scale, args.seed);
        let oracle = DepGraph::from_trace(&trace);

        // Decode microbench: the renamer alone, single pass, best of N.
        let renamer = Renamer::new().renaming(args.renaming);
        let mut decode_best = Duration::MAX;
        for _ in 0..DECODE_REPS {
            let t0 = Instant::now();
            let g = renamer.decode(&trace);
            let dt = t0.elapsed();
            std::hint::black_box(g.len());
            decode_best = decode_best.min(dt);
        }

        // Validation happens below, outside the timed runs, so the
        // harness exits with a clear per-benchmark message.
        let cfg = ExecConfig {
            threads: args.threads,
            payload: args.payload,
            sched: args.sched,
            classes: args.classes,
            domains: args.domains,
            renaming: args.renaming,
            seed: args.seed,
            window: args.window,
            decode_shards: args.decode_shards,
            validate: false,
            policy: args.policy,
            task_deadline: args.task_deadline,
            run_deadline: args.run_deadline,
            kill_worker: args.kill_worker,
            cancel: None,
        };
        let exec = Executor::new(cfg);
        // Two-phase replay: the scheduler-only, PR-comparable number.
        let replay = run_checked(bench, exec.run_oneshot(&trace), &oracle);
        // Pipelined streaming run: decode overlapped with execution.
        let stream = run_checked(bench, exec.run(&trace), &oracle);
        if args.fault_rate_ppm > 0 && failure_sets(&replay) != failure_sets(&stream) {
            eprintln!(
                "[exec] {bench}: DETERMINISM VIOLATION: replay and streamed runs disagree \
                 on the failure sets (replay {:?}, stream {:?}) for the same fault seed",
                failure_sets(&replay),
                failure_sets(&stream),
            );
            std::process::exit(1);
        }
        eprintln!(
            "  [exec] {bench}: {} tasks, decode {:.0} ns/task, replay {:.2} ms ({} steals), \
             stream {:.2} ms ({:.0}% decode overlap) — ok",
            replay.tasks,
            decode_best.as_nanos() as f64 / replay.tasks.max(1) as f64,
            replay.exec_wall.as_secs_f64() * 1e3,
            replay.total_steals(),
            stream.exec_wall.as_secs_f64() * 1e3,
            stream.decode_overlap_pct,
        );
        if replay.fault.any() || stream.fault.any() {
            eprintln!(
                "  [exec] {bench}: chaos: failed {}, poisoned {}, retried-ok {}, \
                 workers lost {} (replay run)",
                fmt_count_pct(replay.fault.failed.len(), replay.tasks),
                fmt_count_pct(replay.fault.poisoned.len(), replay.tasks),
                replay.fault.retried_ok,
                replay.fault.workers_lost + stream.fault.workers_lost,
            );
        }
        points.push(Point { replay, stream, decode_best });
    }

    let json = to_json(&args, &points);
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| fail(format!("cannot write {}: {e}", args.out)));

    // Timeline export (DESIGN.md §12.4): the streaming runs, which have
    // both worker and decode-shard tracks. Only reachable in an obs
    // build (parse_args rejects the flag otherwise).
    if let Some(path) = &args.trace_out {
        let runs: Vec<(String, &tss_exec::obs::ObsReport)> = points
            .iter()
            .filter_map(|p| p.stream.obs.as_ref().map(|o| (p.stream.benchmark.clone(), o)))
            .collect();
        std::fs::write(path, tss_exec::obs::chrome_trace(&runs))
            .unwrap_or_else(|e| fail(format!("cannot write {path}: {e}")));
        eprintln!("  [exec] wrote Chrome trace of {} runs to {path}", runs.len());
    }

    if args.json {
        print!("{json}");
        if args.histogram {
            // Keep stdout parseable: the human table goes to stderr.
            eprintln!("{}", histogram_table(&points));
        }
    } else {
        let mut table = Table::new(
            format!(
                "Native executor ({} scale, {} threads, {} payload, {} policy, seed {}, window {}, {} decode shards)",
                args.scale.name(),
                args.threads,
                args.payload.name(),
                args.sched.name(),
                args.seed,
                args.window,
                args.decode_shards,
            ),
            &[
                "Benchmark",
                "tasks",
                "edges",
                "decode ns/t",
                "replay ms",
                "replay t/s",
                "steals",
                "stream ms",
                "stream t/s",
                "overlap %",
                "failed",
                "poisoned",
                "valid",
            ],
        );
        for p in &points {
            let r = &p.replay;
            table.row(vec![
                r.benchmark.clone(),
                r.tasks.to_string(),
                r.rename.enforced_edges.to_string(),
                fmt_f(p.decode_ns_per_task(), 0),
                fmt_f(r.exec_wall.as_secs_f64() * 1e3, 2),
                fmt_f(r.tasks_per_sec(), 0),
                r.total_steals().to_string(),
                fmt_f(p.stream.exec_wall.as_secs_f64() * 1e3, 2),
                fmt_f(p.stream.tasks_per_sec(), 0),
                fmt_f(p.stream.decode_overlap_pct, 0),
                r.fault.failed.len().to_string(),
                r.fault.poisoned.len().to_string(),
                if r.validated && p.stream.validated { "ok".into() } else { "FAIL".into() },
            ]);
        }
        println!("{}", table.render());
        if args.histogram {
            println!("{}", histogram_table(&points));
        }
        let (_, agg_ns, per_sec, headroom) = aggregate_decode(&points);
        println!(
            "Aggregate native decode: {agg_ns:.0} ns/task ({:.2}M tasks/s) vs the paper's \
             ~{PAPER_SOFTWARE_DECODE_NS:.0} ns/task software decoder — {headroom:.1}x headroom.",
            per_sec / 1e6,
        );
        println!(
            "Aggregate replay {:.2}M tasks/s (two-phase) | streamed end-to-end {:.2}M tasks/s.",
            aggregate_rate(&points, |p| p.replay.exec_wall.as_secs_f64()) / 1e6,
            aggregate_rate(&points, |p| p.stream.exec_wall.as_secs_f64()) / 1e6,
        );
        if chaos {
            let total: usize = points.iter().map(|p| p.replay.tasks).sum();
            let failed: usize = points.iter().map(|p| p.replay.fault.failed.len()).sum();
            let poisoned: usize = points.iter().map(|p| p.replay.fault.poisoned.len()).sum();
            let retried: usize = points.iter().map(|p| p.replay.fault.retried_ok).sum();
            println!(
                "Chaos ({} @ {} ppm, fault seed {}): failed {}, poisoned {}, \
                 retried-ok {} — accounting reconciled, replay/stream failure sets agree.",
                args.policy.name(),
                args.fault_rate_ppm,
                args.fault_seed,
                fmt_count_pct(failed, total),
                fmt_count_pct(poisoned, total),
                retried,
            );
        }
        println!("(wrote {})", args.out);
    }
}
