//! Scheduling-policy ablation harness (DESIGN.md §13): replay all nine
//! Table-I benchmarks under every [`SchedKind`] across a worker-count
//! grid, with the *mixed* payload (memcpy for memory-class tasks, spin
//! for compute-class — the workload shape heterogeneous dispatch
//! exists for), and record the policy-by-policy numbers in
//! `BENCH_sched.json`.
//!
//! Every replay is validated against the `DepGraph` oracle — a
//! violating completion order exits 1 (CI gates on this, not timing):
//! a scheduling policy is free to reorder *ready* tasks, never to
//! break dependences.
//!
//! Every JSON row (and the top level) is stamped with `hw_threads` —
//! the parallelism actually available to the process — because a
//! `--workers 64` row produced on a 1-core container measures
//! scheduler overhead, not scaling (EXPERIMENTS.md §PR 4/5 erratum).
//!
//! Flags: `--scale small|paper|large`, `--policy all|lifo|fifo|cost|
//! locality` (default all), `--workers N,N,...` (default
//! `2,4,8,16,32,64`), `--classes N` / `--domains N` (locality shaping;
//! rejected when the selected policy set is a single non-locality
//! policy), `--spin-scale F`, `--seed N`, `--jobs N` (sweep fan-out),
//! `--json`, `--out PATH`. Bad values and bad combinations exit 2 with
//! a message naming the flags; an oracle violation exits 1.

use std::time::Instant;

use tss_core::fabric;
use tss_core::report::fmt_f;
use tss_core::Table;
use tss_exec::{ExecConfig, ExecReport, Executor, PayloadMode, SchedKind, SCHED_MENU};
use tss_trace::{DepGraph, TaskTrace};
use tss_workloads::{Benchmark, Scale};

struct Args {
    scale: Scale,
    policies: Vec<SchedKind>,
    workers: Vec<usize>,
    classes: usize,
    domains: usize,
    spin_scale: f64,
    seed: u64,
    jobs: usize,
    json: bool,
    out: String,
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2);
}

fn want(value: Option<String>, flag: &str) -> String {
    value.unwrap_or_else(|| fail(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(raw: &str, what: &str) -> T {
    raw.parse().unwrap_or_else(|_| fail(format!("{what} must be a number, got '{raw}'")))
}

fn hw_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn parse_args() -> Args {
    let mut out = Args {
        scale: Scale::Small,
        policies: SchedKind::all().to_vec(),
        workers: vec![2, 4, 8, 16, 32, 64],
        classes: 2,
        domains: 2,
        spin_scale: 1.0,
        seed: 42,
        jobs: fabric::default_jobs(),
        json: false,
        out: "BENCH_sched.json".into(),
    };
    let mut policy_name = String::from("all");
    let mut classes_flag: Option<usize> = None;
    let mut domains_flag: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = want(args.next(), "--scale");
                out.scale = Scale::parse(&v)
                    .unwrap_or_else(|| fail(format!("unknown scale '{v}' (small|paper|large)")));
            }
            "--policy" => policy_name = want(args.next(), "--policy"),
            "--workers" => {
                let v = want(args.next(), "--workers");
                out.workers = v
                    .split(',')
                    .map(|w| {
                        let n: usize = parse_num(w.trim(), "--workers entries");
                        if n == 0 {
                            fail("--workers entries must be at least 1");
                        }
                        n
                    })
                    .collect();
                if out.workers.is_empty() {
                    fail("--workers needs at least one worker count");
                }
            }
            "--classes" => {
                let n: usize = parse_num(&want(args.next(), "--classes"), "--classes");
                if n == 0 {
                    fail("--classes must be at least 1");
                }
                classes_flag = Some(n);
            }
            "--domains" => {
                let n: usize = parse_num(&want(args.next(), "--domains"), "--domains");
                if n == 0 {
                    fail("--domains must be at least 1");
                }
                domains_flag = Some(n);
            }
            "--spin-scale" => {
                out.spin_scale = parse_num(&want(args.next(), "--spin-scale"), "--spin-scale");
            }
            "--seed" => out.seed = parse_num(&want(args.next(), "--seed"), "--seed"),
            "--jobs" => {
                out.jobs = parse_num(&want(args.next(), "--jobs"), "--jobs");
                if out.jobs == 0 {
                    fail("--jobs must be at least 1");
                }
            }
            "--json" => out.json = true,
            "--out" => out.out = want(args.next(), "--out"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: sched [--scale small|paper|large] [--policy all|{SCHED_MENU}] \
                     [--workers N,N,...] [--classes N] [--domains N] [--spin-scale F] \
                     [--seed N] [--jobs N] [--json] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => fail(format!("unknown flag '{other}'")),
        }
    }
    if policy_name != "all" {
        let kind = SchedKind::parse(&policy_name)
            .unwrap_or_else(|| fail(format!("unknown policy '{policy_name}' (all|{SCHED_MENU})")));
        out.policies = vec![kind];
        // Same contract as the exec harness: class/domain shaping only
        // means anything to locality, and an ablation artifact must not
        // pretend otherwise.
        if !matches!(kind, SchedKind::Locality) {
            if let Some(n) = classes_flag {
                fail(format!(
                    "--classes {n} only applies to --policy locality, not --policy {policy_name}"
                ));
            }
            if let Some(n) = domains_flag {
                fail(format!(
                    "--domains {n} only applies to --policy locality, not --policy {policy_name}"
                ));
            }
        }
    }
    out.classes = classes_flag.unwrap_or(out.classes);
    out.domains = domains_flag.unwrap_or(out.domains);
    if let Some(d) = domains_flag {
        if let Some(&w) = out.workers.iter().find(|&&w| w < d) {
            fail(format!("--domains {d} cannot exceed the smallest --workers entry {w}"));
        }
    }
    out
}

/// One grid point: `(benchmark index, policy, worker count)`.
type Point = (usize, SchedKind, usize);

struct Row {
    benchmark: String,
    policy: SchedKind,
    workers: usize,
    report: ExecReport,
}

/// Replays one grid point and oracle-checks the completion order.
fn run_point(args: &Args, trace: &TaskTrace, oracle: &DepGraph, p: Point) -> Row {
    let (_, policy, workers) = p;
    let cfg = ExecConfig {
        threads: workers,
        payload: PayloadMode::Mixed { time_scale: args.spin_scale },
        sched: policy,
        // Executor::new clamps domains to the thread count, so the
        // locality rows at 2 workers run 2 domains even if more were
        // asked for.
        classes: args.classes,
        domains: args.domains,
        seed: args.seed,
        validate: false,
        ..Default::default()
    };
    let report = match Executor::new(cfg).run_oneshot(trace) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {} [{} x{workers}]: {e}", trace.name(), policy.name());
            std::process::exit(2);
        }
    };
    if let Err(v) = oracle.validate_order(&report.order) {
        eprintln!("[sched] {} [{} x{workers}]: ORACLE VIOLATION: {v}", trace.name(), policy.name());
        std::process::exit(1);
    }
    let mut report = report;
    report.validated = true;
    Row { benchmark: trace.name().to_string(), policy, workers, report }
}

/// Per-policy aggregate over every `(benchmark, workers)` cell:
/// `(tasks, tasks/s, steals, cross-domain steals)`.
fn policy_totals(rows: &[Row], policy: SchedKind) -> (usize, f64, u64, u64) {
    let mine: Vec<&Row> = rows.iter().filter(|r| r.policy == policy).collect();
    let tasks: usize = mine.iter().map(|r| r.report.tasks).sum();
    let wall: f64 = mine.iter().map(|r| r.report.exec_wall.as_secs_f64()).sum();
    let steals: u64 = mine.iter().map(|r| r.report.total_steals()).sum();
    let cross: u64 = mine.iter().map(|r| r.report.total_cross_steals()).sum();
    (tasks, if wall > 0.0 { tasks as f64 / wall } else { 0.0 }, steals, cross)
}

fn latency_json(obs: Option<&tss_exec::obs::ObsReport>) -> String {
    match obs {
        Some(o) => format!(
            "\"latency_p50_ns\": {}, \"latency_p99_ns\": {}, ",
            o.exec_latency.p50(),
            o.exec_latency.p99(),
        ),
        None => String::new(),
    }
}

fn to_json(args: &Args, rows: &[Row], suite_wall_ms: f64) -> String {
    let hw = hw_threads();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tss-bench-sched/v1\",\n");
    s.push_str(&format!("  \"scale\": \"{}\",\n", args.scale.name()));
    s.push_str("  \"payload\": \"mixed\",\n");
    s.push_str(&format!("  \"seed\": {},\n", args.seed));
    s.push_str(&format!("  \"hw_threads\": {hw},\n"));
    s.push_str(&format!("  \"classes\": {},\n", args.classes));
    s.push_str(&format!("  \"domains\": {},\n", args.domains));
    s.push_str(&format!(
        "  \"workers\": [{}],\n",
        args.workers.iter().map(|w| w.to_string()).collect::<Vec<_>>().join(", ")
    ));
    s.push_str(&format!(
        "  \"policies\": [{}],\n",
        args.policies.iter().map(|p| format!("\"{}\"", p.name())).collect::<Vec<_>>().join(", ")
    ));
    s.push_str("  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let r = &row.report;
        s.push_str(&format!(
            "    {{\"benchmark\": \"{}\", \"policy\": \"{}\", \"workers\": {}, \
             \"hw_threads\": {hw}, \"tasks\": {}, \"exec_wall_ms\": {:.3}, \
             \"exec_tasks_per_sec\": {:.0}, \"steals\": {}, \"cross_steals\": {}, {}\
             \"validated\": {}}}{}\n",
            row.benchmark,
            row.policy.name(),
            row.workers,
            r.tasks,
            r.exec_wall.as_secs_f64() * 1e3,
            r.tasks_per_sec(),
            r.total_steals(),
            r.total_cross_steals(),
            latency_json(r.obs.as_ref()),
            r.validated,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"totals\": {\n");
    s.push_str(&format!("    \"hw_threads\": {hw},\n"));
    s.push_str(&format!("    \"jobs\": {},\n", args.jobs));
    s.push_str(&format!("    \"suite_wall_ms\": {suite_wall_ms:.1},\n"));
    s.push_str("    \"per_policy\": [\n");
    for (i, &policy) in args.policies.iter().enumerate() {
        let (tasks, rate, steals, cross) = policy_totals(rows, policy);
        s.push_str(&format!(
            "      {{\"policy\": \"{}\", \"tasks\": {tasks}, \"exec_tasks_per_sec\": {rate:.0}, \
             \"steals\": {steals}, \"cross_steals\": {cross}}}{}\n",
            policy.name(),
            if i + 1 == args.policies.len() { "" } else { "," }
        ));
    }
    s.push_str("    ]\n");
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

fn main() {
    let args = parse_args();

    // Generate each benchmark trace once and share it across the whole
    // policy x workers grid (the grid re-runs the *executor*, not the
    // generator).
    let traces: Vec<(TaskTrace, DepGraph)> = Benchmark::all()
        .into_iter()
        .map(|b| {
            let t = b.trace(args.scale, args.seed);
            let g = DepGraph::from_trace(&t);
            (t, g)
        })
        .collect();

    let mut points: Vec<Point> = Vec::new();
    for bi in 0..traces.len() {
        for &policy in &args.policies {
            for &workers in &args.workers {
                points.push((bi, policy, workers));
            }
        }
    }
    eprintln!(
        "[sched] {} grid points ({} benchmarks x {} policies x {} worker counts), \
         {} hw threads, {} jobs",
        points.len(),
        traces.len(),
        args.policies.len(),
        args.workers.len(),
        hw_threads(),
        args.jobs,
    );

    let t0 = Instant::now();
    let rows = fabric::sweep(args.jobs, points, |p| {
        let (bi, _, _) = p;
        run_point(&args, &traces[bi].0, &traces[bi].1, p)
    });
    let suite_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let json = to_json(&args, &rows, suite_wall_ms);
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| fail(format!("cannot write {}: {e}", args.out)));

    if args.json {
        print!("{json}");
    } else {
        let mut table = Table::new(
            format!(
                "Scheduling ablation ({} scale, mixed payload, seed {}, {} hw threads)",
                args.scale.name(),
                args.seed,
                hw_threads(),
            ),
            &["Benchmark", "policy", "workers", "tasks", "wall ms", "tasks/s", "steals", "cross"],
        );
        for row in &rows {
            let r = &row.report;
            table.row(vec![
                row.benchmark.clone(),
                row.policy.name().into(),
                row.workers.to_string(),
                r.tasks.to_string(),
                fmt_f(r.exec_wall.as_secs_f64() * 1e3, 2),
                fmt_f(r.tasks_per_sec(), 0),
                r.total_steals().to_string(),
                r.total_cross_steals().to_string(),
            ]);
        }
        println!("{}", table.render());
        let (_, base_rate, _, _) = policy_totals(&rows, args.policies[0]);
        for &policy in &args.policies {
            let (tasks, rate, steals, cross) = policy_totals(&rows, policy);
            println!(
                "{:>9}: {tasks} tasks, {} tasks/s aggregate ({:+.1}% vs {}), \
                 {steals} steals ({cross} cross-domain)",
                policy.name(),
                fmt_f(rate, 0),
                if base_rate > 0.0 { (rate / base_rate - 1.0) * 1e2 } else { 0.0 },
                args.policies[0].name(),
            );
        }
        println!("(wrote {})", args.out);
    }
}
