//! Regenerates **Figure 16**: speedups over sequential execution for the
//! task superscalar pipeline and the software runtime, on 32–256
//! processors, for all nine benchmarks plus the average.
//!
//! Expected shape (Section VI.C): hardware scales to 256 processors
//! (95–255x, average ~183x in the paper); software plateaus at 32–64
//! processors except on Knn and H264 (≥100 µs tasks), with H264's
//! infinite-window software slightly ahead at 256p.

use tss_bench::HarnessArgs;
use tss_core::experiments::scalability_sweep;
use tss_core::report::fmt_f;
use tss_core::Table;
use tss_workloads::Benchmark;

fn main() {
    let args = HarnessArgs::parse();
    let procs = [32usize, 64, 128, 256];

    let mut table = Table::new(
        "Figure 16: speedup over sequential execution (hw = task superscalar, sw = software runtime)",
        &[
            "Benchmark",
            "hw32", "sw32", "hw64", "sw64", "hw128", "sw128", "hw256", "sw256",
        ],
    );
    let mut avg = [0.0f64; 8];
    for bench in Benchmark::all() {
        let trace = bench.trace(args.scale, args.seed);
        let pts = scalability_sweep(&trace, &procs, args.jobs);
        let mut row = vec![bench.name().to_string()];
        for (i, p) in pts.iter().enumerate() {
            row.push(fmt_f(p.hardware, 1));
            row.push(fmt_f(p.software, 1));
            avg[2 * i] += p.hardware / 9.0;
            avg[2 * i + 1] += p.software / 9.0;
        }
        table.row(row);
        eprintln!("  [fig16] {bench} done");
    }
    let mut row = vec!["Average".to_string()];
    for v in avg {
        row.push(fmt_f(v, 1));
    }
    table.row(row);
    args.emit(&table);
    println!(
        "(paper: hardware achieves 95-255x, average 183x, at 256 processors; \
         software typically cannot use more than 32-64)"
    );
}
