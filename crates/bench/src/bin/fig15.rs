//! Regenerates **Figure 15**: speedup (256 processors) as a function of
//! the total TRS capacity — 128 KB to 8 MB — for Cholesky, H264, and the
//! average over all nine benchmarks.
//!
//! Expected shape (Section VI.B): Cholesky peaks by ~2 MB; H264's
//! distant parallelism keeps paying until ~6 MB; 6 MB holds a window of
//! 12k–50k tasks.

use tss_bench::HarnessArgs;
use tss_core::experiments::trs_capacity_sweep;
use tss_core::report::fmt_f;
use tss_core::Table;
use tss_workloads::Benchmark;

fn main() {
    let args = HarnessArgs::parse();
    let caps: Vec<u64> =
        [128u64 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 6 << 20, 8 << 20].to_vec();

    let mut avg = vec![0.0f64; caps.len()];
    let mut window = vec![0u32; caps.len()];
    let mut cholesky_row: Vec<String> = Vec::new();
    let mut h264_row: Vec<String> = Vec::new();
    for bench in Benchmark::all() {
        let trace = bench.trace(args.scale, args.seed);
        let pts = trs_capacity_sweep(&trace, &caps, 256, args.jobs);
        for (i, p) in pts.iter().enumerate() {
            avg[i] += p.speedup / 9.0;
            window[i] = window[i].max(p.window_peak);
        }
        if bench == Benchmark::Cholesky {
            cholesky_row = pts.iter().map(|p| fmt_f(p.speedup, 1)).collect();
        }
        if bench == Benchmark::H264 {
            h264_row = pts.iter().map(|p| fmt_f(p.speedup, 1)).collect();
        }
        eprintln!("  [fig15] {bench} done");
    }

    let mut table = Table::new(
        "Figure 15: speedup vs total TRS capacity (256 processors)",
        &["TRS capacity", "Cholesky", "H264", "Average", "max window"],
    );
    for (i, &cap) in caps.iter().enumerate() {
        table.row(vec![
            if cap >= 1 << 20 { format!("{} MB", cap >> 20) } else { format!("{} KB", cap >> 10) },
            cholesky_row[i].clone(),
            h264_row[i].clone(),
            fmt_f(avg[i], 1),
            window[i].to_string(),
        ]);
    }
    args.emit(&table);
    println!(
        "(6 MB of TRS storage = 49,152 blocks: a 12k-50k-task window, \
         as Section VI.B reports)"
    );
}
