//! Regenerates **Table II**: the simulated system parameters, as
//! configured in this reproduction's defaults.

use tss_backend::BackendConfig;
use tss_core::Table;
use tss_mem::HierarchyConfig;
use tss_pipeline::FrontendConfig;

fn main() {
    let fe = FrontendConfig::default();
    let be = BackendConfig::for_cores(256);
    let mem = HierarchyConfig::for_cores(256);

    let mut t = Table::new("Table II: simulated system parameters", &["Component", "Setting"]);
    t.row(vec![
        "Cores".into(),
        format!("32-256 cores, in-order, trace-driven, {} GHz", tss_sim::CLOCK_GHZ),
    ]);
    t.row(vec![
        "L1".into(),
        format!(
            "private, {} KB, {}-way set-associative, {} cycle latency",
            mem.l1.size_bytes >> 10,
            mem.l1.ways,
            mem.l1_latency
        ),
    ]);
    t.row(vec![
        "L2".into(),
        format!(
            "shared, {} banks with {} MB per bank, {}-way, {} cycles latency, directory MSI",
            mem.l2_banks,
            mem.l2_bank_cfg.size_bytes >> 20,
            mem.l2_bank_cfg.ways,
            mem.l2_latency
        ),
    ]);
    t.row(vec![
        "Memory".into(),
        format!(
            "{} memory controllers, {} channels per MC, DDR3 ({} B/cycle per ch.)",
            mem.dram.controllers, mem.dram.channels_per_ctrl, mem.dram.bytes_per_cycle
        ),
    ]);
    t.row(vec![
        "Interconnect".into(),
        format!(
            "segmented two-level ring, {} bytes/cycle, {} concurrent connections per segment, \
             {} cores per local ring",
            be.ring.bytes_per_cycle, be.ring.lanes, be.ring.cores_per_ring
        ),
    ]);
    t.row(vec![
        "Task pipeline".into(),
        format!(
            "{} cycles eDRAM latency, {} cycles module processing per packet",
            fe.timing.edram_latency, fe.timing.packet_cost
        ),
    ]);
    t.row(vec![
        "Frontend".into(),
        format!(
            "{} TRS ({} MB), {} ORT+OVT ({} KB + {} KB), {} KB gateway buffer; \
             {} MB total eDRAM",
            fe.num_trs,
            fe.trs_total_bytes >> 20,
            fe.num_ort,
            fe.ort_total_bytes >> 10,
            fe.ovt_total_bytes >> 10,
            fe.gateway_buffer_bytes >> 10,
            fe.total_edram_bytes() >> 20
        ),
    ]);
    println!("{}", t.render());
}
