//! Regenerates the **Figure 10** claim: consumer chains are short —
//! "for all but two of the benchmarks, 95% of the chains are no more
//! than 2 tasks long, and no more than 7 for the other two"
//! (Section IV.B.2).
//!
//! Prints, per benchmark, the distribution of readers per object version
//! (the chain the `DataReady` message walks).

use tss_bench::HarnessArgs;
use tss_core::report::fmt_f;
use tss_core::{SystemBuilder, Table};

fn main() {
    let args = HarnessArgs::parse();
    let mut table = Table::new(
        "Figure 10: consumer-chain length distribution (readers per version)",
        &["Benchmark", "versions", "p(<=2)", "p(<=7)", "max bucket", "forwards/task"],
    );
    // One fabric point per benchmark; rows come back (and print) in
    // catalog order whatever --jobs is.
    let rows = args.sweep_benchmarks(|bench, trace| {
        let report = SystemBuilder::new().processors(256).skip_validation().run_hardware(&trace);
        let fe = report.frontend.expect("hardware run");
        let hist = fe.ort.chain_hist;
        let total: u64 = hist.iter().sum();
        let le2: u64 = hist[..=2].iter().sum();
        let le7: u64 = hist[..=7].iter().sum();
        let maxb = hist.iter().rposition(|&c| c > 0).unwrap_or(0);
        eprintln!("  [fig10] {bench} done");
        vec![
            bench.name().to_string(),
            total.to_string(),
            fmt_f(le2 as f64 / total.max(1) as f64, 3),
            fmt_f(le7 as f64 / total.max(1) as f64, 3),
            if maxb == 9 { "9+".into() } else { maxb.to_string() },
            fmt_f(fe.chain_forwards as f64 / report.tasks as f64, 2),
        ]
    });
    for row in rows {
        table.row(row);
    }
    args.emit(&table);
}
