//! Closed-loop load generator for the execution service (DESIGN.md
//! §14): N client threads each submit M graphs of one Table-I workload
//! against a running `serve` instance and collect per-graph completion
//! outcomes, writing `BENCH_serve.json` (throughput, p50/p99/p999
//! completion latency, rejects, shed counts).
//!
//! Two modes:
//!
//! - **Healthy** (default): submit, wait for `Done`, repeat. An
//!   `Overloaded` shed is honored — the client sleeps the server's
//!   `retry_after_ms` hint and resubmits, up to `--retry-max` times —
//!   so the artifact records how often backpressure actually bit.
//! - **Wire chaos** (`--chaos-seed N`): every `(client, graph)` pair's
//!   behaviour comes from the pure chaos plan (DESIGN.md §14.5) —
//!   slow-loris writers, truncated and corrupt frames, vanishing
//!   clients — and the outcome counts are exactly reproducible for a
//!   fixed seed, which is what the CI baseline gate pins.
//!
//! Flags: `--addr HOST:PORT` (required; `serve --port-file` emits it),
//! `--clients N`, `--graphs N` (per client), `--bench NAME`, `--scale
//! small|paper|large`, `--seed N`, `--chunk N` (tasks per frame),
//! `--deadline-ms N` (0 = none), `--retry-max N`, `--chaos-seed N`,
//! `--shutdown` (drain the server afterwards), `--json`, `--out PATH`.
//! Bad values and combinations exit 2 naming the offending flag.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use tss_client::chaos::{plan, run_graph, ChaosMode, ChaosOutcome};
use tss_client::{Client, Submission};
use tss_core::report::fmt_f;
use tss_core::Table;
use tss_obs::hist::Histogram;
use tss_proto::{GraphOutcome, RejectReason};
use tss_trace::TaskTrace;
use tss_workloads::{Benchmark, Scale};

/// CLI contract: bad input is a user error, not a bug (exit 2).
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2);
}

fn want(value: Option<String>, flag: &str) -> String {
    value.unwrap_or_else(|| fail(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(raw: &str, what: &str) -> T {
    raw.parse().unwrap_or_else(|_| fail(format!("{what} must be a number, got '{raw}'")))
}

struct Args {
    addr: SocketAddr,
    clients: u64,
    graphs: u64,
    bench: Benchmark,
    scale: Scale,
    seed: u64,
    chunk: usize,
    deadline_ms: u32,
    retry_max: u32,
    chaos_seed: Option<u64>,
    shutdown: bool,
    json: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut addr: Option<String> = None;
    let mut out = Args {
        addr: "127.0.0.1:0".parse().expect("literal addr"),
        clients: 2,
        graphs: 8,
        bench: Benchmark::Cholesky,
        scale: Scale::Small,
        seed: 42,
        chunk: 256,
        deadline_ms: 0,
        retry_max: 8,
        chaos_seed: None,
        shutdown: false,
        json: false,
        out: "BENCH_serve.json".into(),
    };
    let mut retry_max_flag: Option<u32> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = Some(want(args.next(), "--addr")),
            "--clients" => {
                out.clients = parse_num(&want(args.next(), "--clients"), "--clients");
                if out.clients == 0 {
                    fail("--clients must be at least 1");
                }
            }
            "--graphs" => {
                out.graphs = parse_num(&want(args.next(), "--graphs"), "--graphs");
                if out.graphs == 0 {
                    fail("--graphs must be at least 1 per client");
                }
            }
            "--bench" => {
                let v = want(args.next(), "--bench");
                out.bench = Benchmark::parse(&v).unwrap_or_else(|| {
                    let menu: Vec<&str> = Benchmark::all().iter().map(|b| b.name()).collect();
                    fail(format!("unknown benchmark '{v}' ({})", menu.join("|")))
                });
            }
            "--scale" => {
                let v = want(args.next(), "--scale");
                out.scale = Scale::parse(&v)
                    .unwrap_or_else(|| fail(format!("unknown scale '{v}' (small|paper|large)")));
            }
            "--seed" => out.seed = parse_num(&want(args.next(), "--seed"), "--seed"),
            "--chunk" => {
                out.chunk = parse_num(&want(args.next(), "--chunk"), "--chunk");
                if out.chunk == 0 {
                    fail("--chunk must be at least 1 task per frame");
                }
            }
            "--deadline-ms" => {
                out.deadline_ms = parse_num(&want(args.next(), "--deadline-ms"), "--deadline-ms");
            }
            "--retry-max" => {
                let n: u32 = parse_num(&want(args.next(), "--retry-max"), "--retry-max");
                if n == 0 {
                    fail("--retry-max must be at least 1 attempt");
                }
                retry_max_flag = Some(n);
            }
            "--chaos-seed" => {
                out.chaos_seed =
                    Some(parse_num(&want(args.next(), "--chaos-seed"), "--chaos-seed"));
            }
            "--shutdown" => out.shutdown = true,
            "--json" => out.json = true,
            "--out" => out.out = want(args.next(), "--out"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: loadgen --addr HOST:PORT [--clients N] [--graphs N] \
                     [--bench NAME] [--scale small|paper|large] [--seed N] [--chunk N] \
                     [--deadline-ms N] [--retry-max N] [--chaos-seed N] [--shutdown] \
                     [--json] [--out PATH]"
                );
                std::process::exit(0);
            }
            other => fail(format!("unknown flag '{other}'")),
        }
    }
    // Chaos outcomes are plan-determined; a resubmit loop underneath
    // them would make the "exact" baseline a lie.
    if retry_max_flag.is_some() && out.chaos_seed.is_some() {
        fail("--retry-max is the closed-loop resubmit bound; it does not apply with --chaos-seed");
    }
    out.retry_max = retry_max_flag.unwrap_or(out.retry_max);
    let addr = addr.unwrap_or_else(|| fail("--addr is required (serve --port-file emits it)"));
    out.addr =
        addr.parse().unwrap_or_else(|_| fail(format!("--addr must be HOST:PORT, got '{addr}'")));
    out
}

/// What one client thread needs to run its loop (a `Send + Clone`
/// slice of [`Args`]).
#[derive(Clone, Copy)]
struct Load {
    addr: SocketAddr,
    graphs: u64,
    deadline_ms: u32,
    chunk: usize,
    retry_max: u32,
    chaos_seed: Option<u64>,
}

/// One client thread's tally. The chaos-mode counts (`slow_ok`,
/// `killed`, `vanished`) and the reject counts are exact for a fixed
/// chaos seed; latency and wall are the noisy part.
#[derive(Default)]
struct Row {
    graphs: u64,
    tasks: u64,
    completed: u64,
    slow_ok: u64,
    killed: u64,
    vanished: u64,
    cancelled: u64,
    deadline_expired: u64,
    failed: u64,
    rejected_overloaded: u64,
    rejected_quota: u64,
    rejected_malformed: u64,
    wall: Duration,
    latency: Histogram,
}

impl Row {
    fn tally_done(&mut self, outcome: &GraphOutcome, started: Instant) {
        match outcome {
            GraphOutcome::Completed { tasks, .. } => {
                self.completed += 1;
                self.tasks += tasks;
                self.latency.record(started.elapsed().as_nanos() as u64);
            }
            GraphOutcome::Cancelled { .. } => self.cancelled += 1,
            GraphOutcome::DeadlineExpired { .. } => self.deadline_expired += 1,
            GraphOutcome::Failed { .. } => self.failed += 1,
        }
    }
}

/// Healthy closed loop: submit, honor shed hints, wait for `Done`.
fn run_healthy(load: &Load, client_idx: u64, trace: &TaskTrace) -> Result<Row, String> {
    let mut row = Row::default();
    let mut client = Client::connect(load.addr)
        .map_err(|e| format!("client {client_idx}: connect {}: {e}", load.addr))?;
    for g in 0..load.graphs {
        let gid = client_idx * 1_000_000 + g;
        row.graphs += 1;
        let started = Instant::now();
        let mut attempts = 0u32;
        loop {
            let sub = client
                .submit(gid, load.deadline_ms, trace, load.chunk)
                .map_err(|e| format!("client {client_idx} graph {gid}: submit: {e}"))?;
            match sub {
                Submission::Accepted => break,
                Submission::Rejected(RejectReason::Overloaded { retry_after_ms }) => {
                    row.rejected_overloaded += 1;
                    attempts += 1;
                    if attempts >= load.retry_max {
                        return Err(format!(
                            "client {client_idx} graph {gid}: still shed after {attempts} \
                             submits (raise --retry-max or shrink the load)"
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(u64::from(retry_after_ms.max(1))));
                }
                Submission::Rejected(RejectReason::QuotaExceeded { .. }) => {
                    row.rejected_quota += 1;
                    attempts += 1;
                    if attempts >= load.retry_max {
                        return Err(format!(
                            "client {client_idx} graph {gid}: quota-rejected {attempts} times"
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Submission::Rejected(
                    r @ (RejectReason::Malformed { .. } | RejectReason::TooLarge { .. }),
                ) => {
                    row.rejected_malformed += 1;
                    return Err(format!("client {client_idx} graph {gid}: rejected: {r}"));
                }
                Submission::Rejected(r) => {
                    return Err(format!("client {client_idx} graph {gid}: rejected: {r}"));
                }
            }
        }
        let outcome = client
            .wait_done(gid)
            .map_err(|e| format!("client {client_idx} graph {gid}: wait_done: {e}"))?;
        row.tally_done(&outcome, started);
    }
    client.bye();
    Ok(row)
}

/// Wire-chaos loop: each pair's behaviour is the pure plan's call.
fn run_chaotic(load: &Load, client_idx: u64, trace: &TaskTrace) -> Result<Row, String> {
    let chaos_seed = load.chaos_seed.expect("chaos mode");
    let mut row = Row::default();
    let mut conn: Option<Client> = None;
    for g in 0..load.graphs {
        let mode = plan(chaos_seed, client_idx, g);
        let gid = client_idx * 1_000_000 + g;
        row.graphs += 1;
        let started = Instant::now();
        let out = run_graph(load.addr, &mut conn, mode, gid, load.deadline_ms, trace, load.chunk)
            .map_err(|e| format!("client {client_idx} graph {gid} ({}): {e}", mode.name()))?;
        match out {
            ChaosOutcome::Done(outcome) => {
                if matches!(mode, ChaosMode::Slow)
                    && matches!(outcome, GraphOutcome::Completed { .. })
                {
                    row.slow_ok += 1;
                }
                row.tally_done(&outcome, started);
            }
            ChaosOutcome::Rejected(RejectReason::Overloaded { .. }) => {
                row.rejected_overloaded += 1;
            }
            ChaosOutcome::Rejected(RejectReason::QuotaExceeded { .. }) => {
                row.rejected_quota += 1;
            }
            ChaosOutcome::Rejected(
                r @ (RejectReason::Malformed { .. } | RejectReason::TooLarge { .. }),
            ) => {
                row.rejected_malformed += 1;
                return Err(format!("client {client_idx} graph {gid}: rejected: {r}"));
            }
            ChaosOutcome::Rejected(r) => {
                return Err(format!("client {client_idx} graph {gid}: rejected: {r}"));
            }
            ChaosOutcome::SessionKilled => row.killed += 1,
            ChaosOutcome::Vanished => row.vanished += 1,
        }
    }
    if let Some(c) = conn {
        c.bye();
    }
    Ok(row)
}

fn hw_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The three completion-latency quantile fields, ready to splice into
/// a JSON object (same shape `bench_check`'s latency layer gates).
fn latency_json(h: &Histogram) -> String {
    format!(
        "\"latency_p50_ns\": {}, \"latency_p99_ns\": {}, \"latency_p999_ns\": {}, ",
        h.p50(),
        h.p99(),
        h.p999()
    )
}

fn row_json(bench: &str, engine: &str, r: &Row) -> String {
    let wall = r.wall.as_secs_f64() * 1e3;
    let per_sec =
        if r.wall.as_secs_f64() > 0.0 { r.completed as f64 / r.wall.as_secs_f64() } else { 0.0 };
    format!(
        "{{\"benchmark\": \"{bench}\", \"engine\": \"{engine}\", \"graphs\": {}, \
         \"tasks\": {}, \"completed\": {}, \"slow_ok\": {}, \"killed\": {}, \
         \"vanished\": {}, \"cancelled\": {}, \"deadline_expired\": {}, \"failed\": {}, \
         \"rejected_overloaded\": {}, \"rejected_quota\": {}, \"rejected_malformed\": {}, \
         {}\"wall_ms\": {:.3}, \"graphs_per_sec\": {:.1}}}",
        r.graphs,
        r.tasks,
        r.completed,
        r.slow_ok,
        r.killed,
        r.vanished,
        r.cancelled,
        r.deadline_expired,
        r.failed,
        r.rejected_overloaded,
        r.rejected_quota,
        r.rejected_malformed,
        latency_json(&r.latency),
        wall,
        per_sec,
    )
}

fn to_json(args: &Args, tasks_per_graph: usize, rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tss-bench-serve/v1\",\n");
    s.push_str(&format!("  \"bench\": \"{}\",\n", args.bench.name()));
    s.push_str(&format!("  \"scale\": \"{}\",\n", args.scale.name()));
    s.push_str(&format!("  \"clients\": {},\n", args.clients));
    s.push_str(&format!("  \"graphs_per_client\": {},\n", args.graphs));
    s.push_str(&format!("  \"tasks_per_graph\": {tasks_per_graph},\n"));
    s.push_str(&format!("  \"chunk\": {},\n", args.chunk));
    s.push_str(&format!("  \"deadline_ms\": {},\n", args.deadline_ms));
    s.push_str(&format!("  \"seed\": {},\n", args.seed));
    match args.chaos_seed {
        Some(cs) => s.push_str(&format!("  \"chaos_seed\": {cs},\n")),
        None => s.push_str("  \"chaos_seed\": null,\n"),
    }
    s.push_str(&format!("  \"hw_threads\": {},\n", hw_threads()));
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str("    ");
        s.push_str(&row_json(args.bench.name(), &format!("client-{i}"), r));
        s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ],\n");
    let mut total = Row::default();
    for r in rows {
        total.graphs += r.graphs;
        total.tasks += r.tasks;
        total.completed += r.completed;
        total.slow_ok += r.slow_ok;
        total.killed += r.killed;
        total.vanished += r.vanished;
        total.cancelled += r.cancelled;
        total.deadline_expired += r.deadline_expired;
        total.failed += r.failed;
        total.rejected_overloaded += r.rejected_overloaded;
        total.rejected_quota += r.rejected_quota;
        total.rejected_malformed += r.rejected_malformed;
        total.wall = total.wall.max(r.wall);
        total.latency.merge(&r.latency);
    }
    let per_sec = if total.wall.as_secs_f64() > 0.0 {
        total.completed as f64 / total.wall.as_secs_f64()
    } else {
        0.0
    };
    s.push_str(&format!(
        "  \"totals\": {{\"graphs\": {}, \"tasks\": {}, \"completed\": {}, \"slow_ok\": {}, \
         \"killed\": {}, \"vanished\": {}, \"cancelled\": {}, \"deadline_expired\": {}, \
         \"failed\": {}, \"rejected_overloaded\": {}, \"rejected_quota\": {}, \
         \"rejected_malformed\": {}, {}\"wall_ms\": {:.3}, \"graphs_per_sec\": {:.1}, \
         \"hw_threads\": {}}}\n",
        total.graphs,
        total.tasks,
        total.completed,
        total.slow_ok,
        total.killed,
        total.vanished,
        total.cancelled,
        total.deadline_expired,
        total.failed,
        total.rejected_overloaded,
        total.rejected_quota,
        total.rejected_malformed,
        latency_json(&total.latency),
        total.wall.as_secs_f64() * 1e3,
        per_sec,
        hw_threads(),
    ));
    s.push_str("}\n");
    s
}

fn main() {
    let args = parse_args();
    let trace = args.bench.trace(args.scale, args.seed);
    let tasks_per_graph = trace.len();
    eprintln!(
        "[loadgen] {} clients x {} graphs of {} {} ({} tasks each) against {}{}",
        args.clients,
        args.graphs,
        args.scale.name(),
        args.bench.name(),
        tasks_per_graph,
        args.addr,
        match args.chaos_seed {
            Some(cs) => format!(", wire chaos seed {cs}"),
            None => String::new(),
        },
    );

    let load = Load {
        addr: args.addr,
        graphs: args.graphs,
        deadline_ms: args.deadline_ms,
        chunk: args.chunk,
        retry_max: args.retry_max,
        chaos_seed: args.chaos_seed,
    };
    let workers: Vec<_> = (0..args.clients)
        .map(|client_idx| {
            let trace = trace.clone();
            std::thread::Builder::new()
                .name(format!("loadgen-{client_idx}"))
                .spawn(move || {
                    let started = Instant::now();
                    let mut row = if load.chaos_seed.is_some() {
                        run_chaotic(&load, client_idx, &trace)?
                    } else {
                        run_healthy(&load, client_idx, &trace)?
                    };
                    row.wall = started.elapsed();
                    Ok::<Row, String>(row)
                })
                .expect("spawn loadgen client")
        })
        .collect();
    let mut rows = Vec::with_capacity(workers.len());
    for w in workers {
        match w.join() {
            Ok(Ok(row)) => rows.push(row),
            Ok(Err(msg)) => {
                eprintln!("error: {msg}");
                std::process::exit(1);
            }
            Err(_) => {
                eprintln!("error: a loadgen client thread panicked");
                std::process::exit(1);
            }
        }
    }

    if args.shutdown {
        match Client::connect(args.addr) {
            Ok(mut control) => {
                if let Err(e) = control.shutdown_server() {
                    eprintln!("error: shutdown request failed: {e}");
                    std::process::exit(1);
                }
                control.bye();
            }
            Err(e) => {
                eprintln!("error: cannot connect for --shutdown: {e}");
                std::process::exit(1);
            }
        }
    }

    let json = to_json(&args, tasks_per_graph, &rows);
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|e| fail(format!("cannot write {}: {e}", args.out)));

    if args.json {
        print!("{json}");
    } else {
        let mut table = Table::new(
            format!(
                "Service load ({} x {} graphs of {} {}, {} tasks/graph{})",
                args.clients,
                args.graphs,
                args.scale.name(),
                args.bench.name(),
                tasks_per_graph,
                match args.chaos_seed {
                    Some(cs) => format!(", chaos seed {cs}"),
                    None => String::new(),
                },
            ),
            &[
                "Client", "graphs", "ok", "slow", "killed", "vanish", "shed", "quota", "p50 ms",
                "p99 ms", "wall ms",
            ],
        );
        for (i, r) in rows.iter().enumerate() {
            table.row(vec![
                format!("client-{i}"),
                r.graphs.to_string(),
                r.completed.to_string(),
                r.slow_ok.to_string(),
                r.killed.to_string(),
                r.vanished.to_string(),
                r.rejected_overloaded.to_string(),
                r.rejected_quota.to_string(),
                fmt_f(r.latency.p50() as f64 / 1e6, 2),
                fmt_f(r.latency.p99() as f64 / 1e6, 2),
                fmt_f(r.wall.as_secs_f64() * 1e3, 1),
            ]);
        }
        println!("{}", table.render());
        println!("(wrote {})", args.out);
    }
}
