//! The task-graph execution service (DESIGN.md §14): binds a TCP
//! gateway, serves graph submissions until a drain request arrives —
//! a client `Shutdown` frame, SIGINT, or SIGTERM — then drains
//! gracefully and prints the outcome ledger.
//!
//! Drain (DESIGN.md §14.4) stops admissions immediately, lets admitted
//! graphs finish within `--drain-deadline-ms`, cancels stragglers, and
//! only then closes sessions — every accepted graph gets a terminal
//! `Done` before the socket goes away.
//!
//! Flags: `--host H --port N` (port 0 picks an ephemeral port;
//! `--port-file PATH` writes the bound `host:port` once listening, so
//! scripts can wait for readiness instead of sleeping), sizing
//! (`--exec-threads`, `--runners`, `--quota`, `--max-queued-graphs`,
//! `--max-queued-tasks`, `--max-graph-tasks`), timing
//! (`--retry-after-ms`, `--drain-deadline-ms`, `--read-timeout-ms`),
//! and the payload (`--payload noop|spin|memcpy|mixed`,
//! `--spin-scale F` for the timed payloads, `--seed N`). Bad values
//! and bad combinations exit 2 naming the offending flag.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use tss_exec::PayloadMode;
use tss_server::{Server, ServerConfig};

/// Set by the signal handler; polled by the watcher thread.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_sig: i32) {
    // Only an atomic store: async-signal-safe.
    SIGNALLED.store(true, Ordering::Release);
}

// The workspace is offline (vendor/README.md) and does not carry the
// libc crate, so signal(2) is declared directly. `sighandler_t` is a
// plain function pointer on every platform this runs on (linux CI).
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

/// CLI contract: bad input is a user error, not a bug (exit 2).
fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg} (try --help)");
    std::process::exit(2);
}

fn want(value: Option<String>, flag: &str) -> String {
    value.unwrap_or_else(|| fail(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(raw: &str, what: &str) -> T {
    raw.parse().unwrap_or_else(|_| fail(format!("{what} must be a number, got '{raw}'")))
}

struct Args {
    host: String,
    port: u16,
    port_file: Option<String>,
    cfg: ServerConfig,
}

fn parse_args() -> Args {
    let mut out =
        Args { host: "127.0.0.1".into(), port: 0, port_file: None, cfg: ServerConfig::default() };
    let mut payload_name = String::from("noop");
    let mut spin_scale: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--host" => out.host = want(args.next(), "--host"),
            "--port" => out.port = parse_num(&want(args.next(), "--port"), "--port"),
            "--port-file" => out.port_file = Some(want(args.next(), "--port-file")),
            "--exec-threads" => {
                out.cfg.exec_threads =
                    parse_num(&want(args.next(), "--exec-threads"), "--exec-threads");
                if out.cfg.exec_threads == 0 {
                    fail("--exec-threads must be at least 1");
                }
            }
            "--runners" => {
                out.cfg.runners = parse_num(&want(args.next(), "--runners"), "--runners");
                if out.cfg.runners == 0 {
                    fail("--runners must be at least 1");
                }
            }
            "--quota" => {
                out.cfg.quota = parse_num(&want(args.next(), "--quota"), "--quota");
                if out.cfg.quota == 0 {
                    fail("--quota must be at least 1 graph per session");
                }
            }
            "--max-queued-graphs" => {
                out.cfg.max_queued_graphs =
                    parse_num(&want(args.next(), "--max-queued-graphs"), "--max-queued-graphs");
                if out.cfg.max_queued_graphs == 0 {
                    fail("--max-queued-graphs must be at least 1");
                }
            }
            "--max-queued-tasks" => {
                out.cfg.max_queued_tasks =
                    parse_num(&want(args.next(), "--max-queued-tasks"), "--max-queued-tasks");
                if out.cfg.max_queued_tasks == 0 {
                    fail("--max-queued-tasks must be at least 1");
                }
            }
            "--max-graph-tasks" => {
                out.cfg.max_graph_tasks =
                    parse_num(&want(args.next(), "--max-graph-tasks"), "--max-graph-tasks");
                if out.cfg.max_graph_tasks == 0 {
                    fail("--max-graph-tasks must be at least 1");
                }
            }
            "--retry-after-ms" => {
                out.cfg.retry_after_ms =
                    parse_num(&want(args.next(), "--retry-after-ms"), "--retry-after-ms");
            }
            "--drain-deadline-ms" => {
                let ms: u64 =
                    parse_num(&want(args.next(), "--drain-deadline-ms"), "--drain-deadline-ms");
                if ms == 0 {
                    fail("--drain-deadline-ms must be at least 1 ms (0 would cancel every drain)");
                }
                out.cfg.drain_deadline = Duration::from_millis(ms);
            }
            "--read-timeout-ms" => {
                let ms: u64 =
                    parse_num(&want(args.next(), "--read-timeout-ms"), "--read-timeout-ms");
                if ms == 0 {
                    fail("--read-timeout-ms must be at least 1 ms (0 would time every read out)");
                }
                out.cfg.read_timeout = Duration::from_millis(ms);
            }
            "--payload" => payload_name = want(args.next(), "--payload"),
            "--spin-scale" => {
                spin_scale = Some(parse_num(&want(args.next(), "--spin-scale"), "--spin-scale"));
            }
            "--seed" => out.cfg.seed = parse_num(&want(args.next(), "--seed"), "--seed"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: serve [--host H] [--port N] [--port-file PATH] \
                     [--exec-threads N] [--runners N] [--quota N] \
                     [--max-queued-graphs N] [--max-queued-tasks N] [--max-graph-tasks N] \
                     [--retry-after-ms N] [--drain-deadline-ms N] [--read-timeout-ms N] \
                     [--payload noop|spin|memcpy|mixed] [--spin-scale F] [--seed N]"
                );
                std::process::exit(0);
            }
            other => fail(format!("unknown flag '{other}'")),
        }
    }
    // Fault injection is a client-side chaos concern; the server side
    // already runs every graph under quarantine (DESIGN.md §14.3).
    if payload_name == "faulty" {
        fail("--payload faulty is not servable; pick noop|spin|memcpy|mixed");
    }
    out.cfg.payload =
        PayloadMode::parse(&payload_name, spin_scale.unwrap_or(1.0)).unwrap_or_else(|| {
            fail(format!("unknown payload '{payload_name}' (noop|spin|memcpy|mixed)"))
        });
    // A spin scale on an untimed payload would be silently ignored —
    // name the combination instead of lying about what ran.
    if spin_scale.is_some()
        && !matches!(out.cfg.payload, PayloadMode::Spin { .. } | PayloadMode::Mixed { .. })
    {
        fail(format!("--spin-scale only applies to --payload spin or mixed, not {payload_name}"));
    }
    out
}

fn main() {
    let args = parse_args();
    // SAFETY: signal(2) with a handler that only stores to an
    // AtomicBool — async-signal-safe (no allocation, locking, or
    // panicking in signal context), and the fn pointer has the exact
    // `extern "C" fn(i32)` ABI the declaration promises.
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }

    let bind = format!("{}:{}", args.host, args.port);
    let server = Server::start(args.cfg.clone(), &bind)
        .unwrap_or_else(|e| fail(format!("cannot bind {bind}: {e}")));
    let addr = server.local_addr();
    if let Some(path) = &args.port_file {
        std::fs::write(path, format!("{addr}\n"))
            .unwrap_or_else(|e| fail(format!("cannot write --port-file {path}: {e}")));
    }
    eprintln!(
        "[serve] listening on {addr} ({} exec threads x {} runners, quota {}, \
         watermarks {} graphs / {} tasks, payload {})",
        args.cfg.exec_threads,
        args.cfg.runners,
        args.cfg.quota,
        args.cfg.max_queued_graphs,
        args.cfg.max_queued_tasks,
        args.cfg.payload.name(),
    );

    // Signal watcher: turns SIGINT/SIGTERM into a drain request. Also
    // exits quietly if a client's Shutdown frame drained first.
    let handle = server.drain_handle();
    let watcher = std::thread::Builder::new().name("tss-signal".into()).spawn(move || loop {
        if SIGNALLED.load(Ordering::Acquire) {
            eprintln!("[serve] signal received; draining");
            handle.request_drain();
            return;
        }
        if handle.draining() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    });
    if let Err(e) = watcher {
        fail(format!("cannot spawn the signal watcher: {e}"));
    }

    let s = server.wait();
    eprintln!(
        "[serve] drained in {:.1} ms ({}): {} accepted = {} completed + {} cancelled + \
         {} deadline-expired + {} failed",
        s.drain_wall.as_secs_f64() * 1e3,
        if s.drain_deadline_hit { "deadline hit, stragglers cancelled" } else { "clean" },
        s.accepted,
        s.completed,
        s.cancelled,
        s.deadline_expired,
        s.failed,
    );
    eprintln!(
        "[serve] rejects: {} overloaded, {} quota, {} malformed, {} draining, {} graph-state; \
         {} sessions ({} killed by protocol errors), {} undelivered Done",
        s.rejected_overloaded,
        s.rejected_quota,
        s.rejected_malformed,
        s.rejected_draining,
        s.rejected_graph_state,
        s.sessions,
        s.session_errors,
        s.undelivered_done,
    );
}
