//! Regenerates the **Figure 11** storage analysis: the inode block
//! layout (1 main + up to 3 indirect 128 B blocks) and the measured
//! internal fragmentation — "the average waste is only ~20% of the
//! allocated memory" (Section IV.B.2).

use tss_bench::HarnessArgs;
use tss_core::report::fmt_f;
use tss_core::{SystemBuilder, Table};
use tss_pipeline::blocks::{blocks_for_operands, fragmentation_waste};

fn main() {
    let args = HarnessArgs::parse();

    let mut layout = Table::new(
        "Figure 11: inode layout (128 B blocks)",
        &["operands", "blocks", "bytes", "waste"],
    );
    for ops in [1usize, 2, 3, 4, 5, 9, 10, 14, 15, 19] {
        let blocks = blocks_for_operands(ops);
        layout.row(vec![
            ops.to_string(),
            blocks.to_string(),
            (blocks as u64 * 128).to_string(),
            fmt_f(fragmentation_waste(ops, 128) * 100.0, 0) + "%",
        ]);
    }
    args.emit(&layout);

    let mut measured = Table::new(
        "Measured TRS storage waste per benchmark (paper: ~20% average)",
        &["Benchmark", "avg waste", "peak window (tasks)"],
    );
    // One fabric point per benchmark; the average is folded afterwards
    // in catalog order, so the sum (and stdout) is jobs-invariant.
    let rows = args.sweep_benchmarks(|bench, trace| {
        let report = SystemBuilder::new().processors(256).skip_validation().run_hardware(&trace);
        let fe = report.frontend.expect("hardware run");
        eprintln!("  [fig11] {bench} done");
        (fe.avg_storage_waste, bench.name().to_string(), report.window_peak)
    });
    let mut sum = 0.0;
    for (waste, name, window_peak) in rows {
        sum += waste;
        measured.row(vec![name, fmt_f(waste * 100.0, 1) + "%", window_peak.to_string()]);
    }
    args.emit(&measured);
    println!("average waste across benchmarks: {:.1}%", sum / 9.0 * 100.0);
}
