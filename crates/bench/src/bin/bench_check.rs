//! Baseline gate for the bench-harness JSON artifacts (ISSUE 4
//! satellite): compare a fresh `BENCH_exec.json` / `BENCH_pipeline.json`
//! run against the committed snapshot under `ci/baselines/`, so the
//! bench trajectory is tracked *in-repo* instead of only as uploaded CI
//! artifacts.
//!
//! Three layers of checks:
//!
//! The `totals` object (when the baseline has one) is gated too:
//! `events` exactly, `wall_ms`/`suite_wall_ms` under the wall
//! tolerance, and structural fields (`suite_wall_ms`, `jobs` — the
//! ISSUE 5 sweep-fabric additions — and `hw_threads`, the ISSUE 9
//! honest-scaling stamp) must at least be *present* in the fresh
//! artifact whenever the baseline carries them, so a regression that
//! silently drops them fails the gate.
//!
//! Two kinds of checks per result row (rows are matched positionally
//! and must agree on `benchmark`/`engine`):
//!
//! - **Exact**: structural fields (`tasks`, `events`, `enforced_edges`,
//!   `makespan_cycles`) must be *equal* — these are deterministic at a
//!   fixed scale/seed, so any drift is a model change that must be
//!   re-baselined deliberately.
//! - **Tolerance**: wall-time fields (`wall_ms`, `exec_wall_ms`,
//!   `stream_wall_ms`) must satisfy `fresh <= max(baseline *
//!   tolerance, baseline + min_ms)` (defaults 2.0 and 2.5 ms —
//!   generous on purpose: CI hosts are slower and noisier than the
//!   dev box, and sub-millisecond small-scale walls are pure jitter;
//!   the gate catches order-of-magnitude regressions, not noise).
//!   Faster-than-baseline is always fine.
//! - **Latency** (ISSUE 8): the sampled-quantile fields an obs build
//!   emits (`latency_p50/p99/p999_ns`, `queue_p50/p99/p999_ns`) are
//!   *presence-gated* — if the baseline carries one and the fresh
//!   artifact doesn't, the obs feature was dropped from the gated run
//!   and the gate fails. Values get their own generous tolerance
//!   (quantiles of a sampled distribution are far noisier than suite
//!   walls): `fresh <= max(baseline * 10, baseline + 500 µs)`.
//!
//! The parser is a minimal depth-aware scanner, not a JSON library: the
//! workspace is offline (vendor/README.md) and both artifacts are
//! emitted by binaries in this same crate, so the format is under our
//! control and pinned by this very gate.
//!
//! Usage: `bench_check --baseline PATH --fresh PATH [--tolerance F]
//! [--min-ms F]`. Exit codes: 0 ok, 1 regression/mismatch, 2 usage or
//! I/O error.

/// Exact-match row fields. All presence-gated (only checked when both
/// artifacts carry them, so old baselines keep working). The failure
/// accounting (`failed`, `poisoned`, `retried_ok`, `workers_lost` —
/// DESIGN.md §11) is exact because injection is a pure function of
/// `(fault seed, task, attempt)`: at a fixed seed/rate/scale the
/// failure sets are identical across hosts and thread counts.
/// The serve-artifact counters (`BENCH_serve.json`, DESIGN.md §14.5)
/// are exact for the same reason: the wire-chaos plan is a pure
/// function of `(chaos seed, client, graph)`, so given admission
/// headroom every completion/kill/vanish count is reproducible.
const EXACT_FIELDS: [&str; 16] = [
    "tasks",
    "events",
    "enforced_edges",
    "makespan_cycles",
    "failed",
    "poisoned",
    "retried_ok",
    "workers_lost",
    "graphs",
    "completed",
    "slow_ok",
    "killed",
    "vanished",
    "rejected_overloaded",
    "rejected_quota",
    "rejected_malformed",
];
const WALL_FIELDS: [&str; 3] = ["wall_ms", "exec_wall_ms", "stream_wall_ms"];
/// Sampled latency quantiles (ns) from obs builds — presence-gated with
/// their own tolerance (see the module docs). Checked on rows *and* on
/// `totals`.
const LATENCY_FIELDS: [&str; 6] = [
    "latency_p50_ns",
    "latency_p99_ns",
    "latency_p999_ns",
    "queue_p50_ns",
    "queue_p99_ns",
    "queue_p999_ns",
];
/// Latency ratio tolerance: p999 of ~30 samples per small-scale row
/// jumps an order of magnitude on a noisy host without meaning anything.
const LAT_TOLERANCE: f64 = 10.0;
/// Latency absolute floor: 500 µs. Sub-floor quantiles are scheduler
/// jitter; the gate exists to catch a latency path going seconds-slow.
const LAT_FLOOR_NS: f64 = 500_000.0;
const LABEL_FIELDS: [&str; 2] = ["benchmark", "engine"];
/// Totals-object checks: exact, wall-tolerance, and must-exist-if-the-
/// baseline-has-it (host-dependent values like `jobs` are only gated
/// for presence).
const TOTAL_EXACT_FIELDS: [&str; 13] = [
    "events",
    "failed",
    "poisoned",
    "retried_ok",
    "workers_lost",
    "graphs",
    "completed",
    "slow_ok",
    "killed",
    "vanished",
    "rejected_overloaded",
    "rejected_quota",
    "rejected_malformed",
];
const TOTAL_WALL_FIELDS: [&str; 2] = ["wall_ms", "suite_wall_ms"];
const TOTAL_PRESENT_FIELDS: [&str; 3] = ["suite_wall_ms", "jobs", "hw_threads"];

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("bench_check: error: {msg}");
    std::process::exit(2);
}

/// Extracts the `"totals": { ... }` object substring, if present.
fn totals_body(doc: &str) -> Option<&str> {
    let key = "\"totals\":";
    let start = doc.find(key)?;
    let open = doc[start..].find('{')? + start;
    let mut depth = 0usize;
    for (i, c) in doc[open..].char_indices() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&doc[open..=open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts the `"results": [ ... ]` array body (depth-aware).
fn results_body(doc: &str) -> &str {
    let key = "\"results\":";
    let start = doc.find(key).unwrap_or_else(|| fail("no \"results\" array in document"));
    let open = doc[start..].find('[').unwrap_or_else(|| fail("malformed results array")) + start;
    let mut depth = 0usize;
    for (i, c) in doc[open..].char_indices() {
        match c {
            '[' | '{' => depth += 1,
            ']' | '}' => {
                depth -= 1;
                if depth == 0 {
                    return &doc[open + 1..open + i];
                }
            }
            _ => {}
        }
    }
    fail("unterminated results array")
}

/// Splits the array body into top-level `{...}` object substrings.
fn split_objects(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    for (i, c) in body.char_indices() {
        match c {
            '{' | '[' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' | ']' => {
                depth -= 1;
                if depth == 0 {
                    out.push(&body[start.expect("object start")..=i]);
                }
            }
            _ => {}
        }
    }
    out
}

/// Value of `"key":` inside `obj` as a raw token (string values keep
/// their quotes stripped), or `None` if absent at the top level.
fn field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = obj.find(&pat)?;
    let rest = obj[at + pat.len()..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        return Some(stripped[..end].to_string());
    }
    let end = rest
        .find(|c: char| c == ',' || c == '}' || c == ']' || c.is_whitespace())
        .unwrap_or(rest.len());
    Some(rest[..end].to_string())
}

fn label(obj: &str) -> String {
    LABEL_FIELDS.iter().filter_map(|k| field(obj, k)).collect::<Vec<_>>().join("/")
}

/// The latency layer for one object pair (a results row or `totals`):
/// presence-gated, then value-checked under the latency tolerance.
fn check_latency(who: &str, b: &str, f: &str, problems: &mut Vec<String>, checked: &mut usize) {
    for key in LATENCY_FIELDS {
        match (field(b, key), field(f, key)) {
            (Some(bv), Some(fv)) => {
                let (bv, fv): (f64, f64) = (
                    bv.parse().unwrap_or_else(|_| fail(format!("{who}: bad {key} '{bv}'"))),
                    fv.parse().unwrap_or_else(|_| fail(format!("{who}: bad {key} '{fv}'"))),
                );
                *checked += 1;
                if fv > (bv * LAT_TOLERANCE).max(bv + LAT_FLOOR_NS) {
                    problems.push(format!(
                        "{who}: {key} regressed {bv:.0} -> {fv:.0} ns \
                         (> {LAT_TOLERANCE}x tolerance, +{LAT_FLOOR_NS:.0} ns floor)"
                    ));
                }
            }
            (Some(_), None) => problems.push(format!(
                "{who}: latency field '{key}' present in baseline but missing in fresh \
                 (was the obs feature dropped from the gated run?)"
            )),
            _ => {}
        }
    }
}

fn main() {
    let mut baseline_path = None;
    let mut fresh_path = None;
    let mut tolerance = 2.0f64;
    let mut min_ms = 2.5f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => baseline_path = args.next(),
            "--fresh" => fresh_path = args.next(),
            "--tolerance" => {
                let v = args.next().unwrap_or_else(|| fail("--tolerance needs a value"));
                tolerance = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--tolerance must be a number, got '{v}'")));
            }
            "--min-ms" => {
                let v = args.next().unwrap_or_else(|| fail("--min-ms needs a value"));
                min_ms = v
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--min-ms must be a number, got '{v}'")));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench_check --baseline PATH --fresh PATH [--tolerance F] [--min-ms F]"
                );
                std::process::exit(0);
            }
            other => fail(format!("unknown flag '{other}'")),
        }
    }
    let baseline_path = baseline_path.unwrap_or_else(|| fail("--baseline is required"));
    let fresh_path = fresh_path.unwrap_or_else(|| fail("--fresh is required"));
    let baseline = std::fs::read_to_string(&baseline_path)
        .unwrap_or_else(|e| fail(format!("cannot read {baseline_path}: {e}")));
    let fresh = std::fs::read_to_string(&fresh_path)
        .unwrap_or_else(|e| fail(format!("cannot read {fresh_path}: {e}")));

    let base_rows = split_objects(results_body(&baseline));
    let fresh_rows = split_objects(results_body(&fresh));
    let mut problems = Vec::new();
    if base_rows.len() != fresh_rows.len() {
        problems.push(format!(
            "row count: baseline has {}, fresh has {}",
            base_rows.len(),
            fresh_rows.len()
        ));
    }
    let mut walls_checked = 0usize;
    let mut lats_checked = 0usize;
    for (b, f) in base_rows.iter().zip(fresh_rows.iter()) {
        let who = label(b);
        if label(f) != who {
            problems.push(format!("row order: baseline '{}' vs fresh '{}'", who, label(f)));
            continue;
        }
        for key in EXACT_FIELDS {
            if let (Some(bv), Some(fv)) = (field(b, key), field(f, key)) {
                if bv != fv {
                    problems
                        .push(format!("{who}: {key} changed {bv} -> {fv} (must match exactly)"));
                }
            }
        }
        for key in WALL_FIELDS {
            if let (Some(bv), Some(fv)) = (field(b, key), field(f, key)) {
                let (bv, fv): (f64, f64) = (
                    bv.parse().unwrap_or_else(|_| fail(format!("{who}: bad {key} '{bv}'"))),
                    fv.parse().unwrap_or_else(|_| fail(format!("{who}: bad {key} '{fv}'"))),
                );
                walls_checked += 1;
                // Ratio gate with an absolute noise floor: a 0.1 ms
                // small-scale wall doubling is host jitter, not a
                // regression.
                if fv > (bv * tolerance).max(bv + min_ms) {
                    problems.push(format!(
                        "{who}: {key} regressed {bv:.3} -> {fv:.3} ms \
                         (> {tolerance}x tolerance, +{min_ms} ms floor)"
                    ));
                }
            }
        }
        check_latency(&who, b, f, &mut problems, &mut lats_checked);
    }
    if walls_checked == 0 {
        problems.push("no wall-time fields found to compare (wrong artifact?)".to_string());
    }
    // Totals layer: only active when the baseline carries a totals
    // object (both artifacts do today; this keeps the gate usable on
    // older snapshots). A fresh artifact with no totals at all is one
    // defect, reported once.
    if let (Some(bt), ft) = (totals_body(&baseline), totals_body(&fresh)) {
        let Some(ft) = ft else {
            problems.push("totals: baseline has a totals object, fresh does not".into());
            fail_with(problems, &baseline_path);
        };
        for key in TOTAL_EXACT_FIELDS {
            if let (Some(bv), Some(fv)) = (field(bt, key), field(ft, key)) {
                if bv != fv {
                    problems
                        .push(format!("totals: {key} changed {bv} -> {fv} (must match exactly)"));
                }
            }
        }
        for key in TOTAL_WALL_FIELDS {
            if let (Some(bv), Some(fv)) = (field(bt, key), field(ft, key)) {
                let (bv, fv): (f64, f64) = (
                    bv.parse().unwrap_or_else(|_| fail(format!("totals: bad {key} '{bv}'"))),
                    fv.parse().unwrap_or_else(|_| fail(format!("totals: bad {key} '{fv}'"))),
                );
                walls_checked += 1;
                if fv > (bv * tolerance).max(bv + min_ms) {
                    problems.push(format!(
                        "totals: {key} regressed {bv:.3} -> {fv:.3} ms \
                         (> {tolerance}x tolerance, +{min_ms} ms floor)"
                    ));
                }
            }
        }
        for key in TOTAL_PRESENT_FIELDS {
            if field(bt, key).is_some() && field(ft, key).is_none() {
                problems.push(format!(
                    "totals: structural field '{key}' present in baseline but missing in fresh"
                ));
            }
        }
        check_latency("totals", bt, ft, &mut problems, &mut lats_checked);
    }
    if problems.is_empty() {
        println!(
            "bench_check: {} rows ok vs {} ({} wall fields within {tolerance}x, \
             {lats_checked} latency fields within {LAT_TOLERANCE}x)",
            fresh_rows.len(),
            baseline_path,
            walls_checked,
        );
    } else {
        fail_with(problems, &baseline_path);
    }
}

/// Prints every problem and exits 1 (regression/mismatch).
fn fail_with(problems: Vec<String>, baseline_path: &str) -> ! {
    for p in &problems {
        eprintln!("bench_check: FAIL: {p}");
    }
    eprintln!(
        "bench_check: {} problem(s) vs {baseline_path}; if the model legitimately \
         changed, regenerate the snapshot under ci/baselines/ in the same PR",
        problems.len()
    );
    std::process::exit(1);
}
