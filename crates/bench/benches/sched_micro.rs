//! Microbenchmarks for the pluggable scheduling core (DESIGN.md §13):
//! the per-idle-scan victim-selection cost of every policy, and the
//! locality policy's class-routing dispatch/drain round trip — the two
//! new hot-path seams the §13 refactor added to the worker loop. A
//! regression here is a regression in *every* replay, so it should
//! show up in `cargo bench` before it shows up in `BENCH_exec.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tss_exec::deque::rotate_victims;
use tss_exec::{
    ChaseLev, CostAwarePolicy, FifoPolicy, LifoPolicy, LocalityPolicy, PayloadMode, SchedPolicy,
};
use tss_trace::{TaskTrace, TraceGenerator};
use tss_workloads::mixed::MixedGen;

const THREADS: usize = 16;

fn mixed_trace() -> TaskTrace {
    MixedGen::new(32, 8).generate(42)
}

/// The raw rotation seam, then each policy's full victim scan at 16
/// workers — what every idle worker pays before it can park.
fn victim_selection(c: &mut Criterion) {
    let trace = mixed_trace();
    let payload = PayloadMode::Mixed { time_scale: 1.0 };
    let mut g = c.benchmark_group("sched_victims");
    g.throughput(Throughput::Elements(1));

    g.bench_function("rotate_victims_16", |b| {
        let mut buf = Vec::with_capacity(THREADS);
        let mut r = 0u64;
        b.iter(|| {
            r = r.wrapping_add(0x9E37);
            rotate_victims(3, THREADS, r, &mut buf);
            std::hint::black_box(buf.last().copied())
        })
    });

    macro_rules! policy_scan {
        ($name:literal, $ty:ty) => {
            g.bench_function($name, |b| {
                let p = <$ty>::new(&trace, payload, THREADS, 2, 4);
                let mut rng = 42u64;
                let mut buf = Vec::with_capacity(THREADS);
                b.iter(|| {
                    p.victims(3, &mut rng, &mut buf);
                    std::hint::black_box(buf.last().copied())
                })
            });
        };
    }
    policy_scan!("lifo_scan_16", LifoPolicy);
    policy_scan!("fifo_scan_16", FifoPolicy);
    policy_scan!("cost_scan_16", CostAwarePolicy);
    policy_scan!("locality_scan_16", LocalityPolicy);
    g.finish();
}

/// Class routing: dispatch a batch of mixed-class ready tasks from one
/// completing worker, then drain them back — own-deque pushes for
/// same-class tasks, class-queue round trips for cross-class ones.
fn class_routing(c: &mut Criterion) {
    let trace = mixed_trace();
    let payload = PayloadMode::Mixed { time_scale: 1.0 };
    let batch: Vec<u32> = (0..256u32).collect();
    let mut g = c.benchmark_group("sched_routing");
    g.throughput(Throughput::Elements(batch.len() as u64));

    g.bench_function("locality_dispatch_drain_256", |b| {
        let p = LocalityPolicy::new(&trace, payload, THREADS, 2, 4);
        let me = ChaseLev::with_capacity(512);
        // Worker 0 is compute-class; the trace alternates stream
        // (memory) and crunch (compute) tasks, so half the batch routes
        // through the class queue and half lands on the own deque.
        b.iter(|| {
            let mut routed = 0usize;
            for &t in &batch {
                if !p.dispatch(0, t, &me) {
                    routed += 1;
                }
            }
            while p.take_routed(THREADS - 1).is_some() {}
            while me.pop().is_some() {}
            std::hint::black_box(routed)
        })
    });

    g.bench_function("baseline_dispatch_drain_256", |b| {
        let p = LifoPolicy::new(&trace, payload, THREADS, 2, 4);
        let me = ChaseLev::with_capacity(512);
        b.iter(|| {
            for &t in &batch {
                p.dispatch(0, t, &me);
            }
            while p.take_local(0, &me).is_some() {}
        })
    });
    g.finish();
}

criterion_group!(benches, victim_selection, class_routing);
criterion_main!(benches);
