//! Criterion benchmarks that time the regeneration of each paper
//! table/figure point at CI scale — one group per table/figure, so
//! `cargo bench` exercises every experiment end to end and tracks
//! simulator performance regressions.
//!
//! (The full-scale numbers are produced by the `tss-bench` harness
//! binaries; see DESIGN.md §4.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tss_core::experiments::{
    decode_rate_sweep, ort_capacity_sweep, scalability_sweep, trs_capacity_sweep,
};
use tss_core::SystemBuilder;
use tss_workloads::{Benchmark, Scale};

fn table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_task_info");
    g.sample_size(10);
    g.bench_function("all_benchmarks_small", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for bench in Benchmark::all() {
                let tr = bench.trace(Scale::Small, 1);
                acc += tr.avg_runtime() + tr.avg_data_bytes();
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn fig12_decode_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_decode_rate");
    g.sample_size(10);
    let cholesky = Benchmark::Cholesky.trace(Scale::Small, 1);
    g.bench_function("cholesky_4trs_4ort", |b| {
        b.iter(|| decode_rate_sweep(black_box(&cholesky), &[4], &[4], 1))
    });
    let h264 = Benchmark::H264.trace(Scale::Small, 1);
    g.bench_function("h264_4trs_4ort", |b| {
        b.iter(|| decode_rate_sweep(black_box(&h264), &[4], &[4], 1))
    });
    g.finish();
}

fn fig13_average_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_average_rate");
    g.sample_size(10);
    let stap = Benchmark::Stap.trace(Scale::Small, 1);
    g.bench_function("stap_operating_point", |b| {
        b.iter(|| decode_rate_sweep(black_box(&stap), &[8], &[2], 1))
    });
    g.finish();
}

fn fig14_ort_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_ort_capacity");
    g.sample_size(10);
    let tr = Benchmark::KMeans.trace(Scale::Small, 1);
    g.bench_function("kmeans_two_points", |b| {
        b.iter(|| ort_capacity_sweep(black_box(&tr), &[32 << 10, 512 << 10], 64, 1))
    });
    g.finish();
}

fn fig15_trs_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_trs_capacity");
    g.sample_size(10);
    let tr = Benchmark::Fft.trace(Scale::Small, 1);
    g.bench_function("fft_two_points", |b| {
        b.iter(|| trs_capacity_sweep(black_box(&tr), &[256 << 10, 2 << 20], 64, 1))
    });
    g.finish();
}

fn fig16_scalability(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_scalability");
    g.sample_size(10);
    let tr = Benchmark::MatMul.trace(Scale::Small, 1);
    g.bench_function("matmul_hw_vs_sw_64p", |b| {
        b.iter(|| scalability_sweep(black_box(&tr), &[64], 1))
    });
    g.finish();
}

fn full_system_throughput(c: &mut Criterion) {
    // Simulator throughput: how fast the simulation itself runs (tasks
    // simulated per wall-clock second) — the practical cost of every
    // figure above.
    let mut g = c.benchmark_group("simulator_throughput");
    g.sample_size(10);
    let tr = Benchmark::Cholesky.trace(Scale::Small, 1);
    g.throughput(criterion::Throughput::Elements(tr.len() as u64));
    g.bench_function("cholesky_small_256p", |b| {
        b.iter(|| {
            SystemBuilder::new().processors(256).skip_validation().run_hardware(black_box(&tr))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    table1,
    fig12_decode_rate,
    fig13_average_rate,
    fig14_ort_capacity,
    fig15_trs_capacity,
    fig16_scalability,
    full_system_throughput
);
criterion_main!(benches);
