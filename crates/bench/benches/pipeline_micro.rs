//! Criterion micro-benchmarks of the frontend's hot data structures:
//! the raw event engine (calendar queue + dispatch, no pipeline logic),
//! the TRS block allocator (Figure 11's free-list design), the
//! dependency oracle, trace generation, and schedule validation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use tss_pipeline::blocks::{blocks_for_operands, BlockStore};
use tss_sim::{Component, ComponentId, Context, Simulation};
use tss_trace::{validate_schedule, DepGraph};
use tss_workloads::{Benchmark, Scale};

// ---------------------------------------------------------------------
// Raw engine: these isolate the event core so a queue regression is
// visible independently of any workload or pipeline behaviour.
// ---------------------------------------------------------------------

/// Relays each message to `next` after `delay` cycles, `left` times.
struct Relay {
    next: ComponentId,
    delay: u64,
    left: u32,
}

impl Component<u32> for Relay {
    fn on_message(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
        if self.left > 0 {
            self.left -= 1;
            ctx.send(self.next, self.delay, msg);
        } else {
            ctx.request_stop();
        }
    }
}

/// Counts deliveries; used as a sink for fan-out storms.
struct Sink {
    seen: u64,
}

impl Component<u32> for Sink {
    fn on_message(&mut self, _msg: u32, _ctx: &mut Context<'_, u32>) {
        self.seen += 1;
    }
}

/// Sprays `fanout` messages at every delivery until `rounds` runs out:
/// keeps the queue at a steady depth of ~`fanout` with far-flung delays.
struct Sprayer {
    targets: Vec<ComponentId>,
    delays: [u64; 4],
    rounds: u32,
}

impl Component<u32> for Sprayer {
    fn on_message(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
        if msg == 0 {
            if self.rounds == 0 {
                ctx.request_stop();
                return;
            }
            self.rounds -= 1;
            for (i, &t) in self.targets.iter().enumerate() {
                ctx.send(t, self.delays[i % self.delays.len()], 1);
            }
            let me = ctx.self_id();
            // Re-arm after the longest delay so every round drains.
            ctx.send(me, 1 + *self.delays.iter().max().expect("non-empty"), 0);
        }
    }
}

fn bench_engine_core(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_core");

    // Two components bouncing one event: pure push/pop/dispatch latency
    // with a queue depth of exactly 1.
    g.bench_function("ping_pong_chain_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let a = sim.add(Relay { next: ComponentId::from_index(1), delay: 7, left: 10_000 });
            let bounce = sim.add(Relay { next: a, delay: 9, left: 10_000 });
            sim.component_mut::<Relay>(a).next = bounce;
            sim.schedule(0, a, 1u32);
            sim.run();
            black_box(sim.events_processed())
        })
    });

    // One producer fanning out to 64 sinks per round across mixed
    // delays (same-segment and level-1 horizons): steady queue depth.
    g.bench_function("fan_out_64x200", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let sinks: Vec<ComponentId> = (0..64).map(|_| sim.add(Sink { seen: 0 })).collect();
            let sprayer =
                sim.add(Sprayer { targets: sinks, delays: [3, 40, 5_000, 80_000], rounds: 200 });
            sim.schedule(0, sprayer, 0u32);
            sim.run();
            black_box(sim.events_processed())
        })
    });

    // Thousands of events landing on the same cycle: stresses the
    // FIFO-within-cycle path (bucket append + drain order).
    g.bench_function("same_cycle_storm_8k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let sink = sim.add(Sink { seen: 0 });
            for i in 0..8_192u32 {
                sim.schedule(1_000, sink, i);
            }
            sim.run();
            let seen = sim.component::<Sink>(sink).seen;
            assert_eq!(seen, 8_192);
            black_box(seen)
        })
    });

    g.finish();
}

// ---------------------------------------------------------------------
// Dispatch mechanics (ISSUE 5): the same traffic through the default
// dyn store vs a monomorphized enum store, and the same-cycle storm via
// queued events vs zero-delay fast-lane chains.
// ---------------------------------------------------------------------

/// Minimal monomorphized store over the bench components — the
/// `SystemStore` pattern at micro scale, so dyn-vs-static dispatch is
/// measured with identical handler code.
enum MicroComponent {
    Relay(Relay),
    Sink(Sink),
}

#[derive(Default)]
struct MicroStore {
    items: Vec<MicroComponent>,
}

impl tss_sim::ComponentStore<u32> for MicroStore {
    #[inline]
    fn deliver(&mut self, dst: ComponentId, msg: u32, ctx: &mut Context<'_, u32>) {
        match &mut self.items[dst.index()] {
            MicroComponent::Relay(c) => c.on_message(msg, ctx),
            MicroComponent::Sink(c) => c.on_message(msg, ctx),
        }
    }
    fn len(&self) -> usize {
        self.items.len()
    }
}

impl tss_sim::Insert<Relay> for MicroStore {
    fn insert(&mut self, c: Relay) -> usize {
        self.items.push(MicroComponent::Relay(c));
        self.items.len() - 1
    }
}

impl tss_sim::Insert<Sink> for MicroStore {
    fn insert(&mut self, c: Sink) -> usize {
        self.items.push(MicroComponent::Sink(c));
        self.items.len() - 1
    }
}

impl tss_sim::Extract<Relay> for MicroStore {
    fn get(&self, index: usize) -> Option<&Relay> {
        match self.items.get(index)? {
            MicroComponent::Relay(c) => Some(c),
            _ => None,
        }
    }
    fn get_mut(&mut self, index: usize) -> Option<&mut Relay> {
        match self.items.get_mut(index)? {
            MicroComponent::Relay(c) => Some(c),
            _ => None,
        }
    }
}

/// Emits `left` zero-delay messages, one per delivery: a same-cycle
/// storm carried entirely by the fast lane.
struct FastChain {
    sink: ComponentId,
    left: u32,
}

impl Component<u32> for FastChain {
    fn on_message(&mut self, msg: u32, ctx: &mut Context<'_, u32>) {
        if self.left > 0 {
            self.left -= 1;
            ctx.send(self.sink, 0, msg);
            let me = ctx.self_id();
            ctx.send(me, 0, msg);
        }
    }
}

fn bench_engine_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_dispatch");

    // Identical ping-pong traffic, boxed-dyn vs enum-static dispatch:
    // the gap is the vtable hop + lost inlining, nothing else.
    g.bench_function("ping_pong_10k_dyn", |b| {
        b.iter(|| {
            let mut sim = Simulation::<u32>::new();
            let a = sim.add(Relay { next: ComponentId::from_index(1), delay: 7, left: 10_000 });
            let bounce = sim.add(Relay { next: a, delay: 9, left: 10_000 });
            sim.component_mut::<Relay>(a).next = bounce;
            sim.schedule(0, a, 1u32);
            sim.run();
            black_box(sim.events_processed())
        })
    });
    g.bench_function("ping_pong_10k_static", |b| {
        b.iter(|| {
            let mut sim = Simulation::<u32, MicroStore>::with_store(MicroStore::default());
            let a = sim.add(Relay { next: ComponentId::from_index(1), delay: 7, left: 10_000 });
            let bounce = sim.add(Relay { next: a, delay: 9, left: 10_000 });
            sim.component_mut::<Relay>(a).next = bounce;
            sim.schedule(0, a, 1u32);
            sim.run();
            black_box(sim.events_processed())
        })
    });

    // 8k same-cycle deliveries: pre-queued (bucket drain) vs generated
    // as a zero-delay chain (fast-lane appends + drains). Both run the
    // dyn store so the delta is purely the queue path.
    g.bench_function("same_cycle_8k_queued", |b| {
        b.iter(|| {
            let mut sim = Simulation::<u32>::new();
            let sink = sim.add(Sink { seen: 0 });
            for i in 0..8_192u32 {
                sim.schedule(1_000, sink, i);
            }
            sim.run();
            black_box(sim.component::<Sink>(sink).seen)
        })
    });
    g.bench_function("same_cycle_8k_fastlane", |b| {
        b.iter(|| {
            let mut sim = Simulation::<u32>::new();
            let sink = sim.add(Sink { seen: 0 });
            let chain = sim.add(FastChain { sink, left: 8_192 });
            sim.schedule(1_000, chain, 0u32);
            sim.run();
            let seen = sim.component::<Sink>(sink).seen;
            assert_eq!(seen, 8_192);
            black_box(seen)
        })
    });

    g.finish();
}

fn bench_block_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_store");
    g.bench_function("alloc_free_3op_task", |b| {
        b.iter_batched_ref(
            || BlockStore::new(6144, 22),
            |store| {
                let a = store.alloc(blocks_for_operands(3)).expect("space");
                store.free(&a.blocks);
                black_box(a.cost_cycles)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("churn_1000_tasks", |b| {
        b.iter_batched_ref(
            || BlockStore::new(6144, 22),
            |store| {
                let mut live = Vec::new();
                for i in 0..1000u32 {
                    let need = blocks_for_operands((i % 8) as usize);
                    if let Some(a) = store.alloc(need) {
                        live.push(a.blocks);
                    }
                    if i % 3 == 0 {
                        if let Some(blocks) = live.pop() {
                            store.free(&blocks);
                        }
                    }
                }
                for blocks in live {
                    store.free(&blocks);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("dependency_oracle");
    g.sample_size(20);
    let cholesky = Benchmark::Cholesky.trace(Scale::Small, 1);
    g.bench_function("graph_build_cholesky_small", |b| {
        b.iter(|| DepGraph::from_trace(black_box(&cholesky)))
    });
    let graph = DepGraph::from_trace(&cholesky);
    let report =
        tss_core::SystemBuilder::new().processors(64).skip_validation().run_hardware(&cholesky);
    g.bench_function("validate_schedule_cholesky_small", |b| {
        b.iter(|| validate_schedule(black_box(&graph), black_box(&report.schedule)))
    });
    g.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.sample_size(10);
    for bench in [Benchmark::Cholesky, Benchmark::H264, Benchmark::Stap] {
        g.bench_function(bench.name(), |b| b.iter(|| bench.trace(Scale::Small, black_box(1))));
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_engine_core,
    bench_engine_dispatch,
    bench_block_store,
    bench_oracle,
    bench_generators
);
criterion_main!(benches);
