//! Criterion micro-benchmarks of the frontend's hot data structures:
//! the TRS block allocator (Figure 11's free-list design), the
//! dependency oracle, trace generation, and schedule validation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use tss_pipeline::blocks::{blocks_for_operands, BlockStore};
use tss_trace::{validate_schedule, DepGraph};
use tss_workloads::{Benchmark, Scale};

fn bench_block_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_store");
    g.bench_function("alloc_free_3op_task", |b| {
        b.iter_batched_ref(
            || BlockStore::new(6144, 22),
            |store| {
                let a = store.alloc(blocks_for_operands(3)).expect("space");
                store.free(&a.blocks);
                black_box(a.cost_cycles)
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("churn_1000_tasks", |b| {
        b.iter_batched_ref(
            || BlockStore::new(6144, 22),
            |store| {
                let mut live = Vec::new();
                for i in 0..1000u32 {
                    let need = blocks_for_operands((i % 8) as usize);
                    if let Some(a) = store.alloc(need) {
                        live.push(a.blocks);
                    }
                    if i % 3 == 0 {
                        if let Some(blocks) = live.pop() {
                            store.free(&blocks);
                        }
                    }
                }
                for blocks in live {
                    store.free(&blocks);
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("dependency_oracle");
    g.sample_size(20);
    let cholesky = Benchmark::Cholesky.trace(Scale::Small, 1);
    g.bench_function("graph_build_cholesky_small", |b| {
        b.iter(|| DepGraph::from_trace(black_box(&cholesky)))
    });
    let graph = DepGraph::from_trace(&cholesky);
    let report =
        tss_core::SystemBuilder::new().processors(64).skip_validation().run_hardware(&cholesky);
    g.bench_function("validate_schedule_cholesky_small", |b| {
        b.iter(|| validate_schedule(black_box(&graph), black_box(&report.schedule)))
    });
    g.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.sample_size(10);
    for bench in [Benchmark::Cholesky, Benchmark::H264, Benchmark::Stap] {
        g.bench_function(bench.name(), |b| b.iter(|| bench.trace(Scale::Small, black_box(1))));
    }
    g.finish();
}

criterion_group!(benches, bench_block_store, bench_oracle, bench_generators);
criterion_main!(benches);
