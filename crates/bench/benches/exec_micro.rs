//! Microbenchmarks for the native executor (`tss-exec`): renamer decode
//! throughput and threaded replay, tracked so scheduler or renamer
//! regressions show up in `cargo bench` like simulator regressions do
//! in `engine_core`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tss_exec::{ExecConfig, Executor, PayloadMode, Renamer};
use tss_workloads::{Benchmark, Scale};

fn decode_throughput(c: &mut Criterion) {
    let trace = Benchmark::Cholesky.trace(Scale::Small, 1);
    let renamer = Renamer::new();
    let mut g = c.benchmark_group("exec_decode");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("cholesky_small", |b| b.iter(|| renamer.decode(&trace)));
    g.bench_function("cholesky_small_no_renaming", |b| {
        let r = Renamer::new().renaming(false);
        b.iter(|| r.decode(&trace))
    });
    g.finish();
}

fn replay_throughput(c: &mut Criterion) {
    let trace = Benchmark::Cholesky.trace(Scale::Small, 1);
    let graph = Renamer::new().decode(&trace);
    let mut g = c.benchmark_group("exec_replay_noop");
    g.throughput(Throughput::Elements(trace.len() as u64));
    for threads in [1usize, 4] {
        let cfg = ExecConfig {
            threads,
            payload: PayloadMode::Noop,
            validate: false, // timing only; correctness is tested elsewhere
            ..ExecConfig::default()
        };
        let exec = Executor::new(cfg);
        // Pure scheduler throughput: the graph is decoded once, outside
        // the timed loop (ISSUE 3 caught a per-run arena build here;
        // ISSUE 4 also hoists the decode).
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| {
                exec.replay(&trace, &graph, std::time::Duration::ZERO).expect("replay failed")
            })
        });
        // Pipelined end-to-end: streaming decode inside the measurement.
        g.bench_function(format!("streamed_threads_{threads}"), |b| {
            b.iter(|| exec.run(&trace).expect("run failed"))
        });
    }
    g.finish();
}

criterion_group!(exec_micro, decode_throughput, replay_throughput);
criterion_main!(exec_micro);
