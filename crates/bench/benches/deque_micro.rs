//! Microbenchmarks for the Chase-Lev work-stealing deque (`tss-exec`):
//! the owner's push/pop hot loop, a 1-owner-7-thieves contention storm,
//! and steal-one vs steal-half under the same load — so scheduler-core
//! regressions show up in `cargo bench` before they show up in
//! `BENCH_exec.json`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tss_exec::ChaseLev;

/// Owner-only LIFO churn: the fast path every released successor rides.
fn push_pop_hot_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("deque_push_pop");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("owner_lifo_1024", |b| {
        let d = ChaseLev::with_capacity(2048);
        b.iter(|| {
            for i in 0..1024u32 {
                d.push(i);
            }
            while let Some(v) = d.pop() {
                std::hint::black_box(v);
            }
        })
    });
    g.bench_function("owner_lifo_1024_from_cold_cap", |b| {
        // Exercises the grow path: the deque starts at capacity 8.
        b.iter(|| {
            let d = ChaseLev::with_capacity(8);
            for i in 0..1024u32 {
                d.push(i);
            }
            while let Some(v) = d.pop() {
                std::hint::black_box(v);
            }
        })
    });
    g.finish();
}

/// One owner producing, 7 thieves stealing: the contention shape of an
/// oversubscribed 8-worker replay on few cores.
fn contention(c: &mut Criterion) {
    const ITEMS: u64 = 64 * 1024;
    let mut g = c.benchmark_group("deque_contention");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ITEMS));
    for (name, batch) in [("steal_one_7_thieves", false), ("steal_half_7_thieves", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let d = ChaseLev::with_capacity(1024);
                let consumed = AtomicU64::new(0);
                let stop = AtomicBool::new(false);
                std::thread::scope(|scope| {
                    for _ in 0..7 {
                        let d = &d;
                        let consumed = &consumed;
                        let stop = &stop;
                        scope.spawn(move || {
                            let mine = ChaseLev::with_capacity(64);
                            while !stop.load(Ordering::Relaxed) {
                                let got =
                                    if batch { d.steal_batch_into(&mine, 32) } else { d.steal() };
                                if let Some(v) = got {
                                    std::hint::black_box(v);
                                    let mut n = 1;
                                    while let Some(w) = mine.pop() {
                                        std::hint::black_box(w);
                                        n += 1;
                                    }
                                    consumed.fetch_add(n, Ordering::Relaxed);
                                }
                            }
                        });
                    }
                    for i in 0..ITEMS {
                        d.push(i as u32);
                    }
                    // Owner helps drain, then signals.
                    let mut n = 0;
                    while let Some(v) = d.pop() {
                        std::hint::black_box(v);
                        n += 1;
                    }
                    consumed.fetch_add(n, Ordering::Relaxed);
                    while consumed.load(Ordering::Relaxed) < ITEMS {
                        std::thread::yield_now();
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            })
        });
    }
    g.finish();
}

criterion_group!(deque_micro, push_pop_hot_loop, contention);
criterion_main!(deque_micro);
