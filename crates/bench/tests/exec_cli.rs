//! CLI contract of the `exec` harness (ISSUE 4 satellite): bad flag
//! values are *user errors* — the binary must print a clear message and
//! exit nonzero, never panic (a panic would read as an executor bug in
//! CI logs and dump a backtrace instead of usage help).

use std::process::Command;

fn run(args: &[&str]) -> (i32, String) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_exec")).args(args).output().expect("spawn exec harness");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    (out.status.code().unwrap_or(-1), stderr)
}

#[test]
fn zero_threads_is_a_clean_error() {
    let (code, err) = run(&["--threads", "0"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--threads must be at least 1"), "stderr: {err}");
    assert!(!err.contains("panicked"), "panicked instead of failing cleanly: {err}");
}

#[test]
fn unknown_payload_is_a_clean_error() {
    let (code, err) = run(&["--payload", "fft"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("unknown payload 'fft'"), "stderr: {err}");
    assert!(err.contains("noop|spin|memcpy"), "suggests the menu: {err}");
    assert!(!err.contains("panicked"), "panicked instead of failing cleanly: {err}");
}

#[test]
fn unknown_scale_flag_value_and_missing_value_are_clean_errors() {
    for args in [
        &["--scale", "huge"][..],
        &["--frobnicate"][..],
        &["--threads"][..],
        &["--threads", "many"][..],
        &["--window", "0"][..],
        &["--decode-shards", "0"][..],
    ] {
        let (code, err) = run(args);
        assert_eq!(code, 2, "args {args:?}, stderr: {err}");
        assert!(err.contains("error:"), "args {args:?}, stderr: {err}");
        assert!(!err.contains("panicked"), "args {args:?} panicked: {err}");
    }
}

#[test]
fn help_exits_zero() {
    let (code, err) = run(&["--help"]);
    assert_eq!(code, 0);
    assert!(err.contains("usage: exec"));
    assert!(err.contains("--failure-policy"), "help must document the chaos flags: {err}");
}

// --- failure-domain flag combinations (DESIGN.md §11 satellite) ---

#[test]
fn fault_rate_without_a_policy_names_both_flags() {
    let (code, err) = run(&["--fault-rate", "0.05"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--fault-rate"), "stderr: {err}");
    assert!(err.contains("--failure-policy"), "stderr: {err}");
    assert!(!err.contains("panicked"), "panicked instead of failing cleanly: {err}");
}

#[test]
fn fault_rate_out_of_range_is_a_clean_error() {
    let (code, err) = run(&["--fault-rate", "1.5", "--failure-policy", "retry"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--fault-rate must be a probability in 0..=1"), "stderr: {err}");
}

#[test]
fn fault_rate_rejects_timed_payloads() {
    let (code, err) =
        run(&["--fault-rate", "0.05", "--failure-policy", "retry", "--payload", "spin"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--fault-rate needs --payload noop or faulty"), "stderr: {err}");
}

#[test]
fn zero_deadlines_are_clean_errors() {
    for flag in ["--task-deadline-ms", "--run-deadline-ms"] {
        let (code, err) = run(&[flag, "0"]);
        assert_eq!(code, 2, "{flag}: {err}");
        assert!(err.contains(flag), "{flag}: {err}");
        assert!(err.contains("at least 1 ms"), "{flag}: {err}");
    }
}

#[test]
fn kill_worker_bounds_are_validated_against_threads() {
    let (code, err) = run(&["--kill-worker", "0", "--threads", "1"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--kill-worker needs --threads of at least 2"), "stderr: {err}");

    let (code, err) = run(&["--kill-worker", "5", "--threads", "4"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--kill-worker 5 is out of range for --threads 4"), "stderr: {err}");
}

#[test]
fn retry_flags_require_the_retry_policy() {
    let (code, err) = run(&["--retry-max", "5"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--retry-max needs --failure-policy retry"), "stderr: {err}");

    let (code, err) =
        run(&["--retry-max", "5", "--failure-policy", "quarantine", "--fault-rate", "0.01"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--retry-max only applies to --failure-policy retry"), "stderr: {err}");
}

#[test]
fn unknown_policy_suggests_the_menu() {
    let (code, err) = run(&["--failure-policy", "ignore"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("unknown --failure-policy 'ignore'"), "stderr: {err}");
    assert!(err.contains("fail-fast|retry|quarantine"), "stderr: {err}");
}

// --- scheduling-policy flags (ISSUE 9 satellite, DESIGN.md §13) ---

#[test]
fn unknown_sched_policy_suggests_the_menu() {
    let (code, err) = run(&["--policy", "greedy"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("unknown policy 'greedy'"), "stderr: {err}");
    assert!(err.contains("lifo|fifo|cost|locality"), "suggests the menu: {err}");
    assert!(!err.contains("panicked"), "panicked instead of failing cleanly: {err}");
}

#[test]
fn class_and_domain_flags_require_the_locality_policy() {
    let (code, err) = run(&["--policy", "lifo", "--domains", "4"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--domains 4"), "names the offending flag: {err}");
    assert!(err.contains("--policy locality"), "names the required policy: {err}");
    assert!(err.contains("lifo"), "names what was actually selected: {err}");

    // Default policy is lifo, so a bare --classes is equally wrong.
    let (code, err) = run(&["--classes", "2"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--classes 2"), "stderr: {err}");
    assert!(err.contains("--policy locality"), "stderr: {err}");
}

#[test]
fn sched_shape_values_are_validated() {
    let (code, err) = run(&["--policy", "locality", "--classes", "0"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--classes must be at least 1"), "stderr: {err}");

    let (code, err) = run(&["--policy", "locality", "--domains", "8", "--threads", "4"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--domains 8 cannot exceed --threads 4"), "stderr: {err}");
}

#[test]
fn mixed_payload_is_on_the_menu() {
    let (code, err) = run(&["--payload", "fft"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("mixed"), "menu must include the mixed payload: {err}");
}

// --- observability flags (ISSUE 8 satellite, DESIGN.md §12) ---

#[cfg(not(feature = "obs"))]
#[test]
fn trace_out_without_the_obs_feature_is_rejected_up_front() {
    let (code, err) = run(&["--scale", "small", "--trace-out", "/tmp/never-written.json"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--trace-out"), "must name the flag: {err}");
    assert!(err.contains("obs"), "must name the missing feature: {err}");
    assert!(!err.contains("panicked"), "panicked instead of failing cleanly: {err}");
}

#[cfg(not(feature = "obs"))]
#[test]
fn histogram_without_the_obs_feature_is_rejected_up_front() {
    let (code, err) = run(&["--histogram"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--histogram"), "must name the flag: {err}");
    assert!(err.contains("obs"), "must name the missing feature: {err}");
}

#[test]
fn trace_out_needs_a_path() {
    let (code, err) = run(&["--trace-out"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--trace-out needs a value"), "stderr: {err}");
}

/// End-to-end in an obs build: a small run must write a Chrome trace
/// with per-worker tracks, and the JSON artifact must carry the
/// latency quantiles (the ISSUE 8 acceptance gate, as a test).
#[cfg(feature = "obs")]
#[test]
fn obs_build_writes_a_chrome_trace_and_latency_fields() {
    let dir = std::env::temp_dir().join(format!("tss-obs-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk tempdir");
    let trace = dir.join("trace.json");
    let bench = dir.join("bench.json");
    let out = Command::new(env!("CARGO_BIN_EXE_exec"))
        .args([
            "--scale",
            "small",
            "--threads",
            "2",
            "--trace-out",
            trace.to_str().unwrap(),
            "--out",
            bench.to_str().unwrap(),
        ])
        .output()
        .expect("spawn exec harness");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "exec failed: {err}");

    let tj = std::fs::read_to_string(&trace).expect("trace written");
    assert!(tj.contains("\"traceEvents\""), "not a Chrome trace: {tj:.200}");
    for track in ["worker-0", "worker-1", "decode-0"] {
        assert!(tj.contains(track), "missing track {track}");
    }
    assert!(tj.contains("\"ph\":\"X\""), "no slices recorded");

    let bj = std::fs::read_to_string(&bench).expect("bench json written");
    assert!(bj.contains("\"schema\": \"tss-bench-exec/v5\""));
    for key in ["latency_p50_ns", "latency_p99_ns", "latency_p999_ns", "queue_p999_ns"] {
        assert!(bj.contains(key), "missing {key} in BENCH json");
    }
    assert!(bj.contains("\"hw_threads\""), "artifact must stamp the real core count");
    std::fs::remove_dir_all(&dir).ok();
}
