//! CLI contract of the `exec` harness (ISSUE 4 satellite): bad flag
//! values are *user errors* — the binary must print a clear message and
//! exit nonzero, never panic (a panic would read as an executor bug in
//! CI logs and dump a backtrace instead of usage help).

use std::process::Command;

fn run(args: &[&str]) -> (i32, String) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_exec")).args(args).output().expect("spawn exec harness");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    (out.status.code().unwrap_or(-1), stderr)
}

#[test]
fn zero_threads_is_a_clean_error() {
    let (code, err) = run(&["--threads", "0"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--threads must be at least 1"), "stderr: {err}");
    assert!(!err.contains("panicked"), "panicked instead of failing cleanly: {err}");
}

#[test]
fn unknown_payload_is_a_clean_error() {
    let (code, err) = run(&["--payload", "fft"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("unknown payload 'fft'"), "stderr: {err}");
    assert!(err.contains("noop|spin|memcpy"), "suggests the menu: {err}");
    assert!(!err.contains("panicked"), "panicked instead of failing cleanly: {err}");
}

#[test]
fn unknown_scale_flag_value_and_missing_value_are_clean_errors() {
    for args in [
        &["--scale", "huge"][..],
        &["--frobnicate"][..],
        &["--threads"][..],
        &["--threads", "many"][..],
        &["--window", "0"][..],
        &["--decode-shards", "0"][..],
    ] {
        let (code, err) = run(args);
        assert_eq!(code, 2, "args {args:?}, stderr: {err}");
        assert!(err.contains("error:"), "args {args:?}, stderr: {err}");
        assert!(!err.contains("panicked"), "args {args:?} panicked: {err}");
    }
}

#[test]
fn help_exits_zero() {
    let (code, err) = run(&["--help"]);
    assert_eq!(code, 0);
    assert!(err.contains("usage: exec"));
}
