//! CLI contract of the `exec` harness (ISSUE 4 satellite): bad flag
//! values are *user errors* — the binary must print a clear message and
//! exit nonzero, never panic (a panic would read as an executor bug in
//! CI logs and dump a backtrace instead of usage help).

use std::process::Command;

fn run(args: &[&str]) -> (i32, String) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_exec")).args(args).output().expect("spawn exec harness");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    (out.status.code().unwrap_or(-1), stderr)
}

#[test]
fn zero_threads_is_a_clean_error() {
    let (code, err) = run(&["--threads", "0"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--threads must be at least 1"), "stderr: {err}");
    assert!(!err.contains("panicked"), "panicked instead of failing cleanly: {err}");
}

#[test]
fn unknown_payload_is_a_clean_error() {
    let (code, err) = run(&["--payload", "fft"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("unknown payload 'fft'"), "stderr: {err}");
    assert!(err.contains("noop|spin|memcpy"), "suggests the menu: {err}");
    assert!(!err.contains("panicked"), "panicked instead of failing cleanly: {err}");
}

#[test]
fn unknown_scale_flag_value_and_missing_value_are_clean_errors() {
    for args in [
        &["--scale", "huge"][..],
        &["--frobnicate"][..],
        &["--threads"][..],
        &["--threads", "many"][..],
        &["--window", "0"][..],
        &["--decode-shards", "0"][..],
    ] {
        let (code, err) = run(args);
        assert_eq!(code, 2, "args {args:?}, stderr: {err}");
        assert!(err.contains("error:"), "args {args:?}, stderr: {err}");
        assert!(!err.contains("panicked"), "args {args:?} panicked: {err}");
    }
}

#[test]
fn help_exits_zero() {
    let (code, err) = run(&["--help"]);
    assert_eq!(code, 0);
    assert!(err.contains("usage: exec"));
    assert!(err.contains("--failure-policy"), "help must document the chaos flags: {err}");
}

// --- failure-domain flag combinations (DESIGN.md §11 satellite) ---

#[test]
fn fault_rate_without_a_policy_names_both_flags() {
    let (code, err) = run(&["--fault-rate", "0.05"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--fault-rate"), "stderr: {err}");
    assert!(err.contains("--failure-policy"), "stderr: {err}");
    assert!(!err.contains("panicked"), "panicked instead of failing cleanly: {err}");
}

#[test]
fn fault_rate_out_of_range_is_a_clean_error() {
    let (code, err) = run(&["--fault-rate", "1.5", "--failure-policy", "retry"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--fault-rate must be a probability in 0..=1"), "stderr: {err}");
}

#[test]
fn fault_rate_rejects_timed_payloads() {
    let (code, err) =
        run(&["--fault-rate", "0.05", "--failure-policy", "retry", "--payload", "spin"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--fault-rate needs --payload noop or faulty"), "stderr: {err}");
}

#[test]
fn zero_deadlines_are_clean_errors() {
    for flag in ["--task-deadline-ms", "--run-deadline-ms"] {
        let (code, err) = run(&[flag, "0"]);
        assert_eq!(code, 2, "{flag}: {err}");
        assert!(err.contains(flag), "{flag}: {err}");
        assert!(err.contains("at least 1 ms"), "{flag}: {err}");
    }
}

#[test]
fn kill_worker_bounds_are_validated_against_threads() {
    let (code, err) = run(&["--kill-worker", "0", "--threads", "1"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--kill-worker needs --threads of at least 2"), "stderr: {err}");

    let (code, err) = run(&["--kill-worker", "5", "--threads", "4"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--kill-worker 5 is out of range for --threads 4"), "stderr: {err}");
}

#[test]
fn retry_flags_require_the_retry_policy() {
    let (code, err) = run(&["--retry-max", "5"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--retry-max needs --failure-policy retry"), "stderr: {err}");

    let (code, err) =
        run(&["--retry-max", "5", "--failure-policy", "quarantine", "--fault-rate", "0.01"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--retry-max only applies to --failure-policy retry"), "stderr: {err}");
}

#[test]
fn unknown_policy_suggests_the_menu() {
    let (code, err) = run(&["--failure-policy", "ignore"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("unknown --failure-policy 'ignore'"), "stderr: {err}");
    assert!(err.contains("fail-fast|retry|quarantine"), "stderr: {err}");
}
