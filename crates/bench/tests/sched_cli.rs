//! CLI contract of the `sched` ablation harness (ISSUE 9 satellite):
//! bad flag values and bad flag *combinations* are user errors — clear
//! message naming the flags, exit 2, never a panic — and a good run
//! writes a schema'd `BENCH_sched.json` with every row stamped with
//! the real core count.

use std::process::Command;

fn run(args: &[&str]) -> (i32, String) {
    let out =
        Command::new(env!("CARGO_BIN_EXE_sched")).args(args).output().expect("spawn sched harness");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    (out.status.code().unwrap_or(-1), stderr)
}

#[test]
fn unknown_policy_suggests_the_menu() {
    let (code, err) = run(&["--policy", "greedy"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("unknown policy 'greedy'"), "stderr: {err}");
    assert!(err.contains("all|lifo|fifo|cost|locality"), "suggests the menu: {err}");
    assert!(!err.contains("panicked"), "panicked instead of failing cleanly: {err}");
}

#[test]
fn class_and_domain_flags_require_the_locality_policy() {
    let (code, err) = run(&["--policy", "lifo", "--domains", "4"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--domains 4"), "names the offending flag: {err}");
    assert!(err.contains("--policy locality"), "names the required policy: {err}");

    let (code, err) = run(&["--policy", "cost", "--classes", "2"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--classes 2"), "stderr: {err}");
    assert!(err.contains("--policy locality"), "stderr: {err}");
}

#[test]
fn domains_must_fit_the_smallest_worker_count() {
    let (code, err) = run(&["--policy", "locality", "--workers", "2,4", "--domains", "4"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--domains 4"), "stderr: {err}");
    assert!(err.contains("--workers entry 2"), "stderr: {err}");
}

#[test]
fn bad_values_are_clean_errors() {
    for args in [
        &["--scale", "huge"][..],
        &["--workers", "0"][..],
        &["--workers", "two"][..],
        &["--workers"][..],
        &["--jobs", "0"][..],
        &["--frobnicate"][..],
    ] {
        let (code, err) = run(args);
        assert_eq!(code, 2, "args {args:?}, stderr: {err}");
        assert!(err.contains("error:"), "args {args:?}, stderr: {err}");
        assert!(!err.contains("panicked"), "args {args:?} panicked: {err}");
    }
}

#[test]
fn help_exits_zero_and_documents_the_grid() {
    let (code, err) = run(&["--help"]);
    assert_eq!(code, 0);
    assert!(err.contains("usage: sched"));
    assert!(err.contains("--policy"), "help must document the policy flag: {err}");
    assert!(err.contains("--workers"), "help must document the worker grid: {err}");
}

/// One real (tiny) ablation run: a single benchmark-sized grid would
/// still be 9 benchmarks, so keep the worker grid minimal and check
/// the artifact's schema, row shape, and `hw_threads` stamps.
#[test]
fn small_run_writes_a_schemad_artifact() {
    let dir = std::env::temp_dir().join(format!("tss-sched-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk tempdir");
    let out_path = dir.join("sched.json");
    let out = Command::new(env!("CARGO_BIN_EXE_sched"))
        .args([
            "--scale",
            "small",
            "--policy",
            "locality",
            "--workers",
            "2",
            "--out",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn sched harness");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "sched failed: {err}");

    let doc = std::fs::read_to_string(&out_path).expect("artifact written");
    assert!(doc.contains("\"schema\": \"tss-bench-sched/v1\""), "doc: {doc:.200}");
    assert!(doc.contains("\"payload\": \"mixed\""));
    assert!(doc.contains("\"policy\": \"locality\""));
    assert!(doc.contains("\"cross_steals\""));
    assert!(doc.contains("\"per_policy\""));
    // Every results row and the totals carry the honest-scaling stamp:
    // one top-level + one per row + one in totals.
    let rows = doc.matches("\"benchmark\":").count();
    assert_eq!(rows, 9, "one row per Table-I benchmark: {doc}");
    assert_eq!(
        doc.matches("\"hw_threads\":").count(),
        rows + 2,
        "hw_threads must stamp the top level, every row, and totals: {doc}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
