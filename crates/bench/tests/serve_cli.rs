//! CLI contract of the `serve` and `loadgen` binaries (ISSUE 10
//! satellite): bad flag values and combinations are *user errors* —
//! exit 2 with a message naming the offending flag, never a panic —
//! plus the end-to-end smoke (serve, load, drain) and the SIGINT
//! graceful-drain path.

use std::process::{Child, Command};
use std::time::{Duration, Instant};

fn run(bin: &str, args: &[&str]) -> (i32, String) {
    let exe = match bin {
        "serve" => env!("CARGO_BIN_EXE_serve"),
        "loadgen" => env!("CARGO_BIN_EXE_loadgen"),
        other => panic!("unknown binary {other}"),
    };
    let out = Command::new(exe).args(args).output().expect("spawn binary");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    (out.status.code().unwrap_or(-1), stderr)
}

// --- serve flag validation ---

#[test]
fn serve_zero_sizings_are_clean_errors() {
    for (args, needle) in [
        (&["--exec-threads", "0"][..], "--exec-threads must be at least 1"),
        (&["--runners", "0"][..], "--runners must be at least 1"),
        (&["--quota", "0"][..], "--quota must be at least 1"),
        (&["--max-queued-graphs", "0"][..], "--max-queued-graphs must be at least 1"),
        (&["--drain-deadline-ms", "0"][..], "--drain-deadline-ms must be at least 1 ms"),
        (&["--read-timeout-ms", "0"][..], "--read-timeout-ms must be at least 1 ms"),
    ] {
        let (code, err) = run("serve", args);
        assert_eq!(code, 2, "args {args:?}, stderr: {err}");
        assert!(err.contains(needle), "args {args:?}, stderr: {err}");
        assert!(!err.contains("panicked"), "args {args:?} panicked: {err}");
    }
}

#[test]
fn serve_rejects_unknown_flags_and_missing_values() {
    for args in [&["--frobnicate"][..], &["--port"][..], &["--runners", "many"][..]] {
        let (code, err) = run("serve", args);
        assert_eq!(code, 2, "args {args:?}, stderr: {err}");
        assert!(err.contains("error:"), "args {args:?}, stderr: {err}");
    }
}

#[test]
fn serve_payload_menu_excludes_faulty() {
    let (code, err) = run("serve", &["--payload", "faulty"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--payload faulty"), "names the flag: {err}");
    assert!(err.contains("noop|spin|memcpy|mixed"), "suggests the menu: {err}");

    let (code, err) = run("serve", &["--payload", "fft"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("unknown payload 'fft'"), "stderr: {err}");
}

#[test]
fn serve_spin_scale_requires_a_timed_payload() {
    let (code, err) = run("serve", &["--spin-scale", "2.0"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--spin-scale"), "names the flag: {err}");
    assert!(err.contains("spin or mixed"), "names the required payloads: {err}");
}

#[test]
fn serve_help_exits_zero() {
    let (code, err) = run("serve", &["--help"]);
    assert_eq!(code, 0);
    assert!(err.contains("usage: serve"));
    assert!(err.contains("--drain-deadline-ms"), "help documents drain: {err}");
}

// --- loadgen flag validation ---

#[test]
fn loadgen_requires_an_addr() {
    let (code, err) = run("loadgen", &[]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--addr is required"), "stderr: {err}");
}

#[test]
fn loadgen_zero_sizings_are_clean_errors() {
    for (args, needle) in [
        (&["--clients", "0"][..], "--clients must be at least 1"),
        (&["--graphs", "0"][..], "--graphs must be at least 1"),
        (&["--chunk", "0"][..], "--chunk must be at least 1"),
        (&["--retry-max", "0"][..], "--retry-max must be at least 1"),
    ] {
        let (code, err) = run("loadgen", args);
        assert_eq!(code, 2, "args {args:?}, stderr: {err}");
        assert!(err.contains(needle), "args {args:?}, stderr: {err}");
    }
}

#[test]
fn loadgen_unknown_bench_suggests_the_menu() {
    let (code, err) = run("loadgen", &["--bench", "linpack"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("unknown benchmark 'linpack'"), "stderr: {err}");
    assert!(err.contains("Cholesky"), "menu lists the workloads: {err}");
    assert!(err.contains("STAP"), "menu lists all nine: {err}");
}

#[test]
fn loadgen_retry_max_conflicts_with_chaos() {
    let (code, err) =
        run("loadgen", &["--addr", "127.0.0.1:1", "--retry-max", "3", "--chaos-seed", "7"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--retry-max"), "names one flag: {err}");
    assert!(err.contains("--chaos-seed"), "names the other: {err}");
}

#[test]
fn loadgen_bad_addr_is_a_clean_error() {
    let (code, err) = run("loadgen", &["--addr", "not-an-addr"]);
    assert_eq!(code, 2, "stderr: {err}");
    assert!(err.contains("--addr must be HOST:PORT"), "stderr: {err}");
}

#[test]
fn loadgen_help_exits_zero() {
    let (code, err) = run("loadgen", &["--help"]);
    assert_eq!(code, 0);
    assert!(err.contains("usage: loadgen"));
    assert!(err.contains("--chaos-seed"), "help documents chaos: {err}");
}

// --- end to end ---

/// Starts `serve --port 0` and waits for the bound address via
/// `--port-file` (the readiness handshake scripts use).
// Every caller reaps the child through `wait_bounded` (which kills on
// hang); a readiness-timeout panic aborts the test process anyway.
#[allow(clippy::zombie_processes)]
fn start_serve(dir: &std::path::Path, extra: &[&str]) -> (Child, String) {
    let port_file = dir.join("port.txt");
    let child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--port", "0", "--port-file", port_file.to_str().unwrap()])
        .args(extra)
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            let s = s.trim().to_string();
            if !s.is_empty() {
                return (child, s);
            }
        }
        assert!(Instant::now() < deadline, "serve never wrote its port file");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Waits for the child to exit, failing the test if it hangs.
fn wait_bounded(child: &mut Child, what: &str) -> i32 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status.code().unwrap_or(-1);
        }
        if Instant::now() >= deadline {
            child.kill().ok();
            panic!("{what} did not exit within the bound");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn serve_and_loadgen_round_trip_and_drain() {
    let dir = std::env::temp_dir().join(format!("tss-serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk tempdir");
    let (mut serve, addr) = start_serve(&dir, &[]);

    let artifact = dir.join("BENCH_serve.json");
    let out = Command::new(env!("CARGO_BIN_EXE_loadgen"))
        .args([
            "--addr",
            &addr,
            "--clients",
            "2",
            "--graphs",
            "3",
            "--bench",
            "knn",
            "--out",
            artifact.to_str().unwrap(),
            "--shutdown",
        ])
        .output()
        .expect("spawn loadgen");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "loadgen failed: {err}");

    // The Shutdown frame must drain serve to a clean exit 0.
    assert_eq!(wait_bounded(&mut serve, "serve after --shutdown"), 0);

    let json = std::fs::read_to_string(&artifact).expect("artifact written");
    assert!(json.contains("\"schema\": \"tss-bench-serve/v1\""), "schema: {json:.200}");
    assert!(json.contains("\"engine\": \"client-1\""), "one row per client");
    assert!(json.contains("\"completed\": 3"), "all graphs completed: {json}");
    assert!(json.contains("latency_p50_ns"), "latency quantiles present");
    assert!(json.contains("\"hw_threads\""), "artifact stamps the core count");
    std::fs::remove_dir_all(&dir).ok();
}

/// SIGINT must trigger the same graceful drain as a `Shutdown` frame
/// (ISSUE 10: "graceful drain on SIGINT or shutdown frame").
#[test]
fn sigint_drains_serve_to_a_clean_exit() {
    let dir = std::env::temp_dir().join(format!("tss-serve-sigint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mk tempdir");
    let (mut serve, _addr) = start_serve(&dir, &[]);

    let status =
        Command::new("kill").args(["-INT", &serve.id().to_string()]).status().expect("spawn kill");
    assert!(status.success(), "kill -INT failed");

    assert_eq!(wait_bounded(&mut serve, "serve after SIGINT"), 0, "drain must exit 0");
    std::fs::remove_dir_all(&dir).ok();
}
