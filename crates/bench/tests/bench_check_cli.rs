//! CLI contract of the `bench_check` baseline gate, focused on the
//! ISSUE 8 latency layer: presence-gating (a baseline with latency
//! fields fails a fresh artifact without them), tolerance checking
//! (a huge quantile regression fails, noise passes), all on synthetic
//! fixtures so the tests are instant and deterministic.

use std::process::Command;

/// A minimal exec-style artifact: one row + totals, with optional
/// latency fields spliced in.
fn artifact(exec_wall_ms: f64, latency: Option<(u64, u64)>) -> String {
    let lat = match latency {
        Some((p50, p999)) => format!(
            "\"latency_p50_ns\": {p50}, \"latency_p99_ns\": {p999}, \
             \"latency_p999_ns\": {p999}, \"queue_p50_ns\": {p50}, \
             \"queue_p99_ns\": {p999}, \"queue_p999_ns\": {p999}, "
        ),
        None => String::new(),
    };
    format!(
        "{{\n\"schema\": \"tss-bench-exec/v4\",\n\"results\": [\n\
         {{\"benchmark\": \"Cholesky\", \"tasks\": 220, \
         \"exec_wall_ms\": {exec_wall_ms:.3}, {lat}\"validated\": true}}\n\
         ],\n\
         \"totals\": {{\"tasks\": 220, {lat}\"failed\": 0}}\n}}\n"
    )
}

fn check(baseline: &str, fresh: &str) -> (i32, String) {
    let dir = std::env::temp_dir().join(format!(
        "tss-bench-check-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).expect("mk tempdir");
    let bp = dir.join("baseline.json");
    let fp = dir.join("fresh.json");
    std::fs::write(&bp, baseline).unwrap();
    std::fs::write(&fp, fresh).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_bench_check"))
        .args(["--baseline", bp.to_str().unwrap(), "--fresh", fp.to_str().unwrap()])
        .output()
        .expect("spawn bench_check");
    std::fs::remove_dir_all(&dir).ok();
    let text =
        format!("{}{}", String::from_utf8_lossy(&out.stdout), String::from_utf8_lossy(&out.stderr));
    (out.status.code().unwrap_or(-1), text)
}

#[test]
fn matching_latency_fields_pass() {
    let base = artifact(1.0, Some((150, 5_000)));
    let fresh = artifact(1.2, Some((180, 9_000)));
    let (code, text) = check(&base, &fresh);
    assert_eq!(code, 0, "{text}");
    assert!(text.contains("latency fields"), "ok line should count them: {text}");
}

#[test]
fn missing_latency_field_fails_naming_it() {
    // Baseline from an obs build, fresh from a NoopSink build: the
    // gated run silently lost its feature flag — exactly what the
    // presence gate exists to catch.
    let base = artifact(1.0, Some((150, 5_000)));
    let fresh = artifact(1.0, None);
    let (code, text) = check(&base, &fresh);
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("latency_p50_ns"), "must name the missing field: {text}");
    assert!(text.contains("obs feature"), "must hint at the cause: {text}");
}

#[test]
fn latency_regression_beyond_tolerance_fails() {
    // 100x above a baseline that clears the 500 µs floor.
    let base = artifact(1.0, Some((1_000_000, 2_000_000)));
    let fresh = artifact(1.0, Some((100_000_000, 200_000_000)));
    let (code, text) = check(&base, &fresh);
    assert_eq!(code, 1, "{text}");
    assert!(text.contains("regressed"), "{text}");
    assert!(text.contains("latency_p50_ns"), "{text}");
}

#[test]
fn latency_noise_within_the_floor_passes() {
    // 50x ratio but under the 500 µs absolute floor: sampled-quantile
    // jitter, not a regression.
    let base = artifact(1.0, Some((100, 2_000)));
    let fresh = artifact(1.0, Some((5_000, 100_000)));
    let (code, text) = check(&base, &fresh);
    assert_eq!(code, 0, "{text}");
}

#[test]
fn extra_latency_fields_in_fresh_are_fine() {
    // Old baseline (pre-obs) gated against a new obs-build artifact:
    // presence-gating is one-directional by design.
    let base = artifact(1.0, None);
    let fresh = artifact(1.0, Some((150, 5_000)));
    let (code, text) = check(&base, &fresh);
    assert_eq!(code, 0, "{text}");
}
