//! `tss-obs` — zero-cost-when-off observability for the execution core.
//!
//! Three layers (DESIGN.md §12):
//!
//! 1. **A compile-time-selected tracing sink.** With the `ring` feature
//!    off (the default, *NoopSink*), [`SharedObs`] and [`WorkerObs`]
//!    are zero-sized, [`ENABLED`] is `false`, and [`sampled`] is a
//!    `const false` — every recording call in the executor folds to
//!    nothing at compile time, the same static-dispatch discipline as
//!    the `tss_exec::sync` facade (DESIGN.md §10.1). With `ring` on
//!    (*RingSink*), each worker owns a fixed-capacity event [`Ring`]
//!    recording spawn/steal/park/wake/retry/poison/commit edges plus
//!    burst and task slices; rings never allocate after construction
//!    and are drained only at join.
//! 2. **Fixed-bucket log-scale latency [`Histogram`]s** (HDR-style,
//!    mergeable, no deps) for per-task queue-wait and execution
//!    latency, surfaced as p50/p99/p999.
//! 3. **A Chrome `trace_event` exporter** ([`chrome_trace`]) that turns
//!    drained rings into a timeline `chrome://tracing`/Perfetto opens
//!    directly: one track per worker plus decode-shard tracks, with
//!    retry/quarantine events on their own phase color.
//!
//! The [`clock::Stamp`] monotonic-timestamp facade is compiled in both
//! configurations: the executor routes *all* of its wall-clock reads
//! through it (tss-lint bans raw `Instant::now()` in
//! `crates/exec/src`), so timing semantics cannot drift between the
//! noop and ring builds.

#![forbid(unsafe_code)]

pub mod chrome;
pub mod clock;
pub mod hist;
pub mod ring;
mod sink;

pub use chrome::chrome_trace;
pub use hist::Histogram;
pub use ring::{Event, EventKind};
pub use sink::{SharedObs, SpanStamp, TaskStamp, WorkerObs};

/// Whether this build records observability data (the `ring` feature).
///
/// `false` is the NoopSink build: sinks are zero-sized, recording calls
/// compile to nothing, and [`SharedObs::finish`] returns `None`.
pub const ENABLED: bool = cfg!(feature = "ring");

/// Per-task sampling period for the latency histograms and spawn
/// events: 1 in `SAMPLE_EVERY` tasks (by a hash of the task id, not a
/// stride) gets its clock reads. Power of two.
///
/// Sampling exists because a timestamp pair per task (~50 ns on this
/// class of host) would dwarf the ~80 ns/task scheduling cost of a noop
/// run and blow the ≤3 % RingSink overhead budget (EXPERIMENTS.md —
/// the A/B table there is what set this period). High-frequency ring
/// *edge* events (burst/park/wake) are decimated separately by
/// per-worker counters ([`EDGE_EVERY`]); rare edges
/// (steal/retry/poison/commit) record unconditionally.
pub const SAMPLE_EVERY: u32 = 64;

/// Decimation period for the high-frequency ring edge events: each
/// worker records every `EDGE_EVERY`-th of its parks, wakes, and
/// bursts (plain per-worker counters — chain-limited graphs park and
/// wake on nearly every task, and an unconditional clock read per edge
/// measurably slows the wake path; EXPERIMENTS.md). Unlike task
/// sampling these counters depend on the interleaving, which is fine:
/// edge events are diagnostic texture, nothing pairs them across runs.
pub const EDGE_EVERY: u32 = 16;

/// Deterministic sampling predicate: is `task` one of the 1-in-
/// [`SAMPLE_EVERY`] tasks whose latency is measured?
///
/// A single-multiply Fibonacci hash over the id — the decision bits
/// are the *top* bits of `task * 2^32/φ`, which equidistribute the
/// regular id strides the workload generators emit (a plain
/// `id & 63 == k` mask would alias power-of-two strides to 0 or 100 %).
/// One multiply, one shift, one compare: this predicate runs up to
/// three times per task on the hot path, and a stronger mixer
/// (SplitMix64 finalizer) showed up in the EXPERIMENTS.md A/B. Pure in
/// the task id — the same tasks are sampled on every run, every thread
/// count, and on both replay and streaming paths, which keeps the
/// obs-on failure sets and completion orders bit-identical to obs-off
/// (DESIGN.md §12.3).
#[cfg(feature = "ring")]
#[inline]
pub fn sampled(task: u32) -> bool {
    task.wrapping_mul(0x9E37_79B9) >> (32 - SAMPLE_EVERY.trailing_zeros()) == 0
}

/// NoopSink build: nothing is sampled, and because this is `const` the
/// `if tss_obs::sampled(t)` guards in the executor fold away entirely.
#[cfg(not(feature = "ring"))]
#[inline]
pub const fn sampled(_task: u32) -> bool {
    false
}

/// High-water marks sampled on existing publish edges (Relaxed
/// `fetch_max`; advisory, never a correctness input — each site carries
/// an allowlist rationale per DESIGN.md §10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauges {
    /// Deepest local deque observed when pushing a sampled ready task.
    pub deque_depth_max: u64,
    /// Longest pending-release list drained at a sampled completion.
    pub pending_drain_max: u64,
    /// Largest gap (tasks) between a committed window's high id and the
    /// completion ticket counter at commit time.
    pub commit_lag_max: u64,
}

/// One timeline track: the drained event ring of a worker or decode
/// shard, in chronological order.
#[derive(Debug, Clone)]
pub struct Track {
    /// Display name (`worker-3`, `decode-0`).
    pub name: String,
    /// Events in chronological order (ring drain re-rotates the buffer).
    pub events: Vec<Event>,
    /// Events overwritten because the fixed-capacity ring wrapped.
    pub dropped: u64,
}

/// Everything the RingSink recorded for one run; `ExecReport::obs`
/// carries `Some(ObsReport)` exactly when [`ENABLED`].
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Execution latency (task start → completion published) of sampled
    /// tasks, merged across workers.
    pub exec_latency: Histogram,
    /// Queue wait (task ready → task start) of sampled tasks, merged
    /// across workers.
    pub queue_wait: Histogram,
    /// One track per worker, then one per decode shard.
    pub tracks: Vec<Track>,
    /// Sampled high-water marks.
    pub gauges: Gauges,
    /// The sampling period the histograms were recorded under.
    pub sample_every: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_mirrors_the_feature() {
        assert_eq!(ENABLED, cfg!(feature = "ring"));
    }

    #[test]
    fn sampling_is_deterministic_and_roughly_one_in_the_period() {
        if !ENABLED {
            assert!(!sampled(0) && !sampled(1) && !sampled(12345));
            return;
        }
        let hits = (0..160_000u32).filter(|&t| sampled(t)).count();
        let expect = 160_000 / SAMPLE_EVERY as usize;
        // A hash this size should land within ±10 % of the period.
        assert!(
            (expect * 9 / 10..=expect * 11 / 10).contains(&hits),
            "sampled {hits} of 160000 (expected ~{expect})"
        );
        // Strided ids (the workload generators emit regular strides)
        // must not alias the mask to 0 or 100 %.
        for stride in [2u32, 16, 32, 64] {
            let s = (0..4096u32).filter(|&i| sampled(i * stride)).count();
            assert!(s > 0 && s < 4096, "stride {stride} aliases the sampler ({s}/4096)");
        }
    }
}
