//! Chrome `trace_event` JSON export (DESIGN.md §12.4).
//!
//! Serializes drained [`ObsReport`]s into the JSON Array Format that
//! `chrome://tracing` and Perfetto open directly: one *process* per
//! benchmark run, one *thread* (track) per worker / decode shard,
//! complete (`"ph":"X"`) events for slices and thread-scoped instants
//! (`"ph":"i"`) for edges. Retry and poison events carry reserved
//! Chrome color names (`bad` / `terrible`) so chaos runs read at a
//! glance. Timestamps are microseconds (the format's unit) with ns
//! precision kept in the fraction. No JSON library — the event grammar
//! is flat and every name is generated, so escaping never arises.

use crate::ring::EventKind;
use crate::ObsReport;
use std::fmt::Write as _;

/// One `ts`/`dur` value: ns rendered as fractional µs.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// The display name + category (+ optional color) for an event.
fn style(kind: EventKind, arg: u32) -> (String, &'static str, Option<&'static str>) {
    match kind {
        EventKind::Worker => ("worker".into(), "exec", None),
        EventKind::Burst => (format!("burst ({arg} tasks)"), "exec", None),
        EventKind::Task => (format!("task {arg}"), "task", None),
        EventKind::Park => ("park".into(), "idle", None),
        EventKind::Scan => (format!("scan w{arg}"), "decode", None),
        EventKind::Spawn => (format!("spawn {arg}"), "sched", None),
        EventKind::Steal => (format!("steal w{arg}"), "sched", None),
        EventKind::Wake => ("wake".into(), "sched", None),
        EventKind::Commit => (format!("commit w{arg}"), "decode", None),
        EventKind::Retry => (format!("retry {arg}"), "chaos", Some("bad")),
        EventKind::Poison => (format!("poison {arg}"), "chaos", Some("terrible")),
    }
}

/// Renders one or more runs (`(benchmark name, report)`) as a Chrome
/// trace_event JSON document. Each run becomes a process (pid = index
/// + 1) named after its benchmark; each track a thread within it.
pub fn chrome_trace(runs: &[(String, &ObsReport)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |out: &mut String, body: String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&body);
    };
    for (run_idx, (bench, report)) in runs.iter().enumerate() {
        let pid = run_idx + 1;
        // Benchmark names come from tss-workloads identifiers
        // ([a-z0-9_-]); keep the quote guard anyway.
        let pname: String = bench.chars().filter(|c| *c != '"' && *c != '\\').collect();
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{pname}\"}}}}"
            ),
        );
        for (track_idx, track) in report.tracks.iter().enumerate() {
            let tid = track_idx + 1;
            push(
                &mut out,
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":{tid},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    track.name
                ),
            );
            for ev in &track.events {
                let (name, cat, cname) = style(ev.kind, ev.arg);
                let mut body = format!(
                    "{{\"ph\":\"{}\",\"name\":\"{name}\",\"cat\":\"{cat}\",\
                     \"pid\":{pid},\"tid\":{tid},\"ts\":{}",
                    if ev.dur_ns > 0 { 'X' } else { 'i' },
                    us(ev.start_ns),
                );
                if ev.dur_ns > 0 {
                    let _ = write!(body, ",\"dur\":{}", us(ev.dur_ns));
                } else {
                    body.push_str(",\"s\":\"t\"");
                }
                if let Some(c) = cname {
                    let _ = write!(body, ",\"cname\":\"{c}\"");
                }
                body.push('}');
                push(&mut out, body);
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::Event;
    use crate::{Gauges, Histogram, Track};

    fn tiny_report() -> ObsReport {
        ObsReport {
            exec_latency: Histogram::new(),
            queue_wait: Histogram::new(),
            tracks: vec![Track {
                name: "worker-0".into(),
                events: vec![
                    Event { kind: EventKind::Burst, arg: 2, start_ns: 1_500, dur_ns: 2_000 },
                    Event { kind: EventKind::Retry, arg: 7, start_ns: 4_000, dur_ns: 0 },
                    Event { kind: EventKind::Poison, arg: 7, start_ns: 5_000, dur_ns: 0 },
                ],
                dropped: 0,
            }],
            gauges: Gauges::default(),
            sample_every: crate::SAMPLE_EVERY,
        }
    }

    #[test]
    fn export_has_metadata_slices_instants_and_colors() {
        let r = tiny_report();
        let json = chrome_trace(&[("cholesky".into(), &r)]);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"process_name\"") && json.contains("\"cholesky\""));
        assert!(json.contains("\"thread_name\"") && json.contains("\"worker-0\""));
        assert!(json.contains("\"ph\":\"X\"") && json.contains("\"dur\":2.000"));
        assert!(json.contains("\"ts\":1.500"), "ns kept as fractional µs");
        assert!(json.contains("\"cname\":\"bad\"") && json.contains("\"cname\":\"terrible\""));
        assert!(json.contains("\"s\":\"t\""), "instants are thread-scoped");
        // Structural sanity without a parser: balanced braces/brackets.
        let bal = |open: char, close: char| {
            json.chars().filter(|&c| c == open).count()
                == json.chars().filter(|&c| c == close).count()
        };
        assert!(bal('{', '}') && bal('[', ']'));
        assert!(!json.contains(",\n,"), "no empty array elements");
    }

    #[test]
    fn multiple_runs_get_distinct_pids() {
        let r = tiny_report();
        let json = chrome_trace(&[("a".into(), &r), ("b".into(), &r)]);
        assert!(json.contains("\"pid\":1") && json.contains("\"pid\":2"));
    }

    #[test]
    fn empty_input_is_still_valid() {
        let json = chrome_trace(&[]);
        assert!(json.contains("\"traceEvents\":[\n\n]"));
    }
}
