//! Fixed-bucket log-scale latency histogram (DESIGN.md §12.2).
//!
//! HDR-histogram-style bucketing with no dependencies: values below
//! `2^SUB_BITS` get exact unit buckets; above that, each power-of-two
//! octave is split into `2^SUB_BITS` linear sub-buckets, so the
//! relative quantization error is bounded by `1/2^SUB_BITS` (≈3.1 % at
//! `SUB_BITS = 5`) across the full `u64` range in 1920 buckets.
//! Buckets are plain counts, which makes merge a per-bucket add —
//! order-invariant and associative (property-tested in
//! `tests/hist.rs` against a sorted-vec quantile oracle).

/// Sub-bucket resolution: each octave holds `2^SUB_BITS` buckets.
pub const SUB_BITS: u32 = 5;
const SUB: usize = 1 << SUB_BITS;
/// Bucket count covering all of `u64`: `SUB` unit buckets plus one
/// `SUB`-wide row per octave for octaves `SUB_BITS..=63` (the top
/// index, `bucket(u64::MAX)`, is `(58 + 1)·32 + 31 = 1919`).
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// Index of the bucket containing `v`.
#[inline]
fn bucket(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BITS;
        (shift as usize + 1) * SUB + ((v >> shift) as usize & (SUB - 1))
    }
}

/// Lowest value mapping to bucket `idx` (the quantile estimate).
#[inline]
fn low_edge(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let shift = (idx / SUB - 1) as u32;
        ((SUB + idx % SUB) as u64) << shift
    }
}

/// A mergeable log-scale histogram of `u64` samples (nanoseconds, in
/// this crate's usage — the math is unit-agnostic).
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (one fixed ~15 KiB allocation, nothing after).
    pub fn new() -> Histogram {
        Histogram { counts: vec![0; BUCKETS], total: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample. O(1), allocation-free.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds every sample of `other` into `self`. Per-bucket count
    /// addition, so merging is order-invariant and associative.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.max
        }
    }

    /// Mean of the exact recorded samples (the sum is kept exactly;
    /// only quantiles are bucket-quantized). 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as the low edge of the bucket
    /// holding the ⌈q·n⌉-th smallest sample, clamped into `[min, max]`.
    /// Underestimates by at most one bucket width — a relative error of
    /// `1/2^SUB_BITS` (≈3.1 %). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return low_edge(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_contiguous_and_cover_u64() {
        // Unit region, first octave boundary, and octave steps: the
        // bucket of a low edge's value is the bucket itself.
        for v in [0u64, 1, 31, 32, 33, 63, 64, 127, 128, 1 << 20, u64::MAX] {
            let idx = bucket(v);
            assert!(idx < BUCKETS, "bucket({v}) = {idx} out of range");
            assert!(low_edge(idx) <= v, "low_edge({idx}) > {v}");
            assert_eq!(bucket(low_edge(idx)), idx, "low edge of {v}'s bucket maps elsewhere");
        }
        assert_eq!(bucket(31), 31);
        assert_eq!(bucket(32), 32);
        assert_eq!(bucket(63), 63);
        assert_eq!(bucket(64), 64, "octave 6 starts a fresh row");
        assert_eq!(bucket(u64::MAX), BUCKETS - 1, "top bucket is the last");
        // Monotone across every boundary in the first few octaves.
        for v in 1..10_000u64 {
            assert!(bucket(v) >= bucket(v - 1), "bucket not monotone at {v}");
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 999, 12_345, 7_777_777, u64::MAX / 3] {
            let e = low_edge(bucket(v));
            assert!(e <= v && v - e <= v / SUB as u64, "error at {v}: edge {e}");
        }
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!((h.count(), h.max(), h.p50(), h.p999()), (0, 0, 0, 0));
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn exact_small_values_give_exact_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=31u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 31);
        assert_eq!(h.p50(), 16);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.max(), 31);
        assert_eq!(h.mean(), 16.0);
    }

    #[test]
    fn quantile_clamps_into_observed_range() {
        let mut h = Histogram::new();
        h.record(1000); // bucket low edge is 992, min clamp pulls it up
        assert_eq!(h.p50(), 1000);
        assert_eq!(h.p999(), 1000);
    }
}
