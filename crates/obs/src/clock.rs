//! The monotonic timestamp facade (DESIGN.md §12.1).
//!
//! [`Stamp`] is the *only* wall-clock entry point the execution core is
//! allowed to use — tss-lint check 7 bans raw `std::time::Instant::now()`
//! in `crates/exec/src`. Routing every read through one newtype keeps
//! the noop and ring builds timing-identical (the facade is compiled in
//! both) and gives instrumentation a single place to convert stamps to
//! nanoseconds of a run origin for the event rings.

use std::time::{Duration, Instant};

/// A monotonic timestamp; a transparent wrapper over [`Instant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Stamp(Instant);

impl Stamp {
    /// Reads the monotonic clock.
    #[inline]
    pub fn now() -> Stamp {
        Stamp(Instant::now())
    }

    /// Time elapsed since this stamp was taken.
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// `self - earlier`, saturating to zero (stamps from different
    /// threads may be observed out of order by a few nanoseconds).
    #[inline]
    pub fn since(&self, earlier: Stamp) -> Duration {
        self.0.saturating_duration_since(earlier.0)
    }

    /// Nanoseconds since `origin`, saturating at zero and `u64::MAX`
    /// (ring events store origin-relative u64 nanoseconds).
    #[inline]
    pub fn ns_since(&self, origin: Stamp) -> u64 {
        let d = self.since(origin);
        u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_monotonic_and_saturating() {
        let a = Stamp::now();
        let b = Stamp::now();
        assert_eq!(a.since(b).max(Duration::ZERO), a.since(b), "saturating");
        assert_eq!(a.ns_since(b), 0, "earlier-minus-later saturates to 0");
        assert!(b.ns_since(a) < 1_000_000_000, "two reads within a second");
        assert!(a.elapsed() >= Duration::ZERO);
    }
}
