//! Fixed-capacity per-worker event rings (DESIGN.md §12.1).
//!
//! Each worker (and each decode shard) owns one [`Ring`] exclusively —
//! no sharing, no atomics, no locks. The ring allocates once at
//! construction; recording overwrites the oldest event when full and
//! counts the loss, so the hot path never allocates and never blocks.
//! Rings are drained only at join, after the owning thread has
//! finished.

/// What a ring event describes. Slice kinds carry a duration; instant
/// kinds have `dur_ns == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A worker's whole run (one per worker; slice).
    Worker,
    /// One own-deque or post-steal drain burst; `arg` = tasks executed
    /// (slice).
    Burst,
    /// One sampled task's execution; `arg` = task id (slice).
    Task,
    /// A worker slept in the parker (slice).
    Park,
    /// A decode shard scanned one window; `arg` = window index (slice).
    Scan,
    /// A sampled task became ready and was pushed; `arg` = task id.
    Spawn,
    /// A successful steal; `arg` = victim worker.
    Steal,
    /// This worker woke sleepers after publishing work.
    Wake,
    /// A retry attempt began; `arg` = task id.
    Retry,
    /// A task failed or was poisoned; `arg` = task id.
    Poison,
    /// A window committed; `arg` = window index.
    Commit,
}

/// One recorded event; timestamps are nanoseconds since the run origin.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific payload (task id, victim, window...).
    pub arg: u32,
    /// Start, ns since the run origin.
    pub start_ns: u64,
    /// Duration in ns; 0 for instant kinds.
    pub dur_ns: u64,
}

/// Default ring capacity (events). 4 Ki events ≈ 96 KiB per worker —
/// enough for a paper-scale run's sampled spawns/tasks plus decimated
/// edge events; when exceeded the oldest events are overwritten (and
/// counted in `dropped`). Deliberately under glibc's 128 KiB mmap
/// threshold: rings are allocated inside the worker threads at run
/// start, and per-run mmap/munmap churn showed up as measurable run
/// overhead (EXPERIMENTS.md) where free-list reuse does not.
pub const RING_CAP: usize = 1 << 12;

/// A single-owner overwrite-oldest event ring.
#[derive(Debug, Clone)]
pub struct Ring {
    buf: Vec<Event>,
    /// Next write slot once the buffer has filled.
    head: usize,
    cap: usize,
    dropped: u64,
}

impl Default for Ring {
    fn default() -> Self {
        Ring::new(RING_CAP)
    }
}

impl Ring {
    /// A ring holding at most `cap` events (single allocation, here).
    pub fn new(cap: usize) -> Ring {
        assert!(cap > 0, "ring capacity must be positive");
        Ring { buf: Vec::with_capacity(cap), head: 0, cap, dropped: 0 }
    }

    /// Records an event, overwriting the oldest if full. O(1), never
    /// allocates beyond the constructor's reservation.
    #[inline]
    pub fn push(&mut self, ev: Event) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events recorded and still held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the ring: events in chronological (record) order plus
    /// the count of events lost to overwrite.
    pub fn drain(mut self) -> (Vec<Event>, u64) {
        // After wrap, `head` points at the oldest event; rotate it to
        // the front so the drain is chronological.
        self.buf.rotate_left(self.head);
        (self.buf, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> Event {
        Event { kind: EventKind::Spawn, arg: n as u32, start_ns: n, dur_ns: 0 }
    }

    #[test]
    fn drain_is_chronological_without_wrap() {
        let mut r = Ring::new(8);
        for i in 0..5 {
            r.push(ev(i));
        }
        let (evs, dropped) = r.drain();
        assert_eq!(dropped, 0);
        assert_eq!(evs.iter().map(|e| e.start_ns).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wrap_keeps_the_newest_and_counts_drops() {
        let mut r = Ring::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        let (evs, dropped) = r.drain();
        assert_eq!(dropped, 6);
        assert_eq!(evs.iter().map(|e| e.start_ns).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn capacity_is_fixed_after_construction() {
        let mut r = Ring::new(16);
        let cap0 = r.buf.capacity();
        for i in 0..1000 {
            r.push(ev(i));
        }
        assert_eq!(r.buf.capacity(), cap0, "ring reallocated on the hot path");
    }
}
