//! The compile-time-selected sink pair (DESIGN.md §12.1).
//!
//! One API, two bodies: with the `ring` feature off every type here is
//! zero-sized and every method is an empty `#[inline]` body — the
//! *NoopSink*, which the optimizer deletes entirely (the fig16 sha gate
//! proves the default build byte-identical). With `ring` on, the
//! *RingSink* records into single-owner [`Ring`]s and [`Histogram`]s
//! plus a few Relaxed shared gauges.
//!
//! The executor threads a `&mut WorkerObs` down its worker loop and a
//! `&SharedObs` through `Shared`, so the same call sites compile in
//! both configurations — no `#[cfg]` in the executor itself beyond
//! what the call sites fold away.

#[cfg(feature = "ring")]
use crate::clock::Stamp;
#[cfg(feature = "ring")]
use crate::hist::Histogram;
#[cfg(feature = "ring")]
use crate::ring::{Event, EventKind, Ring};
#[cfg(feature = "ring")]
use crate::{Gauges, ObsReport, Track};
#[cfg(feature = "ring")]
use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(not(feature = "ring"))]
use crate::{clock::Stamp, ObsReport};

/// Run-wide observability state, shared read-only across workers (the
/// gauges are atomic). Deliberately holds no per-task table: an eager
/// `n_tasks`-sized ready-time array streamed hundreds of KiB of writes
/// through the cache right before the timed region and cost several
/// percent of replay wall by itself (EXPERIMENTS.md) — queue wait is
/// instead reconstructed at drain time by pairing each sampled task's
/// Spawn and Task ring events ([`SharedObs::finish`]).
#[cfg(feature = "ring")]
#[derive(Debug)]
pub struct SharedObs {
    /// All event timestamps are ns since this stamp.
    origin: Stamp,
    deque_depth_max: AtomicU64,
    pending_drain_max: AtomicU64,
    commit_lag_max: AtomicU64,
}

/// NoopSink build: zero-sized, every method folds to nothing.
#[cfg(not(feature = "ring"))]
#[derive(Debug, Default)]
pub struct SharedObs;

#[cfg(feature = "ring")]
impl Default for SharedObs {
    fn default() -> SharedObs {
        SharedObs::new()
    }
}

#[cfg(feature = "ring")]
impl SharedObs {
    /// Observability state for one run, starting now.
    pub fn new() -> SharedObs {
        SharedObs {
            origin: Stamp::now(),
            deque_depth_max: AtomicU64::new(0),
            pending_drain_max: AtomicU64::new(0),
            commit_lag_max: AtomicU64::new(0),
        }
    }

    /// Current time as ns since the run origin.
    #[inline]
    fn now_ns(&self) -> u64 {
        Stamp::now().ns_since(self.origin)
    }

    /// Deque-depth high-water mark, sampled when pushing a ready task.
    #[inline]
    pub fn note_deque_depth(&self, depth: usize) {
        self.deque_depth_max.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Pending-release drain-length high-water mark.
    #[inline]
    pub fn note_pending_drain(&self, len: usize) {
        self.pending_drain_max.fetch_max(len as u64, Ordering::Relaxed);
    }

    /// Window-commit lag (committed high task id minus completion
    /// tickets issued) high-water mark.
    #[inline]
    pub fn note_commit_lag(&self, lag: u64) {
        self.commit_lag_max.fetch_max(lag, Ordering::Relaxed);
    }

    /// Builds the run's [`ObsReport`] from the joined workers' sinks.
    /// Called after every worker and decode thread has joined, so the
    /// Relaxed gauge loads race nothing.
    ///
    /// Queue wait is reconstructed here, off the hot path: the Spawn
    /// event a completer recorded when a sampled task became ready is
    /// paired (by task id, across all tracks) with the Task slice the
    /// executing worker recorded. A task whose Spawn was overwritten by
    /// ring wrap just goes unmeasured, and root tasks pushed before the
    /// workers exist have no Spawn at all — both are sampling loss, not
    /// bias against any particular worker.
    pub fn finish(&self, workers: Vec<WorkerObs>, decoders: Vec<WorkerObs>) -> Option<ObsReport> {
        let mut exec_latency = Histogram::new();
        let mut tracks = Vec::with_capacity(workers.len() + decoders.len());
        let mut add = |name: String, w: WorkerObs| {
            exec_latency.merge(&w.exec);
            let (events, dropped) = w.ring.drain();
            tracks.push(Track { name, events, dropped });
        };
        for (i, w) in workers.into_iter().enumerate() {
            add(format!("worker-{i}"), w);
        }
        for (i, d) in decoders.into_iter().enumerate() {
            add(format!("decode-{i}"), d);
        }
        let mut ready = std::collections::HashMap::new();
        for tr in &tracks {
            for ev in &tr.events {
                if ev.kind == EventKind::Spawn {
                    ready.insert(ev.arg, ev.start_ns);
                }
            }
        }
        let mut queue_wait = Histogram::new();
        for tr in &tracks {
            for ev in &tr.events {
                if ev.kind == EventKind::Task {
                    if let Some(&r) = ready.get(&ev.arg) {
                        if ev.start_ns >= r {
                            queue_wait.record(ev.start_ns - r);
                        }
                    }
                }
            }
        }
        Some(ObsReport {
            exec_latency,
            queue_wait,
            tracks,
            gauges: Gauges {
                deque_depth_max: self.deque_depth_max.load(Ordering::Relaxed),
                pending_drain_max: self.pending_drain_max.load(Ordering::Relaxed),
                commit_lag_max: self.commit_lag_max.load(Ordering::Relaxed),
            },
            sample_every: crate::SAMPLE_EVERY,
        })
    }
}

#[cfg(not(feature = "ring"))]
impl SharedObs {
    /// NoopSink: holds nothing.
    #[inline]
    pub fn new() -> SharedObs {
        SharedObs
    }

    /// NoopSink: no-op.
    #[inline]
    pub fn note_deque_depth(&self, _depth: usize) {}

    /// NoopSink: no-op.
    #[inline]
    pub fn note_pending_drain(&self, _len: usize) {}

    /// NoopSink: no-op.
    #[inline]
    pub fn note_commit_lag(&self, _lag: u64) {}

    /// NoopSink: there is nothing to report.
    #[inline]
    pub fn finish(&self, _workers: Vec<WorkerObs>, _decoders: Vec<WorkerObs>) -> Option<ObsReport> {
        None
    }
}

/// The opening stamp of a *sampled* span — a task execution
/// ([`WorkerObs::task_begin`] → [`WorkerObs::task_end`]) or a park
/// ([`WorkerObs::park_begin`] → [`WorkerObs::park`]). `None` means the
/// span was not sampled and the close is a no-op. Zero-sized in the
/// NoopSink build.
#[derive(Debug, Clone, Copy)]
pub struct TaskStamp(#[cfg(feature = "ring")] Option<Stamp>);

/// An opaque span start for park/scan/worker spans. Zero-sized in the
/// NoopSink build.
#[derive(Debug, Clone, Copy)]
pub struct SpanStamp(#[cfg(feature = "ring")] Stamp);

impl SpanStamp {
    /// Opens a span (one clock read when recording; nothing when off).
    #[cfg(feature = "ring")]
    #[inline]
    pub fn begin() -> SpanStamp {
        SpanStamp(Stamp::now())
    }

    /// NoopSink: no clock read.
    #[cfg(not(feature = "ring"))]
    #[inline]
    pub fn begin() -> SpanStamp {
        SpanStamp()
    }
}

/// Per-worker sink: one event ring plus the execution-latency
/// histogram and the edge-decimation counters. Owned exclusively by
/// its worker thread; returned at join and merged by
/// [`SharedObs::finish`]. Zero-sized in the NoopSink build.
#[cfg(feature = "ring")]
#[derive(Debug, Default)]
pub struct WorkerObs {
    ring: Ring,
    exec: Histogram,
    /// Parks/wakes/bursts seen so far; every [`crate::EDGE_EVERY`]-th
    /// records (and only then reads the clock).
    parks: u32,
    wakes: u32,
    bursts: u32,
}

/// NoopSink build: zero-sized, every method folds to nothing.
#[cfg(not(feature = "ring"))]
#[derive(Debug, Default)]
pub struct WorkerObs;

#[cfg(feature = "ring")]
impl WorkerObs {
    /// A fresh sink (allocates its fixed ring + histograms, once).
    pub fn new() -> WorkerObs {
        WorkerObs::default()
    }

    #[inline]
    fn instant(&mut self, kind: EventKind, arg: u32, start_ns: u64) {
        self.ring.push(Event { kind, arg, start_ns, dur_ns: 0 });
    }

    /// Opens a task execution span if `t` is sampled (one clock read).
    #[inline]
    pub fn task_begin(&mut self, t: u32) -> TaskStamp {
        TaskStamp(if crate::sampled(t) { Some(Stamp::now()) } else { None })
    }

    /// Closes a sampled task span: records the Task slice and the
    /// execution latency. Queue wait is derived later, at drain, by
    /// pairing this slice with the task's Spawn event
    /// ([`SharedObs::finish`]) — nothing shared is touched here.
    #[inline]
    pub fn task_end(&mut self, t: u32, begin: TaskStamp, shared: &SharedObs) {
        let Some(b) = begin.0 else { return };
        let start_ns = b.ns_since(shared.origin);
        let dur_ns = Stamp::now().ns_since(shared.origin).saturating_sub(start_ns);
        self.exec.record(dur_ns);
        self.ring.push(Event { kind: EventKind::Task, arg: t, start_ns, dur_ns });
    }

    /// A task was poisoned or finally failed on this worker.
    #[inline]
    pub fn task_poisoned(&mut self, t: u32, shared: &SharedObs) {
        let now = shared.now_ns();
        self.instant(EventKind::Poison, t, now);
    }

    /// A retry attempt is about to run.
    #[inline]
    pub fn retry(&mut self, t: u32, shared: &SharedObs) {
        let now = shared.now_ns();
        self.instant(EventKind::Retry, t, now);
    }

    /// A successful steal from `victim`.
    #[inline]
    pub fn steal(&mut self, victim: u32, shared: &SharedObs) {
        let now = shared.now_ns();
        self.instant(EventKind::Steal, victim, now);
    }

    /// This worker woke sleepers after publishing work. Wakes happen on
    /// nearly every completion in chain-limited graphs, so only every
    /// [`crate::EDGE_EVERY`]-th reads the clock and records (`arg` =
    /// total wakes so far, so the decimated trace still shows the
    /// running count).
    #[inline]
    pub fn wake(&mut self, shared: &SharedObs) {
        self.wakes = self.wakes.wrapping_add(1);
        if self.wakes % crate::EDGE_EVERY == 0 {
            let now = shared.now_ns();
            self.instant(EventKind::Wake, self.wakes, now);
        }
    }

    /// Sampled task `t` became ready on this worker (one clock read —
    /// the timestamp is the queue-wait anchor [`SharedObs::finish`]
    /// pairs with the Task slice).
    #[inline]
    pub fn spawn(&mut self, t: u32, shared: &SharedObs) {
        let now = shared.now_ns();
        self.instant(EventKind::Spawn, t, now);
    }

    /// Window `window` committed on this decode shard.
    #[inline]
    pub fn commit(&mut self, window: u32, shared: &SharedObs) {
        let now = shared.now_ns();
        self.instant(EventKind::Commit, window, now);
    }

    /// Opens a park span if this is one of the 1-in-
    /// [`crate::EDGE_EVERY`] parks this worker records (chain-limited
    /// graphs park on nearly every task; the decision is made *before*
    /// the pre-sleep clock read so skipped parks cost nothing).
    #[inline]
    pub fn park_begin(&mut self) -> TaskStamp {
        self.parks = self.parks.wrapping_add(1);
        TaskStamp(if self.parks % crate::EDGE_EVERY == 0 { Some(Stamp::now()) } else { None })
    }

    /// Closes a sampled park span (no-op for skipped parks).
    #[inline]
    pub fn park(&mut self, begin: TaskStamp, shared: &SharedObs) {
        if let Some(b) = begin.0 {
            self.slice(EventKind::Park, 0, b, Stamp::now(), shared);
        }
    }

    /// Closes a decode window-scan span.
    #[inline]
    pub fn scan(&mut self, window: u32, begin: SpanStamp, shared: &SharedObs) {
        self.slice(EventKind::Scan, window, begin.0, Stamp::now(), shared);
    }

    /// Closes the whole-worker span (guarantees ≥1 event per track).
    #[inline]
    pub fn worker_span(&mut self, w: u32, begin: SpanStamp, shared: &SharedObs) {
        self.slice(EventKind::Worker, w, begin.0, Stamp::now(), shared);
    }

    /// Records one execution burst, reusing the two stamps the worker
    /// loop already takes for `WorkerStats::busy` — zero extra clock
    /// reads on the burst path. Bursts shrink to a single task in
    /// chain-limited graphs, so only every [`crate::EDGE_EVERY`]-th
    /// burst pushes (the stats stay exact; only the trace is thinned).
    #[inline]
    pub fn burst(&mut self, begin: Stamp, end: Stamp, tasks: u64, shared: &SharedObs) {
        self.bursts = self.bursts.wrapping_add(1);
        if self.bursts % crate::EDGE_EVERY == 0 {
            self.slice(EventKind::Burst, tasks.min(u32::MAX as u64) as u32, begin, end, shared);
        }
    }

    #[inline]
    fn slice(&mut self, kind: EventKind, arg: u32, begin: Stamp, end: Stamp, shared: &SharedObs) {
        let start_ns = begin.ns_since(shared.origin);
        let dur_ns = end.ns_since(shared.origin).saturating_sub(start_ns);
        self.ring.push(Event { kind, arg, start_ns, dur_ns });
    }
}

#[cfg(not(feature = "ring"))]
impl WorkerObs {
    /// NoopSink: holds nothing.
    #[inline]
    pub fn new() -> WorkerObs {
        WorkerObs
    }

    /// NoopSink: no clock read.
    #[inline]
    pub fn task_begin(&mut self, _t: u32) -> TaskStamp {
        TaskStamp()
    }

    /// NoopSink: no-op.
    #[inline]
    pub fn task_end(&mut self, _t: u32, _begin: TaskStamp, _shared: &SharedObs) {}

    /// NoopSink: no-op.
    #[inline]
    pub fn task_poisoned(&mut self, _t: u32, _shared: &SharedObs) {}

    /// NoopSink: no-op.
    #[inline]
    pub fn retry(&mut self, _t: u32, _shared: &SharedObs) {}

    /// NoopSink: no-op.
    #[inline]
    pub fn steal(&mut self, _victim: u32, _shared: &SharedObs) {}

    /// NoopSink: no-op.
    #[inline]
    pub fn wake(&mut self, _shared: &SharedObs) {}

    /// NoopSink: no-op.
    #[inline]
    pub fn spawn(&mut self, _t: u32, _shared: &SharedObs) {}

    /// NoopSink: no-op.
    #[inline]
    pub fn commit(&mut self, _window: u32, _shared: &SharedObs) {}

    /// NoopSink: no clock read.
    #[inline]
    pub fn park_begin(&mut self) -> TaskStamp {
        TaskStamp()
    }

    /// NoopSink: no-op.
    #[inline]
    pub fn park(&mut self, _begin: TaskStamp, _shared: &SharedObs) {}

    /// NoopSink: no-op.
    #[inline]
    pub fn scan(&mut self, _window: u32, _begin: SpanStamp, _shared: &SharedObs) {}

    /// NoopSink: no-op.
    #[inline]
    pub fn worker_span(&mut self, _w: u32, _begin: SpanStamp, _shared: &SharedObs) {}

    /// NoopSink: no-op (the stamps were taken for `busy` regardless).
    #[inline]
    pub fn burst(&mut self, _begin: Stamp, _end: Stamp, _tasks: u64, _shared: &SharedObs) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_reflects_the_feature() {
        let shared = SharedObs::new();
        let report = shared.finish(vec![WorkerObs::new()], vec![]);
        assert_eq!(report.is_some(), crate::ENABLED);
    }

    #[cfg(feature = "ring")]
    #[test]
    fn sampled_task_flows_into_histograms_and_ring() {
        // Find a sampled id so the begin/end pair records.
        let t = (0..1000u32).find(|&t| crate::sampled(t)).expect("no sampled id in 1000");
        let shared = SharedObs::new();
        let mut w = WorkerObs::new();
        w.spawn(t, &shared);
        let begin = w.task_begin(t);
        std::thread::sleep(std::time::Duration::from_millis(1));
        w.task_end(t, begin, &shared);
        shared.note_deque_depth(3);
        shared.note_pending_drain(7);
        shared.note_commit_lag(11);
        let report = shared.finish(vec![w], vec![]).expect("ring build reports");
        assert_eq!(report.exec_latency.count(), 1);
        assert!(report.exec_latency.max() >= 1_000_000, "slept a millisecond");
        assert_eq!(report.queue_wait.count(), 1, "Spawn/Task paired at drain");
        assert_eq!(report.tracks.len(), 1);
        assert_eq!(report.tracks[0].name, "worker-0");
        let kinds: Vec<_> = report.tracks[0].events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![EventKind::Spawn, EventKind::Task]);
        assert_eq!(report.gauges.deque_depth_max, 3);
        assert_eq!(report.gauges.pending_drain_max, 7);
        assert_eq!(report.gauges.commit_lag_max, 11);
    }

    #[cfg(feature = "ring")]
    #[test]
    fn queue_wait_pairs_across_tracks() {
        // Spawn recorded by the completing worker, Task slice by the
        // stealing worker: the drain-time pairing must join them.
        let t = (0..1000u32).find(|&t| crate::sampled(t)).expect("no sampled id in 1000");
        let shared = SharedObs::new();
        let mut a = WorkerObs::new();
        let mut b = WorkerObs::new();
        a.spawn(t, &shared);
        let begin = b.task_begin(t);
        b.task_end(t, begin, &shared);
        let report = shared.finish(vec![a, b], vec![]).expect("ring build reports");
        assert_eq!(report.queue_wait.count(), 1, "cross-track Spawn/Task pair");
    }

    #[cfg(feature = "ring")]
    #[test]
    fn unsampled_task_records_nothing() {
        let t = (0..1000u32).find(|&t| !crate::sampled(t)).expect("unsampled id");
        let shared = SharedObs::new();
        let mut w = WorkerObs::new();
        let begin = w.task_begin(t);
        w.task_end(t, begin, &shared);
        let report = shared.finish(vec![w], vec![]).expect("ring build reports");
        assert!(report.exec_latency.is_empty());
        assert!(report.tracks[0].events.is_empty());
    }

    #[cfg(feature = "ring")]
    #[test]
    fn edge_events_are_decimated() {
        let shared = SharedObs::new();
        let mut w = WorkerObs::new();
        let mut armed = 0;
        for _ in 0..(crate::EDGE_EVERY * 3) {
            let p = w.park_begin();
            if p.0.is_some() {
                armed += 1;
            }
            w.park(p, &shared);
            w.wake(&shared);
        }
        assert_eq!(armed, 3, "1-in-EDGE_EVERY parks are armed");
        let report = shared.finish(vec![w], vec![]).expect("ring build reports");
        let evs = &report.tracks[0].events;
        let parks = evs.iter().filter(|e| e.kind == EventKind::Park).count();
        let wakes = evs.iter().filter(|e| e.kind == EventKind::Wake).count();
        assert_eq!((parks, wakes), (3, 3), "decimated edge event counts");
    }
}
