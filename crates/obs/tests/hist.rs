//! Histogram properties (ISSUE 8 satellite): merge is order-invariant,
//! and quantiles match a sorted-vec oracle within bucket resolution
//! (`1/2^SUB_BITS` relative error, DESIGN.md §12.2).

use proptest::prelude::*;
use tss_obs::Histogram;

/// The documented quantile bound: the estimate is the low edge of the
/// oracle's bucket, so it never exceeds the oracle and undershoots by
/// less than one bucket width (≤ oracle/32, +1 for integer rounding).
fn assert_within_resolution(est: u64, oracle: u64, q: f64) {
    assert!(est <= oracle, "q={q}: estimate {est} above oracle {oracle}");
    assert!(
        oracle - est <= oracle / 32 + 1,
        "q={q}: estimate {est} misses oracle {oracle} by more than a bucket"
    );
}

/// Exact sorted-vec quantile: the ⌈q·n⌉-th smallest sample.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn merge_is_order_invariant_and_quantiles_match_the_oracle(
        // Mixed magnitudes: unit-bucket values through multi-second ns
        // (the vendored proptest has no u64 range strategy — shift a
        // u32 sample up to 7 bits, reaching ~5.5e11).
        values in prop::collection::vec(
            (0u32..u32::MAX, 0usize..8).prop_map(|(v, s)| (v as u64) << s),
            1..300,
        ),
        pieces in 1usize..8,
    ) {
        // One histogram recording everything in order...
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }

        // ...versus per-chunk histograms merged in REVERSE order.
        let chunk = values.len().div_ceil(pieces);
        let mut parts: Vec<Histogram> = values
            .chunks(chunk)
            .map(|c| {
                let mut h = Histogram::new();
                for &v in c {
                    h.record(v);
                }
                h
            })
            .collect();
        let mut merged = parts.pop().unwrap();
        while let Some(p) = parts.pop() {
            merged.merge(&p);
        }

        // Order invariance: every surfaced statistic agrees exactly.
        prop_assert_eq!(whole.count(), merged.count());
        prop_assert_eq!(whole.max(), merged.max());
        prop_assert_eq!(whole.mean(), merged.mean());
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            prop_assert_eq!(
                whole.quantile(q),
                merged.quantile(q),
                "merge changed q={}", q
            );
        }

        // Oracle agreement within bucket resolution.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(whole.count(), sorted.len() as u64);
        prop_assert_eq!(whole.max(), *sorted.last().unwrap());
        for q in [0.50, 0.99, 0.999] {
            assert_within_resolution(whole.quantile(q), oracle_quantile(&sorted, q), q);
        }
    }

    #[test]
    fn mean_is_exact_not_bucketed(
        values in prop::collection::vec((0u32..1_000_000).prop_map(|v| v as u64), 1..100),
    ) {
        let mut h = Histogram::new();
        let mut sum = 0u128;
        for &v in &values {
            h.record(v);
            sum += v as u128;
        }
        prop_assert_eq!(h.mean(), sum as f64 / values.len() as f64);
    }
}
