//! The shared frame writer: one per session, cloned into every job the
//! session gets admitted, so runner threads can deliver `Done` frames
//! while the session thread is blocked reading (DESIGN.md §14.2).
//!
//! Sends are best-effort by design: a vanished client makes `send`
//! return `false`, and the caller decides what that means (a session
//! control frame gives up; a `Done` delivery records the outcome
//! server-side and counts the miss). Nothing here panics on a dead
//! socket — that is the fault-isolation contract.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

use tss_proto::{write_frame, Frame};

/// Cloneable, mutex-serialized writer over one session's socket.
/// Serialization matters: a `Done` from a runner and a `Reject` from
/// the session thread must never interleave bytes.
#[derive(Debug, Clone)]
pub(crate) struct SharedWriter {
    stream: Arc<Mutex<TcpStream>>,
}

impl SharedWriter {
    pub(crate) fn new(stream: TcpStream) -> SharedWriter {
        SharedWriter { stream: Arc::new(Mutex::new(stream)) }
    }

    /// Writes one frame; `false` if the peer is gone (or a writer
    /// thread died mid-frame and poisoned the lock — after which the
    /// stream's framing can't be trusted, so nobody writes again).
    pub(crate) fn send(&self, frame: &Frame) -> bool {
        let mut guard = match self.stream.lock() {
            Ok(g) => g,
            Err(_) => return false,
        };
        let stream: &mut TcpStream = &mut guard;
        if write_frame(stream, frame).is_err() {
            return false;
        }
        stream.flush().is_ok()
    }
}
