//! The executor pool (DESIGN.md §14.3): a fixed set of runner threads
//! draining admitted graphs from a shared queue, each run wrapped in a
//! fault boundary so one hostile graph can neither poison another nor
//! take a runner down.
//!
//! Per-run containment, innermost to outermost:
//!
//! 1. The executor itself quarantines failed tasks
//!    ([`FailurePolicy::Quarantine`], DESIGN.md §11) — a faulty graph
//!    still *completes*, reporting its casualty counts.
//! 2. The client's propagated deadline becomes the executor's
//!    run-deadline watchdog, minus whatever the graph already burned
//!    waiting in this queue.
//! 3. Every run is armed with a [`CancelToken`] so drain
//!    (DESIGN.md §14.4) can stop it after the drain deadline.
//! 4. `catch_unwind` around the whole run: an executor-internal panic
//!    (e.g. an oracle violation assert) becomes a structured
//!    [`GraphOutcome::Failed`] instead of a dead runner.
//!
//! Whatever happens, exactly one [`GraphRecord`] is appended and one
//! `Done` frame is attempted per admitted graph — the no-silent-loss
//! invariant the shutdown regression test pins.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tss_exec::{CancelToken, ExecConfig, ExecError, Executor, FailurePolicy, PayloadMode};
use tss_proto::{Frame, GraphOutcome};
use tss_trace::TaskTrace;

use crate::gate::Gate;
use crate::writer::SharedWriter;
use crate::{Counters, GraphRecord};

/// One admitted graph, queued for execution.
pub(crate) struct Job {
    pub session: u64,
    pub graph: u64,
    pub trace: TaskTrace,
    /// Client deadline in ms from admission (0 = none).
    pub deadline_ms: u32,
    /// When the gate admitted the graph (queue wait burns deadline).
    pub admitted: Instant,
    /// The owning session's writer, for `Done` delivery.
    pub writer: SharedWriter,
    /// The owning session's inflight-graph counter (quota accounting).
    pub inflight: Arc<AtomicU64>,
}

/// Everything a runner needs besides the queue; shared with the server.
pub(crate) struct RunCtx {
    pub gate: Arc<Gate>,
    pub counters: Arc<Counters>,
    pub outcomes: Arc<Mutex<Vec<GraphRecord>>>,
    pub exec_threads: usize,
    pub payload: PayloadMode,
    pub seed: u64,
}

struct PoolState {
    queue: VecDeque<Job>,
    /// Runners currently executing a job.
    busy: usize,
    /// Drain: runners exit once the queue is empty.
    closed: bool,
    /// Drain deadline fired: new pops are cancelled before they run.
    cancel_all: bool,
    /// Cancel tokens of in-flight runs, keyed by (session, graph).
    active: Vec<(u64, u64, CancelToken)>,
}

/// Queue + coordination state; sessions hold an `Arc` to submit.
pub(crate) struct PoolShared {
    state: Mutex<PoolState>,
    /// Wakes runners (work arrived, or close/cancel).
    work_cv: Condvar,
    /// Wakes the drain waiter (a runner went idle or exited).
    idle_cv: Condvar,
}

impl PoolShared {
    fn new() -> PoolShared {
        PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                busy: 0,
                closed: false,
                cancel_all: false,
                active: Vec::new(),
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
        }
    }

    /// Enqueues an admitted graph. Callers hold a gate reservation;
    /// the runner releases it after the outcome is recorded.
    pub(crate) fn submit(&self, job: Job) {
        let mut st = self.state.lock().expect("pool state poisoned");
        st.queue.push_back(job);
        drop(st);
        self.work_cv.notify_one();
    }
}

/// The runner threads plus their shared queue. Owned by the server;
/// drained exactly once at shutdown.
pub(crate) struct Pool {
    pub shared: Arc<PoolShared>,
    ctx: Arc<RunCtx>,
    runners: Vec<JoinHandle<()>>,
}

impl Pool {
    pub(crate) fn start(runners: usize, ctx: Arc<RunCtx>) -> Pool {
        let shared = Arc::new(PoolShared::new());
        let handles = (0..runners.max(1))
            .map(|i| {
                let sh = Arc::clone(&shared);
                let cx = Arc::clone(&ctx);
                std::thread::Builder::new()
                    .name(format!("tss-runner-{i}"))
                    .spawn(move || runner_loop(sh, cx))
                    .expect("spawn runner thread")
            })
            .collect();
        Pool { shared, ctx, runners: handles }
    }

    /// Starts drain: no new jobs will be submitted (the gate already
    /// refuses admissions); runners exit once the queue is empty.
    pub(crate) fn close(&self) {
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        st.closed = true;
        drop(st);
        self.shared.work_cv.notify_all();
    }

    /// Blocks until the queue is empty and no runner is busy, or the
    /// timeout passes. Returns `true` if the pool went idle.
    pub(crate) fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        loop {
            if st.queue.is_empty() && st.busy == 0 {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, timed_out) =
                self.shared.idle_cv.wait_timeout(st, deadline - now).expect("pool state poisoned");
            st = next;
            if timed_out.timed_out() && st.queue.is_empty() && st.busy == 0 {
                return true;
            }
        }
    }

    /// Drain-deadline escalation (DESIGN.md §14.4): every queued job is
    /// reported `Cancelled{0, tasks}` without running, and every
    /// in-flight run's cancel token fires. Cancellation latency from
    /// here is one watchdog tick plus one in-flight payload.
    pub(crate) fn cancel_all(&self) {
        let (stranded, tokens) = {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.cancel_all = true;
            let stranded: Vec<Job> = st.queue.drain(..).collect();
            let tokens: Vec<CancelToken> = st.active.iter().map(|(_, _, t)| t.clone()).collect();
            (stranded, tokens)
        };
        for t in &tokens {
            t.cancel();
        }
        for job in stranded {
            let tasks = job.trace.len() as u64;
            deliver(&job, GraphOutcome::Cancelled { completed: 0, tasks }, &self.ctx);
        }
        self.shared.work_cv.notify_all();
        self.shared.idle_cv.notify_all();
    }

    /// Joins the runners. Call after `close` + `wait_idle`.
    pub(crate) fn join(self) {
        for h in self.runners {
            // A panicked runner already had its job contained; losing
            // the thread at join time is not worth tearing drain down.
            let _ = h.join();
        }
    }
}

fn runner_loop(shared: Arc<PoolShared>, ctx: Arc<RunCtx>) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            loop {
                if let Some(j) = st.queue.pop_front() {
                    st.busy += 1;
                    break Some(j);
                }
                if st.closed {
                    break None;
                }
                st = shared.work_cv.wait(st).expect("pool state poisoned");
            }
        };
        let Some(job) = job else {
            shared.idle_cv.notify_all();
            return;
        };

        let cancel = CancelToken::new();
        {
            let mut st = shared.state.lock().expect("pool state poisoned");
            if st.cancel_all {
                // Drain already escalated; this run starts cancelled
                // and aborts at the first watchdog tick.
                cancel.cancel();
            }
            st.active.push((job.session, job.graph, cancel.clone()));
        }

        let outcome = run_job(&job, &cancel, &ctx);
        deliver(&job, outcome, &ctx);

        {
            let mut st = shared.state.lock().expect("pool state poisoned");
            st.active.retain(|(s, g, _)| !(*s == job.session && *g == job.graph));
            st.busy -= 1;
            if st.queue.is_empty() && st.busy == 0 {
                shared.idle_cv.notify_all();
            }
        }
    }
}

/// Runs one admitted graph inside the full containment stack and maps
/// the result onto the wire outcome.
fn run_job(job: &Job, cancel: &CancelToken, ctx: &RunCtx) -> GraphOutcome {
    let total = job.trace.len() as u64;
    let mut run_deadline = None;
    if job.deadline_ms > 0 {
        let budget = Duration::from_millis(u64::from(job.deadline_ms));
        let waited = job.admitted.elapsed();
        if waited >= budget {
            // The deadline burned out in the queue: report expiry
            // without spinning up an executor that would only confirm.
            return GraphOutcome::DeadlineExpired { completed: 0, tasks: total };
        }
        run_deadline = Some(budget - waited);
    }
    let cfg = ExecConfig {
        threads: ctx.exec_threads,
        payload: ctx.payload,
        // Per-graph seed so a graph's schedule does not depend on
        // which runner picks it up or what ran before it.
        seed: ctx.seed ^ job.graph,
        policy: FailurePolicy::Quarantine,
        run_deadline,
        cancel: Some(cancel.clone()),
        ..ExecConfig::default()
    };
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| Executor::new(cfg).run(&job.trace)));
    match result {
        Ok(Ok(report)) => GraphOutcome::Completed {
            tasks: total,
            failed: report.fault.failed.len() as u32,
            poisoned: report.fault.poisoned.len() as u32,
            exec_wall_us: report.exec_wall.as_micros() as u64,
        },
        Ok(Err(ExecError::Cancelled { completed, tasks })) => {
            GraphOutcome::Cancelled { completed: completed as u64, tasks: tasks as u64 }
        }
        Ok(Err(ExecError::RunDeadline { completed, tasks, .. })) => {
            GraphOutcome::DeadlineExpired { completed: completed as u64, tasks: tasks as u64 }
        }
        Ok(Err(e)) => GraphOutcome::Failed { detail: e.to_string() },
        Err(panic) => {
            GraphOutcome::Failed { detail: format!("executor panicked: {}", panic_text(&*panic)) }
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// The one exit path for an admitted graph: attempt `Done` delivery,
/// record the outcome server-side, return the gate reservation and the
/// session's quota slot. Runs for normal completions, drain
/// cancellations, and stranded-queue cancellations alike.
fn deliver(job: &Job, outcome: GraphOutcome, ctx: &RunCtx) {
    // Release capacity *before* the client can observe the outcome:
    // a client that reacts to `Done` by submitting again must find
    // the gate slot and its quota slot already free.
    ctx.gate.release(job.trace.len() as u64);
    job.inflight.fetch_sub(1, Ordering::AcqRel);
    let delivered = job.writer.send(&Frame::Done { graph: job.graph, outcome: outcome.clone() });
    if !delivered {
        ctx.counters.undelivered_done.fetch_add(1, Ordering::AcqRel);
    }
    ctx.outcomes.lock().expect("outcomes poisoned").push(GraphRecord {
        session: job.session,
        graph: job.graph,
        outcome,
        delivered,
    });
}
