//! The per-connection session loop (DESIGN.md §14.2): one thread per
//! client, owning the read half of the socket and this session's open
//! (not yet sealed) graphs.
//!
//! Fault-isolation rules, in rough order of hostility:
//!
//! - A frame that fails to *decode* kills only this session: the
//!   server answers with a structured [`Frame::SessionError`] and
//!   closes — framing can no longer be trusted, but no other session
//!   and no admitted graph is touched.
//! - A frame that decodes but breaks *semantics* (unknown graph id,
//!   kernel out of range, count mismatch) costs only the offending
//!   graph: a [`Frame::Reject`] names the reason and the session
//!   lives on.
//! - A client that vanishes (EOF, reset, read timeout) takes its
//!   unsealed graphs with it — they were never accepted, so nothing is
//!   owed. Its *admitted* graphs keep running: outcomes are recorded
//!   server-side and the failed `Done` delivery is counted, never lost.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tss_proto::{
    read_frame, AssemblerLimits, Frame, GraphAssembler, RejectReason, SessionErrorKind, WireError,
    VERSION,
};

use crate::pool::Job;
use crate::writer::SharedWriter;
use crate::ServerShared;

/// Runs one session to completion. Never panics on peer behavior.
pub(crate) fn run_session(shared: Arc<ServerShared>, id: u64, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let writer = match stream.try_clone() {
        Ok(w) => SharedWriter::new(w),
        // Cannot split the socket: nothing can be answered, so there
        // is nothing useful to do but close.
        Err(_) => return,
    };
    let mut reader = stream;
    serve_frames(&shared, id, &mut reader, &writer);
    shared.sessions.lock().expect("session registry poisoned").remove(&id);
    // Open (unsealed) graphs die with the session: never accepted,
    // no outcome owed. Admitted graphs run on via their own Job state.
}

/// The session state machine. Returning closes the connection.
fn serve_frames(
    shared: &Arc<ServerShared>,
    id: u64,
    reader: &mut TcpStream,
    writer: &SharedWriter,
) {
    let cfg = &shared.cfg;
    let counters = &shared.counters;
    let limits = AssemblerLimits { max_tasks: cfg.max_graph_tasks };
    // Graphs admitted for this session and not yet finished; shared
    // with the pool, which decrements it at `Done` time.
    let inflight = Arc::new(AtomicU64::new(0));
    let mut open: HashMap<u64, GraphAssembler> = HashMap::new();
    let mut greeted = false;

    // Closes the session with a structured error; best-effort send.
    macro_rules! session_fatal {
        ($kind:expr, $detail:expr) => {{
            counters.session_errors.fetch_add(1, Ordering::AcqRel);
            let _ =
                writer.send(&Frame::SessionError { kind: $kind, detail: String::from($detail) });
            return;
        }};
    }

    loop {
        let frame = match read_frame(reader) {
            Ok(f) => f,
            // Clean close between frames: the client left (or
            // vanished); nothing to answer.
            Err(WireError::Closed) => return,
            Err(WireError::Decode(e)) => {
                session_fatal!(SessionErrorKind::Decode, e.to_string())
            }
            Err(WireError::Io(e)) => match e.kind() {
                ErrorKind::UnexpectedEof => {
                    session_fatal!(SessionErrorKind::Decode, "stream truncated mid-frame")
                }
                ErrorKind::WouldBlock | ErrorKind::TimedOut => {
                    session_fatal!(SessionErrorKind::Protocol, "session read timed out")
                }
                // Reset / broken pipe: the peer is gone, nobody is
                // listening for an error frame.
                _ => return,
            },
        };

        if !greeted {
            match frame {
                Frame::Hello { version } if version == VERSION => {
                    greeted = true;
                    if !writer.send(&Frame::HelloAck { version: VERSION }) {
                        return;
                    }
                    continue;
                }
                Frame::Hello { version } => {
                    session_fatal!(
                        SessionErrorKind::Protocol,
                        format!("unsupported protocol version {version} (server speaks {VERSION})")
                    )
                }
                _ => session_fatal!(SessionErrorKind::Protocol, "first frame must be Hello"),
            }
        }

        match frame {
            Frame::Hello { .. } => {
                session_fatal!(SessionErrorKind::Protocol, "duplicate Hello")
            }

            Frame::OpenGraph { graph, deadline_ms, name, kernels } => {
                if shared.gate.is_draining() {
                    counters.rejected_draining.fetch_add(1, Ordering::AcqRel);
                    if !writer.send(&Frame::Reject { graph, reason: RejectReason::Draining }) {
                        return;
                    }
                    continue;
                }
                // Quota counts open + admitted-unfinished graphs, so a
                // client can neither hoard assembler memory nor flood
                // the queue by pipelining.
                let held = open.len() as u64 + inflight.load(Ordering::Acquire);
                if held >= u64::from(cfg.quota) {
                    counters.rejected_quota.fetch_add(1, Ordering::AcqRel);
                    let reason =
                        RejectReason::QuotaExceeded { inflight: held as u32, quota: cfg.quota };
                    if !writer.send(&Frame::Reject { graph, reason }) {
                        return;
                    }
                    continue;
                }
                if open.contains_key(&graph) {
                    counters.rejected_graph_state.fetch_add(1, Ordering::AcqRel);
                    let reason = RejectReason::DuplicateGraph;
                    if !writer.send(&Frame::Reject { graph, reason }) {
                        return;
                    }
                    continue;
                }
                open.insert(graph, GraphAssembler::open(&name, &kernels, deadline_ms, limits));
            }

            Frame::Tasks { graph, tasks } => match open.get_mut(&graph) {
                None => {
                    counters.rejected_graph_state.fetch_add(1, Ordering::AcqRel);
                    if !writer.send(&Frame::Reject { graph, reason: RejectReason::UnknownGraph }) {
                        return;
                    }
                }
                Some(asm) => {
                    if let Err(e) = asm.push_tasks(tasks) {
                        // The graph is unsalvageable; discard it so
                        // later Tasks frames get UnknownGraph instead
                        // of repeated semantic errors.
                        let reason = e.reject_reason(limits);
                        open.remove(&graph);
                        counters.rejected_malformed.fetch_add(1, Ordering::AcqRel);
                        if !writer.send(&Frame::Reject { graph, reason }) {
                            return;
                        }
                    }
                }
            },

            Frame::Seal { graph, tasks_total } => {
                let Some(asm) = open.remove(&graph) else {
                    counters.rejected_graph_state.fetch_add(1, Ordering::AcqRel);
                    if !writer.send(&Frame::Reject { graph, reason: RejectReason::UnknownGraph }) {
                        return;
                    }
                    continue;
                };
                let deadline_ms = asm.deadline_ms();
                let trace = match asm.seal(tasks_total) {
                    Ok(t) => t,
                    Err(e) => {
                        counters.rejected_malformed.fetch_add(1, Ordering::AcqRel);
                        let reason = e.reject_reason(limits);
                        if !writer.send(&Frame::Reject { graph, reason }) {
                            return;
                        }
                        continue;
                    }
                };
                match shared.gate.admit(trace.len() as u64) {
                    Err(reason) => {
                        match reason {
                            RejectReason::Overloaded { .. } => {
                                counters.rejected_overloaded.fetch_add(1, Ordering::AcqRel)
                            }
                            RejectReason::Draining => {
                                counters.rejected_draining.fetch_add(1, Ordering::AcqRel)
                            }
                            _ => 0,
                        };
                        if !writer.send(&Frame::Reject { graph, reason }) {
                            return;
                        }
                    }
                    Ok(()) => {
                        inflight.fetch_add(1, Ordering::AcqRel);
                        counters.accepted.fetch_add(1, Ordering::AcqRel);
                        // Even if the ack fails (client racing away),
                        // the graph is admitted: it runs, its outcome
                        // is recorded, delivery failure is counted.
                        let _ = writer.send(&Frame::Accepted { graph });
                        shared.pool.submit(Job {
                            session: id,
                            graph,
                            trace,
                            deadline_ms,
                            admitted: Instant::now(),
                            writer: writer.clone(),
                            inflight: Arc::clone(&inflight),
                        });
                    }
                }
            }

            Frame::Shutdown => {
                let _ = writer.send(&Frame::ShutdownAck);
                shared.request_drain();
                // Keep reading: this session's Done frames still flow
                // through the shared writer; drain closes the socket
                // once every outcome is delivered.
            }

            Frame::Bye => return,

            // Server-to-client frames arriving from a client are a
            // protocol violation, not a decode failure.
            Frame::HelloAck { .. }
            | Frame::Accepted { .. }
            | Frame::Reject { .. }
            | Frame::Done { .. }
            | Frame::SessionError { .. }
            | Frame::ShutdownAck => {
                session_fatal!(SessionErrorKind::Protocol, "server-to-client frame from client")
            }
        }
    }
}
