//! `tss-server`: a fault-isolating task-graph execution service over
//! the `tss-proto` wire protocol (DESIGN.md §14).
//!
//! Layering, outermost in:
//!
//! - **Accept loop** — a nonblocking listener polled so drain can stop
//!   admissions without a self-connect trick.
//! - **Sessions** (DESIGN.md §14.2) — one thread per client; decode
//!   failures kill only that session, semantic failures only the
//!   offending graph, and a vanished client never touches anyone
//!   else's graphs.
//! - **Admission gate** — per-session inflight-graph quotas plus
//!   cross-session queue-depth and queued-task watermarks that shed
//!   with a structured `Overloaded{retry_after_ms}`.
//! - **Executor pool** (DESIGN.md §14.3) — runner threads driving
//!   `tss-exec` with quarantine failure policy, the client's
//!   propagated deadline on the run-deadline watchdog, a per-run
//!   [`tss_exec::CancelToken`], and `catch_unwind` containment.
//! - **Drain** (DESIGN.md §14.4) — stop admissions, finish what the
//!   drain deadline allows, cancel the rest, deliver every outcome,
//!   then close. The invariant throughout: every *accepted* graph
//!   produces exactly one recorded [`GraphRecord`] and one attempted
//!   `Done` frame — nothing silently vanishes.

#![forbid(unsafe_code)]

mod gate;
mod pool;
mod session;
mod writer;

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tss_exec::PayloadMode;
use tss_proto::GraphOutcome;

use gate::Gate;
use pool::{Pool, PoolShared, RunCtx};

/// Everything tunable about a server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Executor worker threads per graph run.
    pub exec_threads: usize,
    /// Concurrent graph runs (runner threads).
    pub runners: usize,
    /// Per-session inflight-graph quota (open + queued + running).
    pub quota: u32,
    /// Admission watermark: admitted-but-unfinished graphs.
    pub max_queued_graphs: u64,
    /// Admission watermark: summed tasks of admitted-but-unfinished
    /// graphs (the memory proxy — queued traces are held resident).
    pub max_queued_tasks: u64,
    /// Per-graph task ceiling (assembly-time reject).
    pub max_graph_tasks: u64,
    /// Base backoff hint for `Overloaded` rejects; scaled by depth.
    pub retry_after_ms: u32,
    /// How long drain lets admitted graphs finish before cancelling.
    pub drain_deadline: Duration,
    /// Per-read socket timeout (slow-loris bound: a session that
    /// sends *nothing* for this long is closed with a structured
    /// error; a slow-but-moving writer resets it on every read).
    pub read_timeout: Duration,
    /// What each task execution does (see [`PayloadMode`]).
    pub payload: PayloadMode,
    /// Base seed; each graph runs with `seed ^ graph_id`.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            exec_threads: 2,
            runners: 2,
            quota: 8,
            max_queued_graphs: 16,
            max_queued_tasks: 250_000,
            max_graph_tasks: 1 << 20,
            retry_after_ms: 25,
            drain_deadline: Duration::from_secs(5),
            read_timeout: Duration::from_secs(30),
            payload: PayloadMode::Noop,
            seed: 1,
        }
    }
}

/// One accepted graph's terminal record — kept server-side even when
/// the client is gone, so drain can still account for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphRecord {
    /// Server-assigned session id the graph arrived on.
    pub session: u64,
    /// Client-chosen graph id.
    pub graph: u64,
    /// How the graph ended.
    pub outcome: GraphOutcome,
    /// Whether the `Done` frame reached the client.
    pub delivered: bool,
}

/// Monotonic service counters (all sessions, whole lifetime).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub sessions: AtomicU64,
    pub accepted: AtomicU64,
    pub rejected_overloaded: AtomicU64,
    pub rejected_quota: AtomicU64,
    pub rejected_malformed: AtomicU64,
    pub rejected_draining: AtomicU64,
    /// Unknown / duplicate graph-id rejects (session-state errors).
    pub rejected_graph_state: AtomicU64,
    /// Sessions closed with a `SessionError` frame.
    pub session_errors: AtomicU64,
    /// `Done` frames that could not be delivered (client vanished).
    pub undelivered_done: AtomicU64,
}

/// What drain hands back: the full outcome ledger plus counters.
#[derive(Debug)]
pub struct DrainSummary {
    /// Every accepted graph's terminal record, in completion order.
    pub outcomes: Vec<GraphRecord>,
    /// Graphs admitted over the server's lifetime.
    pub accepted: u64,
    /// Graphs that drained to completion (quarantined faults included).
    pub completed: u64,
    /// Graphs cancelled by drain.
    pub cancelled: u64,
    /// Graphs whose propagated deadline expired.
    pub deadline_expired: u64,
    /// Graphs whose run failed outright.
    pub failed: u64,
    /// Admission sheds (`Overloaded`).
    pub rejected_overloaded: u64,
    /// Per-session quota rejects.
    pub rejected_quota: u64,
    /// Semantic rejects (kernel range, count mismatch, ceilings).
    pub rejected_malformed: u64,
    /// Rejects because the server was draining.
    pub rejected_draining: u64,
    /// Unknown / duplicate graph-id rejects.
    pub rejected_graph_state: u64,
    /// Sessions accepted over the lifetime.
    pub sessions: u64,
    /// Sessions closed with a structured `SessionError`.
    pub session_errors: u64,
    /// `Done` frames whose delivery failed (vanished clients).
    pub undelivered_done: u64,
    /// Wall time of the drain itself.
    pub drain_wall: Duration,
    /// Whether the drain deadline fired (some graphs were cancelled).
    pub drain_deadline_hit: bool,
}

/// State shared between the accept loop, sessions, pool, and drain.
pub(crate) struct ServerShared {
    pub cfg: ServerConfig,
    pub gate: Arc<Gate>,
    pub pool: Arc<PoolShared>,
    pub counters: Arc<Counters>,
    /// Socket clones per live session, for drain-time shutdown.
    pub sessions: Mutex<HashMap<u64, TcpStream>>,
    /// Session thread handles, joined at drain.
    pub handles: Mutex<Vec<JoinHandle<()>>>,
    /// Drain request latch + the condvar `Server::wait` blocks on.
    drain: (Mutex<bool>, Condvar),
}

impl ServerShared {
    /// Latches the drain request (idempotent): the gate shuts, and
    /// whoever is blocked in [`Server::wait`] starts the drain.
    pub(crate) fn request_drain(&self) {
        self.gate.set_draining();
        let mut d = self.drain.0.lock().expect("drain latch poisoned");
        *d = true;
        self.drain.1.notify_all();
    }

    fn drain_requested(&self) -> bool {
        *self.drain.0.lock().expect("drain latch poisoned")
    }
}

/// A cloneable handle that can trigger drain from outside `wait` —
/// e.g. a signal-watcher thread in the serve binary.
#[derive(Clone)]
pub struct DrainHandle(Arc<ServerShared>);

impl DrainHandle {
    /// Requests drain (idempotent, callable from any thread).
    pub fn request_drain(&self) {
        self.0.request_drain();
    }

    /// Whether drain has been requested.
    pub fn draining(&self) -> bool {
        self.0.gate.is_draining()
    }
}

/// A running server. Call [`Server::wait`] to block until drain is
/// requested and collect the final [`DrainSummary`].
pub struct Server {
    shared: Arc<ServerShared>,
    outcomes: Arc<Mutex<Vec<GraphRecord>>>,
    local: SocketAddr,
    accept: Option<JoinHandle<()>>,
    pool: Pool,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and starts accepting.
    pub fn start(cfg: ServerConfig, addr: &str) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        // Nonblocking accept, polled: drain must be able to stop the
        // loop without a wake-up connection.
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;

        let gate =
            Arc::new(Gate::new(cfg.max_queued_graphs, cfg.max_queued_tasks, cfg.retry_after_ms));
        let counters = Arc::new(Counters::default());
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        let ctx = Arc::new(RunCtx {
            gate: Arc::clone(&gate),
            counters: Arc::clone(&counters),
            outcomes: Arc::clone(&outcomes),
            exec_threads: cfg.exec_threads.max(1),
            payload: cfg.payload,
            seed: cfg.seed,
        });
        let pool = Pool::start(cfg.runners, ctx);

        let shared = Arc::new(ServerShared {
            cfg,
            gate,
            pool: Arc::clone(&pool.shared),
            counters,
            sessions: Mutex::new(HashMap::new()),
            handles: Mutex::new(Vec::new()),
            drain: (Mutex::new(false), Condvar::new()),
        });

        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("tss-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;

        Ok(Server { shared, outcomes, local, accept: Some(accept), pool })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// A handle for requesting drain from another thread.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle(Arc::clone(&self.shared))
    }

    /// Requests drain directly (tests; binaries use the handle).
    pub fn request_drain(&self) {
        self.shared.request_drain();
    }

    /// Blocks until drain is requested (a `Shutdown` frame, a
    /// [`DrainHandle`], or [`Server::request_drain`]), performs it,
    /// and reports. Drain order (DESIGN.md §14.4):
    ///
    /// 1. Admissions stop (the gate latched shut at request time).
    /// 2. The accept loop exits; no new sessions.
    /// 3. Admitted graphs get [`ServerConfig::drain_deadline`] to
    ///    finish; past it, queued graphs are reported
    ///    `Cancelled{0, tasks}` and running graphs are cancelled via
    ///    their tokens.
    /// 4. Every outcome is delivered (or its delivery failure
    ///    counted), *then* sessions are closed.
    pub fn wait(mut self) -> DrainSummary {
        {
            let (lock, cv) = &self.shared.drain;
            let mut d = lock.lock().expect("drain latch poisoned");
            while !*d {
                d = cv.wait(d).expect("drain latch poisoned");
            }
        }
        let t0 = Instant::now();

        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }

        self.pool.close();
        let deadline_hit = !self.pool.wait_idle(self.shared.cfg.drain_deadline);
        if deadline_hit {
            self.pool.cancel_all();
            // Cancellation latency is bounded (one watchdog tick plus
            // one in-flight payload), so this second wait is a
            // formality with a generous cap, not a second deadline.
            let _ = self.pool.wait_idle(Duration::from_secs(60));
        }
        self.pool.join();

        // Done frames are all delivered (or accounted); now close.
        let streams: Vec<TcpStream> = {
            let mut map = self.shared.sessions.lock().expect("session registry poisoned");
            map.drain().map(|(_, s)| s).collect()
        };
        for s in &streams {
            let _ = s.shutdown(Shutdown::Both);
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut h = self.shared.handles.lock().expect("session handles poisoned");
            h.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }

        let outcomes = self.outcomes.lock().expect("outcomes poisoned").clone();
        let tally = |tag: &str| outcomes.iter().filter(|r| r.outcome.tag() == tag).count() as u64;
        let c = &self.shared.counters;
        DrainSummary {
            accepted: c.accepted.load(Ordering::Acquire),
            completed: tally("completed"),
            cancelled: tally("cancelled"),
            deadline_expired: tally("deadline"),
            failed: tally("failed"),
            rejected_overloaded: c.rejected_overloaded.load(Ordering::Acquire),
            rejected_quota: c.rejected_quota.load(Ordering::Acquire),
            rejected_malformed: c.rejected_malformed.load(Ordering::Acquire),
            rejected_draining: c.rejected_draining.load(Ordering::Acquire),
            rejected_graph_state: c.rejected_graph_state.load(Ordering::Acquire),
            sessions: c.sessions.load(Ordering::Acquire),
            session_errors: c.session_errors.load(Ordering::Acquire),
            undelivered_done: c.undelivered_done.load(Ordering::Acquire),
            drain_wall: t0.elapsed(),
            drain_deadline_hit: deadline_hit,
            outcomes,
        }
    }
}

/// Polls the nonblocking listener, spawning a session thread per
/// connection, until drain is requested.
fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    let mut next_id: u64 = 1;
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.counters.sessions.fetch_add(1, Ordering::AcqRel);
                let id = next_id;
                next_id += 1;
                let _ = stream.set_nonblocking(false);
                if let Ok(clone) = stream.try_clone() {
                    shared.sessions.lock().expect("session registry poisoned").insert(id, clone);
                }
                let session_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("tss-session-{id}"))
                    .spawn(move || session::run_session(session_shared, id, stream));
                match spawned {
                    Ok(h) => shared.handles.lock().expect("session handles poisoned").push(h),
                    Err(_) => {
                        // Could not spawn (resource exhaustion): the
                        // stream drops, the client sees a close, the
                        // server itself stays up.
                        shared.sessions.lock().expect("session registry poisoned").remove(&id);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.drain_requested() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE): back off and
                // keep serving existing sessions.
                if shared.drain_requested() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}
