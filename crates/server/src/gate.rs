//! Admission control (DESIGN.md §14.2): the load-shedding decision a
//! sealed graph passes through before it may enter the executor queue.
//!
//! The gate tracks two pressure signals across all sessions — admitted
//! graphs not yet finished (queue depth) and their summed task counts
//! (the memory watermark, since queued traces are held resident) — and
//! sheds with a structured [`RejectReason::Overloaded`] carrying a
//! backoff hint once either trips. Shedding at admission rather than
//! at enqueue keeps the failure cheap for the client: nothing was
//! queued, nothing must be unwound, and the `retry_after_ms` hint
//! scales with the depth that caused the shed.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use tss_proto::RejectReason;

/// Cap on the computed backoff hint.
const MAX_RETRY_AFTER_MS: u32 = 2_000;

/// Cross-session admission state. Cheap enough to consult on every
/// `Seal`; all updates are lock-free.
#[derive(Debug)]
pub(crate) struct Gate {
    /// Nonzero once drain started: no further admissions, ever.
    draining: AtomicU32,
    /// Graphs admitted and not yet finished (queued + running).
    inflight_graphs: AtomicU64,
    /// Tasks belonging to those graphs (the memory watermark proxy).
    inflight_tasks: AtomicU64,
    max_graphs: u64,
    max_tasks: u64,
    retry_base_ms: u32,
}

impl Gate {
    pub(crate) fn new(max_graphs: u64, max_tasks: u64, retry_base_ms: u32) -> Gate {
        Gate {
            draining: AtomicU32::new(0),
            inflight_graphs: AtomicU64::new(0),
            inflight_tasks: AtomicU64::new(0),
            max_graphs: max_graphs.max(1),
            max_tasks: max_tasks.max(1),
            retry_base_ms: retry_base_ms.max(1),
        }
    }

    /// Flips the gate shut for drain. Irreversible.
    pub(crate) fn set_draining(&self) {
        self.draining.store(1, Ordering::Release);
    }

    pub(crate) fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire) != 0
    }

    /// Tries to admit a sealed graph of `tasks` tasks. On success the
    /// graph counts against both watermarks until [`Gate::release`].
    ///
    /// Reserve-then-check: the counters are bumped first and rolled
    /// back on refusal, so concurrent seals can never *stay* past the
    /// caps — at worst a racing pair both observe the transient
    /// overshoot and both shed, which errs on the safe side.
    pub(crate) fn admit(&self, tasks: u64) -> Result<(), RejectReason> {
        if self.is_draining() {
            return Err(RejectReason::Draining);
        }
        let graphs_now = self.inflight_graphs.fetch_add(1, Ordering::AcqRel) + 1;
        let tasks_now = self.inflight_tasks.fetch_add(tasks, Ordering::AcqRel) + tasks;
        if graphs_now > self.max_graphs || tasks_now > self.max_tasks {
            self.inflight_graphs.fetch_sub(1, Ordering::AcqRel);
            self.inflight_tasks.fetch_sub(tasks, Ordering::AcqRel);
            // Hint grows with the depth that caused the shed: a client
            // hitting a deep queue backs off harder than one that
            // grazed the watermark.
            let depth = graphs_now.min(u64::from(MAX_RETRY_AFTER_MS));
            let hint = (self.retry_base_ms.saturating_mul(depth as u32)).min(MAX_RETRY_AFTER_MS);
            return Err(RejectReason::Overloaded { retry_after_ms: hint });
        }
        Ok(())
    }

    /// Returns an admitted graph's reservation (run finished, whatever
    /// the outcome).
    pub(crate) fn release(&self, tasks: u64) {
        self.inflight_graphs.fetch_sub(1, Ordering::AcqRel);
        self.inflight_tasks.fetch_sub(tasks, Ordering::AcqRel);
    }

    /// Current admitted-graph depth.
    #[cfg(test)]
    pub(crate) fn depth(&self) -> u64 {
        self.inflight_graphs.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_watermark_sheds_with_growing_hint() {
        let g = Gate::new(2, 1_000_000, 10);
        g.admit(5).expect("first fits");
        g.admit(5).expect("second fits");
        let err = g.admit(5).expect_err("third must shed");
        match err {
            RejectReason::Overloaded { retry_after_ms } => {
                assert_eq!(retry_after_ms, 30, "hint scales with depth")
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Shedding must not leak the reservation.
        assert_eq!(g.depth(), 2);
        g.release(5);
        g.admit(5).expect("released slot is reusable");
    }

    #[test]
    fn task_watermark_sheds_independently_of_depth() {
        let g = Gate::new(100, 10, 25);
        g.admit(8).expect("under the watermark");
        let err = g.admit(8).expect_err("16 tasks would breach 10");
        assert!(matches!(err, RejectReason::Overloaded { .. }));
        assert_eq!(g.depth(), 1, "rejected graph rolled back");
        g.admit(2).expect("exactly at the watermark is admitted");
    }

    #[test]
    fn draining_gate_refuses_everything() {
        let g = Gate::new(100, 100, 25);
        g.set_draining();
        assert_eq!(g.admit(1), Err(RejectReason::Draining));
        assert_eq!(g.depth(), 0);
    }

    #[test]
    fn retry_hint_is_capped() {
        let g = Gate::new(1, 1_000_000, 1_500);
        g.admit(1).expect("fits");
        match g.admit(1).expect_err("sheds") {
            RejectReason::Overloaded { retry_after_ms } => {
                assert_eq!(retry_after_ms, MAX_RETRY_AFTER_MS)
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
    }
}
