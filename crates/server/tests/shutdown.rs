//! Graceful-shutdown regression (ISSUE 10 satellite): after drain,
//! every accepted graph has a terminal record and a delivered `Done` —
//! no accepted graph silently vanishes, whether it finished, was
//! stranded in the queue, or was cancelled mid-run.

mod common;

use std::collections::BTreeSet;
use std::time::Duration;

use common::{ms_cycles, small_trace, Harness};
use tss_client::{Client, Submission};
use tss_exec::PayloadMode;
use tss_proto::GraphOutcome;
use tss_server::ServerConfig;

#[test]
fn every_accepted_graph_is_reported_after_drain() {
    let cfg = ServerConfig {
        quota: 16,
        max_queued_graphs: 64,
        drain_deadline: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let h = Harness::start(cfg);

    // Three clients, five pipelined graphs each, all in flight when
    // the shutdown request lands.
    let mut clients: Vec<Client> =
        (0..3).map(|_| Client::connect(h.addr).expect("connect")).collect();
    let mut expected = BTreeSet::new();
    for (c, client) in clients.iter_mut().enumerate() {
        for i in 0..5u64 {
            let gid = c as u64 * 100 + i;
            let trace = small_trace(&format!("g{gid}"), 50, 100);
            let sub = client.submit(gid, 0, &trace, 7).expect("submit");
            assert_eq!(sub, Submission::Accepted, "graph {gid}");
            expected.insert(gid);
        }
    }

    // Shutdown lands while graphs may still be queued or running.
    clients[0].shutdown_server().expect("shutdown ack");

    // Every client still collects every outcome: drain may not close
    // a session before its `Done` frames are out.
    for (c, client) in clients.iter_mut().enumerate() {
        for i in 0..5u64 {
            let gid = c as u64 * 100 + i;
            let outcome = client.wait_done(gid).expect("done frame");
            match outcome {
                GraphOutcome::Completed { tasks, failed, poisoned, .. } => {
                    assert_eq!(tasks, 50, "graph {gid}");
                    assert_eq!((failed, poisoned), (0, 0), "graph {gid}");
                }
                other => panic!("graph {gid}: expected Completed, got {other:?}"),
            }
        }
    }

    let summary = h.finish();
    assert_eq!(summary.accepted, 15);
    assert_eq!(summary.completed, 15);
    assert_eq!(summary.cancelled, 0);
    assert_eq!(summary.failed, 0);
    assert_eq!(summary.undelivered_done, 0);
    assert!(!summary.drain_deadline_hit, "nothing should need cancelling");
    let reported: BTreeSet<u64> = summary.outcomes.iter().map(|r| r.graph).collect();
    assert_eq!(reported, expected, "no accepted graph may vanish");
    assert!(summary.outcomes.iter().all(|r| r.delivered), "all Done frames delivered");
}

#[test]
fn drain_deadline_cancels_stragglers_but_still_reports_them() {
    let cfg = ServerConfig {
        runners: 1,
        exec_threads: 1,
        payload: PayloadMode::Spin { time_scale: 1.0 },
        drain_deadline: Duration::from_millis(50),
        ..ServerConfig::default()
    };
    let h = Harness::start(cfg);

    let mut client = Client::connect(h.addr).expect("connect");
    // Graph 1 runs (~64 x 20 ms of spin); graph 2 queues behind it.
    let long = small_trace("long", 64, ms_cycles(20));
    assert_eq!(client.submit(1, 0, &long, 16).expect("submit 1"), Submission::Accepted);
    assert_eq!(client.submit(2, 0, &long, 16).expect("submit 2"), Submission::Accepted);

    client.shutdown_server().expect("shutdown ack");

    // Both graphs come back cancelled: one stopped mid-run by its
    // token, one stranded in the queue with zero progress.
    let mut outcomes =
        vec![client.wait_done(1).expect("done 1"), client.wait_done(2).expect("done 2")];
    outcomes.sort_by_key(|o| match o {
        GraphOutcome::Cancelled { completed, .. } => *completed,
        _ => u64::MAX,
    });
    for o in &outcomes {
        match o {
            GraphOutcome::Cancelled { completed, tasks } => {
                assert_eq!(*tasks, 64);
                assert!(*completed < 64, "cancellation must precede completion");
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    let summary = h.finish();
    assert!(summary.drain_deadline_hit);
    assert_eq!(summary.accepted, 2);
    assert_eq!(summary.cancelled, 2);
    assert_eq!(summary.outcomes.len(), 2, "stranded graphs are reported, not dropped");
    assert_eq!(summary.undelivered_done, 0);
}
