//! Admission control and backpressure (DESIGN.md §14.2): quotas,
//! overload shedding with a retry hint, draining rejects, and the
//! malformed/state rejects — all structured, all non-fatal to the
//! session, all visible in the drain summary.

mod common;

use common::{ms_cycles, small_trace, Harness};
use tss_client::{Client, Submission};
use tss_exec::PayloadMode;
use tss_proto::{Frame, GraphOutcome, RejectReason};
use tss_server::ServerConfig;

#[test]
fn quota_rejects_the_excess_open_graph() {
    let h = Harness::start(ServerConfig { quota: 2, ..ServerConfig::default() });
    let mut client = Client::connect(h.addr).expect("connect");
    for gid in [1u64, 2, 3] {
        client
            .send(&Frame::OpenGraph {
                graph: gid,
                deadline_ms: 0,
                name: format!("g{gid}"),
                kernels: vec!["k".into()],
            })
            .expect("send open");
    }
    // Opens are silent while under quota; the third draws the reject.
    match client.recv().expect("reject frame") {
        Frame::Reject { graph: 3, reason: RejectReason::QuotaExceeded { inflight, quota } } => {
            assert_eq!((inflight, quota), (2, 2));
        }
        other => panic!("expected quota reject for graph 3, got {other:?}"),
    }
    h.handle.request_drain();
    let summary = h.finish();
    assert_eq!(summary.rejected_quota, 1);
    assert_eq!(summary.accepted, 0);
}

#[test]
fn overload_sheds_with_a_retry_hint_and_recovers() {
    let cfg = ServerConfig {
        runners: 1,
        exec_threads: 1,
        max_queued_graphs: 1,
        payload: PayloadMode::Spin { time_scale: 1.0 },
        ..ServerConfig::default()
    };
    let h = Harness::start(cfg);
    let mut client = Client::connect(h.addr).expect("connect");

    // Graph 1 (~8 x 40 ms spin) occupies the single admission slot.
    let long = small_trace("long", 8, ms_cycles(40));
    assert_eq!(client.submit(1, 0, &long, 8).expect("submit 1"), Submission::Accepted);

    // Graph 2 must be shed with a positive backoff hint.
    let tiny = small_trace("tiny", 4, 100);
    match client.submit(2, 0, &tiny, 8).expect("submit 2") {
        Submission::Rejected(RejectReason::Overloaded { retry_after_ms }) => {
            assert!(retry_after_ms > 0, "hint must be positive");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // Once graph 1's Done is observed the slot is free again — the
    // server releases capacity before delivering the outcome.
    assert!(matches!(client.wait_done(1).expect("done 1"), GraphOutcome::Completed { .. }));
    assert_eq!(client.submit(2, 0, &tiny, 8).expect("resubmit 2"), Submission::Accepted);
    assert!(matches!(client.wait_done(2).expect("done 2"), GraphOutcome::Completed { .. }));

    client.shutdown_server().expect("shutdown ack");
    let summary = h.finish();
    assert_eq!(summary.rejected_overloaded, 1);
    assert_eq!(summary.accepted, 2);
    assert_eq!(summary.completed, 2);
}

#[test]
fn semantic_rejects_cost_one_graph_not_the_session() {
    let h = Harness::start(ServerConfig::default());
    let mut client = Client::connect(h.addr).expect("connect");
    let open = |gid: u64| Frame::OpenGraph {
        graph: gid,
        deadline_ms: 0,
        name: format!("g{gid}"),
        kernels: vec!["k".into()],
    };

    // Seal count mismatch.
    client.send(&open(1)).expect("open 1");
    client
        .send(&Frame::Tasks { graph: 1, tasks: small_trace("x", 4, 100).tasks().to_vec() })
        .expect("tasks 1");
    client.send(&Frame::Seal { graph: 1, tasks_total: 99 }).expect("seal 1");
    match client.recv().expect("reject 1") {
        Frame::Reject { graph: 1, reason: RejectReason::Malformed { detail } } => {
            assert!(detail.contains("99"), "detail names the mismatch: {detail}");
        }
        other => panic!("expected Malformed, got {other:?}"),
    }

    // Kernel id out of the declared table's range.
    client.send(&open(2)).expect("open 2");
    let rogue = tss_trace::TaskDesc::new(tss_trace::KernelId(7), 100, vec![]);
    client.send(&Frame::Tasks { graph: 2, tasks: vec![rogue] }).expect("tasks 2");
    match client.recv().expect("reject 2") {
        Frame::Reject { graph: 2, reason: RejectReason::Malformed { .. } } => {}
        other => panic!("expected Malformed, got {other:?}"),
    }

    // Tasks for a graph that was never opened.
    client.send(&Frame::Tasks { graph: 55, tasks: vec![] }).expect("tasks 55");
    match client.recv().expect("reject 55") {
        Frame::Reject { graph: 55, reason: RejectReason::UnknownGraph } => {}
        other => panic!("expected UnknownGraph, got {other:?}"),
    }

    // Duplicate open of a still-open graph id.
    client.send(&open(3)).expect("open 3");
    client.send(&open(3)).expect("open 3 again");
    match client.recv().expect("reject dup") {
        Frame::Reject { graph: 3, reason: RejectReason::DuplicateGraph } => {}
        other => panic!("expected DuplicateGraph, got {other:?}"),
    }

    // After all of that the session still works end to end.
    let ok = small_trace("ok", 12, 100);
    assert_eq!(client.submit(9, 0, &ok, 5).expect("submit 9"), Submission::Accepted);
    assert!(matches!(client.wait_done(9).expect("done 9"), GraphOutcome::Completed { .. }));

    client.shutdown_server().expect("shutdown ack");
    let summary = h.finish();
    assert_eq!(summary.rejected_malformed, 2);
    assert_eq!(summary.rejected_graph_state, 2);
    assert_eq!(summary.accepted, 1);
    assert_eq!(summary.session_errors, 0, "none of these kill the session");
}

#[test]
fn client_deadline_propagates_into_the_run_watchdog() {
    let cfg = ServerConfig {
        runners: 1,
        exec_threads: 1,
        payload: PayloadMode::Spin { time_scale: 1.0 },
        ..ServerConfig::default()
    };
    let h = Harness::start(cfg);
    let mut client = Client::connect(h.addr).expect("connect");

    // ~32 x 20 ms of spin against a 50 ms deadline: the watchdog must
    // stop the run long before it drains.
    let slow = small_trace("slow", 32, ms_cycles(20));
    assert_eq!(client.submit(1, 50, &slow, 8).expect("submit"), Submission::Accepted);
    match client.wait_done(1).expect("done") {
        GraphOutcome::DeadlineExpired { completed, tasks } => {
            assert_eq!(tasks, 32);
            assert!(completed < 32, "expiry must precede completion");
        }
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }

    client.shutdown_server().expect("shutdown ack");
    let summary = h.finish();
    assert_eq!(summary.deadline_expired, 1);
}

#[test]
fn draining_gate_rejects_open_and_seal() {
    // No waiter thread yet: drain is requested but `wait` has not
    // started tearing sessions down, so the reject path is observable
    // without racing the socket shutdown.
    let server = tss_server::Server::start(ServerConfig::default(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    // A graph opened before the drain request...
    client
        .send(&Frame::OpenGraph {
            graph: 1,
            deadline_ms: 0,
            name: "early".into(),
            kernels: vec!["k".into()],
        })
        .expect("open 1");
    client
        .send(&Frame::Tasks { graph: 1, tasks: small_trace("x", 4, 100).tasks().to_vec() })
        .expect("tasks 1");

    // Round-trip a whole other graph so the frames above are known to
    // be processed before the drain request lands (frames are handled
    // in order; there is no ack for open/tasks alone).
    let probe = small_trace("probe", 4, 100);
    assert_eq!(client.submit(99, 0, &probe, 4).expect("probe"), tss_client::Submission::Accepted);
    assert!(matches!(client.wait_done(99).expect("probe done"), GraphOutcome::Completed { .. }));

    server.request_drain();

    // ...is refused at seal time,
    client.send(&Frame::Seal { graph: 1, tasks_total: 4 }).expect("seal 1");
    match client.recv().expect("reject 1") {
        Frame::Reject { graph: 1, reason: RejectReason::Draining } => {}
        other => panic!("expected Draining at seal, got {other:?}"),
    }
    // ...and new opens are refused outright.
    client
        .send(&Frame::OpenGraph {
            graph: 2,
            deadline_ms: 0,
            name: "late".into(),
            kernels: vec!["k".into()],
        })
        .expect("open 2");
    match client.recv().expect("reject 2") {
        Frame::Reject { graph: 2, reason: RejectReason::Draining } => {}
        other => panic!("expected Draining at open, got {other:?}"),
    }

    let summary = server.wait();
    assert_eq!(summary.rejected_draining, 2);
    assert_eq!(summary.accepted, 1, "only the pre-drain probe");
}
