//! Shared helpers for the server integration tests.

use std::net::SocketAddr;
use std::thread::JoinHandle;

use tss_server::{DrainHandle, DrainSummary, Server, ServerConfig};
use tss_trace::{OperandDesc, TaskTrace};

/// A started server plus the thread blocked in `Server::wait`.
pub struct Harness {
    pub addr: SocketAddr,
    // Each integration-test binary compiles this module afresh, and
    // not all of them drive the drain through the handle.
    #[allow(dead_code)]
    pub handle: DrainHandle,
    waiter: JoinHandle<DrainSummary>,
}

impl Harness {
    pub fn start(cfg: ServerConfig) -> Harness {
        let server = Server::start(cfg, "127.0.0.1:0").expect("bind loopback");
        let addr = server.local_addr();
        let handle = server.drain_handle();
        let waiter = std::thread::spawn(move || server.wait());
        Harness { addr, handle, waiter }
    }

    /// Joins the drain (drain must have been requested by now, via a
    /// client `Shutdown` frame or the handle).
    pub fn finish(self) -> DrainSummary {
        self.waiter.join().expect("server wait thread panicked")
    }
}

/// A fan-out into eight serial chains: task 0 produces a shared
/// input, every later task reads it and extends one of eight inout
/// chains — real dependence structure plus real parallelism.
pub fn small_trace(name: &str, tasks: u32, runtime_cycles: u64) -> TaskTrace {
    let mut tr = TaskTrace::new(name);
    let k = tr.add_kernel("kernel");
    tr.push_task(k, runtime_cycles, vec![OperandDesc::output(0, 64)]);
    for i in 1..u64::from(tasks) {
        tr.push_task(
            k,
            runtime_cycles,
            vec![OperandDesc::input(0, 64), OperandDesc::inout(((i % 8) + 1) * 64, 64)],
        );
    }
    tr
}

/// ~`ms` milliseconds of spin per task at `PayloadMode::Spin { 1.0 }`
/// (the executor clocks traced runtimes at 3.2 GHz).
#[allow(dead_code)] // not every test binary uses timed payloads
pub fn ms_cycles(ms: u64) -> u64 {
    ms * 3_200_000
}
