//! Seeded wire chaos (DESIGN.md §14.5): connection drops mid-graph,
//! truncated and corrupt frames, slow-loris writers, and clients that
//! vanish after admission — all driven by the pure chaos plan, so the
//! outcome of every `(client, graph)` pair is *exactly* reproducible
//! across runs and executor thread counts. A dropped client must
//! never poison another session or wedge the executor.

mod common;

use std::time::Duration;

use common::{small_trace, Harness};
use tss_client::chaos::{plan, run_graph, ChaosMode, ChaosOutcome};
use tss_client::Client;
use tss_proto::GraphOutcome;
use tss_server::ServerConfig;

const SEED: u64 = 42;
const CLIENTS: u64 = 3;
const GRAPHS: u64 = 10;
const TASKS: u32 = 40;

/// One full chaos round: misbehaving clients, then a clean shutdown.
/// Returns client-observed `(client, graph, outcome-tag)` rows plus
/// the server's own accounting.
fn chaos_round(exec_threads: usize) -> (Vec<(u64, u64, String)>, ServerTally) {
    let cfg = ServerConfig {
        exec_threads,
        runners: 2,
        quota: 64,
        // Chaos proves isolation, not shedding: give admission enough
        // headroom that the outcome of every pair is plan-determined.
        max_queued_graphs: 1024,
        max_queued_tasks: 10_000_000,
        drain_deadline: Duration::from_secs(30),
        read_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    };
    let h = Harness::start(cfg);
    let addr = h.addr;

    let workers: Vec<_> = (0..CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let mut conn: Option<Client> = None;
                let mut rows = Vec::new();
                for graph in 0..GRAPHS {
                    let mode = plan(SEED, client, graph);
                    let gid = client * 1000 + graph;
                    let trace = small_trace(&format!("c{client}g{graph}"), TASKS, 100);
                    let out = run_graph(addr, &mut conn, mode, gid, 0, &trace, 7)
                        .unwrap_or_else(|e| panic!("client {client} graph {graph}: {e}"));
                    rows.push((client, graph, tag(mode, &out)));
                }
                rows
            })
        })
        .collect();

    let mut rows: Vec<(u64, u64, String)> = Vec::new();
    for w in workers {
        rows.extend(w.join().expect("chaos client panicked"));
    }
    rows.sort();

    let mut control = Client::connect(addr).expect("control connect");
    control.shutdown_server().expect("shutdown ack");
    let summary = h.finish();
    let tally = ServerTally {
        accepted: summary.accepted,
        completed: summary.completed,
        cancelled: summary.cancelled,
        deadline_expired: summary.deadline_expired,
        failed: summary.failed,
        session_errors: summary.session_errors,
        rejected: summary.rejected_overloaded
            + summary.rejected_quota
            + summary.rejected_malformed
            + summary.rejected_draining
            + summary.rejected_graph_state,
        outcomes: summary.outcomes.len() as u64,
    };
    (rows, tally)
}

/// The server-side counts the gate compares exactly.
#[derive(Debug, PartialEq, Eq)]
struct ServerTally {
    accepted: u64,
    completed: u64,
    cancelled: u64,
    deadline_expired: u64,
    failed: u64,
    session_errors: u64,
    rejected: u64,
    outcomes: u64,
}

/// Client-observed outcome tag; for healthy submissions it also pins
/// the oracle-validated completion shape.
fn tag(mode: ChaosMode, out: &ChaosOutcome) -> String {
    match out {
        ChaosOutcome::Done(GraphOutcome::Completed { tasks, failed, poisoned, .. }) => {
            format!("{}:completed:{tasks}:{failed}:{poisoned}", mode.name())
        }
        ChaosOutcome::Done(other) => format!("{}:done:{}", mode.name(), other.tag()),
        ChaosOutcome::Rejected(r) => format!("{}:rejected:{r}", mode.name()),
        ChaosOutcome::SessionKilled => format!("{}:killed", mode.name()),
        ChaosOutcome::Vanished => format!("{}:vanished", mode.name()),
    }
}

#[test]
fn chaos_outcomes_are_exact_across_runs_and_thread_counts() {
    let (rows_a, tally_a) = chaos_round(1);
    let (rows_b, tally_b) = chaos_round(1);
    assert_eq!(rows_a, rows_b, "same seed, same thread count: identical outcomes");
    assert_eq!(tally_a, tally_b, "server accounting must be identical too");

    let (rows_c, tally_c) = chaos_round(4);
    assert_eq!(rows_a, rows_c, "executor thread count must not leak into outcomes");
    assert_eq!(tally_a, tally_c);

    // The expected outcome of every pair follows from the pure plan.
    let mut expect_accepted = 0u64;
    let mut expect_killed = 0u64;
    for (client, graph, tag) in &rows_a {
        let mode = plan(SEED, *client, *graph);
        match mode {
            ChaosMode::None | ChaosMode::Slow => {
                assert_eq!(
                    tag,
                    &format!("{}:completed:{TASKS}:0:0", mode.name()),
                    "healthy client {client} graph {graph} must complete clean"
                );
                expect_accepted += 1;
            }
            ChaosMode::Truncate | ChaosMode::BadFrame => {
                assert_eq!(tag, &format!("{}:killed", mode.name()));
                expect_killed += 1;
            }
            ChaosMode::Vanish => {
                assert_eq!(tag, &format!("{}:vanished", mode.name()));
                expect_accepted += 1;
            }
        }
    }
    assert_eq!(rows_a.len() as u64, CLIENTS * GRAPHS, "every pair observed");

    // Server-side: every accepted graph completed (vanished clients'
    // graphs included — a dropped client never wedges the executor),
    // every kill was a structured session error, nothing was shed.
    assert_eq!(tally_a.accepted, expect_accepted);
    assert_eq!(tally_a.completed, expect_accepted);
    assert_eq!(tally_a.outcomes, expect_accepted);
    assert_eq!(tally_a.cancelled, 0);
    assert_eq!(tally_a.deadline_expired, 0);
    assert_eq!(tally_a.failed, 0);
    assert_eq!(tally_a.session_errors, expect_killed);
    assert_eq!(tally_a.rejected, 0);
    assert!(expect_killed > 0, "the seed must actually exercise kills");
    assert!(expect_accepted > expect_killed, "and leave a healthy majority");
}
