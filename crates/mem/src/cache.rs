//! Set-associative cache with true-LRU replacement.

/// Geometry of one cache (an L1, or one L2 bank).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Table II private L1: 64 KB, 4-way, 64 B lines.
    pub fn l1() -> Self {
        CacheConfig { size_bytes: 64 << 10, ways: 4, line_bytes: 64 }
    }

    /// Table II L2 bank: 4 MB, 8-way, 64 B lines.
    pub fn l2_bank() -> Self {
        CacheConfig { size_bytes: 4 << 20, ways: 8, line_bytes: 64 }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.line_bytes * self.ways as u64)) as usize
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    last_used: u64,
    dirty: bool,
}

/// A set-associative, true-LRU cache over line addresses.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    writebacks: u64,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (non-power-of-two line size,
    /// zero ways, or capacity not a multiple of `ways × line`).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.ways > 0, "cache needs at least one way");
        assert_eq!(
            cfg.size_bytes % (cfg.line_bytes * cfg.ways as u64),
            0,
            "capacity must be a whole number of sets"
        );
        let sets = cfg.sets();
        assert!(sets > 0, "cache needs at least one set");
        SetAssocCache {
            cfg,
            sets: vec![Vec::new(); sets],
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            writebacks: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.cfg.line_bytes;
        ((line as usize) % self.sets.len(), line / self.sets.len() as u64)
    }

    /// Accesses `addr`. On a miss the line is filled (evicting LRU if the
    /// set is full). Returns `true` on a hit.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.tick += 1;
        let (idx, tag) = self.index_and_tag(addr);
        let ways = self.cfg.ways;
        let set = &mut self.sets[idx];
        if let Some(w) = set.iter_mut().find(|w| w.tag == tag) {
            w.last_used = self.tick;
            w.dirty |= write;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if set.len() == ways {
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_used)
                .map(|(i, _)| i)
                .expect("full set is non-empty");
            let victim = set.swap_remove(lru);
            self.evictions += 1;
            if victim.dirty {
                self.writebacks += 1;
            }
        }
        set.push(Way { tag, last_used: self.tick, dirty: write });
        false
    }

    /// Whether `addr` is resident, without touching LRU state.
    pub fn probe(&self, addr: u64) -> bool {
        let (idx, tag) = self.index_and_tag(addr);
        self.sets[idx].iter().any(|w| w.tag == tag)
    }

    /// Invalidates `addr` if present; returns whether the line was dirty.
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let (idx, tag) = self.index_and_tag(addr);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|w| w.tag == tag)?;
        let w = set.swap_remove(pos);
        Some(w.dirty)
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Hit ratio in `[0, 1]`; 0 when no accesses have occurred.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways x 64B lines = 256B.
        SetAssocCache::new(CacheConfig { size_bytes: 256, ways: 2, line_bytes: 64 })
    }

    #[test]
    fn l1_geometry() {
        let c = CacheConfig::l1();
        assert_eq!(c.sets(), 256);
        let cache = SetAssocCache::new(c);
        assert_eq!(cache.config().ways, 4);
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert!(!c.access(0x0, false));
        assert!(c.access(0x0, false));
        assert!(c.access(0x3F, false), "same line");
        assert!(!c.access(0x40, false), "next line, different set");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with (line % 2 == 0): 0x000, 0x080, 0x100.
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // 0x080 is now LRU
        c.access(0x100, false); // evicts 0x080
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x080, false);
        c.access(0x100, false); // evicts dirty 0x000
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny();
        c.access(0x000, true);
        assert_eq!(c.invalidate(0x000), Some(true));
        assert_eq!(c.invalidate(0x000), None);
        assert!(!c.probe(0x000));
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x080, false);
        // Probing 0x000 must NOT refresh it...
        assert!(c.probe(0x000));
        c.access(0x100, false); // ...so 0x000 is evicted as LRU.
        assert!(!c.probe(0x000));
    }

    #[test]
    fn hit_ratio_tracks() {
        let mut c = tiny();
        assert_eq!(c.hit_ratio(), 0.0);
        c.access(0x0, false);
        c.access(0x0, false);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        let _ = SetAssocCache::new(CacheConfig { size_bytes: 256, ways: 2, line_bytes: 48 });
    }
}
