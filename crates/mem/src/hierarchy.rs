//! The assembled memory hierarchy, and the Section-II task-runtime model.

use crate::cache::{CacheConfig, SetAssocCache};
use crate::coherence::Directory;
use crate::dram::{Dram, DramConfig};
use tss_sim::Cycle;

/// Hierarchy parameters (defaults are Table II).
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Number of cores (each with a private L1).
    pub cores: usize,
    /// Private L1 geometry.
    pub l1: CacheConfig,
    /// L1 hit latency in cycles (3 in Table II).
    pub l1_latency: Cycle,
    /// Number of shared L2 banks (32 in Table II).
    pub l2_banks: usize,
    /// Geometry of each L2 bank.
    pub l2_bank_cfg: CacheConfig,
    /// L2 hit latency in cycles (22 in Table II).
    pub l2_latency: Cycle,
    /// DRAM parameters.
    pub dram: DramConfig,
}

impl HierarchyConfig {
    /// Table II defaults for `cores` processors.
    pub fn for_cores(cores: usize) -> Self {
        HierarchyConfig {
            cores,
            l1: CacheConfig::l1(),
            l1_latency: 3,
            l2_banks: 32,
            l2_bank_cfg: CacheConfig::l2_bank(),
            l2_latency: 22,
            dram: DramConfig::default(),
        }
    }
}

/// Private L1s + banked shared L2 (with the MSI directory) + DRAM.
#[derive(Debug)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1s: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    directory: Directory,
    dram: Dram,
}

impl MemoryHierarchy {
    /// Builds the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (no cores or banks).
    pub fn new(cfg: HierarchyConfig) -> Self {
        assert!(cfg.cores > 0, "need at least one core");
        assert!(cfg.l2_banks > 0, "need at least one L2 bank");
        MemoryHierarchy {
            l1s: (0..cfg.cores).map(|_| SetAssocCache::new(cfg.l1)).collect(),
            l2: (0..cfg.l2_banks).map(|_| SetAssocCache::new(cfg.l2_bank_cfg)).collect(),
            directory: Directory::new(),
            dram: Dram::new(cfg.dram.clone()),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.cfg.l2_bank_cfg.line_bytes) % self.cfg.l2_banks as u64) as usize
    }

    /// One line-granular access by `core`; returns its latency in cycles.
    ///
    /// Walks L1 → directory/L2 → DRAM, applying MSI transitions. `now`
    /// orders DRAM channel occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, addr: u64, write: bool, now: Cycle) -> Cycle {
        assert!(core < self.cfg.cores, "core {core} out of range");
        let line = addr / self.cfg.l1.line_bytes;
        let l1_hit = self.l1s[core].access(addr, write);
        let coh =
            if write { self.directory.write(core, line) } else { self.directory.read(core, line) };
        if l1_hit && coh.local_hit {
            return self.cfg.l1_latency;
        }
        // L1 miss (or permission upgrade): go to the home L2 bank.
        let bank = self.bank_of(addr);
        let l2_hit = self.l2[bank].access(addr, write);
        let mut latency = self.cfg.l1_latency + self.cfg.l2_latency;
        if coh.owner_intervention {
            // Fetch the dirty copy from the owner's L1 via the L2: one
            // more L2-class transfer.
            latency += self.cfg.l2_latency;
        } else if !l2_hit {
            let done = self.dram.access(addr, self.cfg.l1.line_bytes, now + latency);
            latency = done - now;
        }
        // Invalidation round-trips overlap; charge one L2-class hop if any.
        if coh.invalidations > 0 {
            latency += self.cfg.l2_latency;
        }
        latency
    }

    /// The L1 of `core`.
    pub fn l1(&self, core: usize) -> &SetAssocCache {
        &self.l1s[core]
    }

    /// L2 bank `i`.
    pub fn l2_bank(&self, i: usize) -> &SetAssocCache {
        &self.l2[i]
    }

    /// The coherence directory.
    pub fn directory(&self) -> &Directory {
        &self.directory
    }

    /// The DRAM model.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }
}

/// The Section-II motivation model: task runtime as a function of its
/// working-set size.
///
/// A task sweeps its working set `passes` times, spending
/// `compute_cycles_per_byte` of pure computation per byte. Data is loaded
/// through the modeled hierarchy; once the working set exceeds the L1,
/// every pass misses and runtime degrades — reproducing the knee at 64 KB
/// that justifies L1-sized blocks and, with it, the need for a ~60 ns
/// decode rate (Section II).
#[derive(Debug, Clone)]
pub struct TaskRuntimeModel {
    /// Pure compute cost per byte touched (cycles).
    pub compute_cycles_per_byte: f64,
    /// Number of sweeps over the working set.
    pub passes: u32,
}

impl Default for TaskRuntimeModel {
    fn default() -> Self {
        // Enough reuse per byte that an L1-resident block amortizes its
        // cold misses (as blocked BLAS kernels do); past the L1 capacity
        // every pass stalls and the knee appears.
        TaskRuntimeModel { compute_cycles_per_byte: 0.5, passes: 16 }
    }
}

impl TaskRuntimeModel {
    /// Estimates `(total_runtime, stall_cycles)` for a task with a
    /// working set of `block_bytes`, executed alone on one core.
    pub fn estimate(&self, block_bytes: u64) -> (Cycle, Cycle) {
        let mut h = MemoryHierarchy::new(HierarchyConfig::for_cores(1));
        let line = h.config().l1.line_bytes;
        let lines = block_bytes.div_ceil(line);
        let mut stalls: Cycle = 0;
        let mut now: Cycle = 0;
        for pass in 0..self.passes {
            for i in 0..lines {
                let lat = h.access(0, i * line, pass % 2 == 1, now);
                // Anything beyond the L1 hit latency is stall time.
                stalls += lat.saturating_sub(h.config().l1_latency);
                now += lat;
            }
        }
        let compute =
            (self.compute_cycles_per_byte * (block_bytes * self.passes as u64) as f64) as Cycle;
        (compute + stalls, stalls)
    }

    /// Stall fraction (`stalls / runtime`) for a working set size.
    pub fn stall_fraction(&self, block_bytes: u64) -> f64 {
        let (rt, st) = self.estimate(block_bytes);
        if rt == 0 {
            0.0
        } else {
            st as f64 / rt as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_hit_is_three_cycles() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::for_cores(2));
        let _ = h.access(0, 0x1000, false, 0);
        assert_eq!(h.access(0, 0x1000, false, 10), 3);
    }

    #[test]
    fn cold_miss_goes_to_dram() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::for_cores(2));
        let lat = h.access(0, 0x1000, false, 0);
        assert!(lat > 100, "cold miss must pay DRAM latency, got {lat}");
    }

    #[test]
    fn l2_hit_is_cheaper_than_dram() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::for_cores(2));
        let cold = h.access(0, 0x2000, false, 0);
        // Core 1 misses L1 but hits L2.
        let warm = h.access(1, 0x2000, false, 1000);
        assert!(warm < cold, "L2 hit {warm} must beat DRAM {cold}");
        assert_eq!(warm, 3 + 22);
    }

    #[test]
    fn write_to_shared_line_pays_invalidation() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::for_cores(2));
        let _ = h.access(0, 0x3000, false, 0);
        let _ = h.access(1, 0x3000, false, 500);
        // Core 0 upgrades to Modified: must invalidate core 1.
        let lat = h.access(0, 0x3000, true, 1000);
        assert!(lat > 3, "upgrade cannot be a pure L1 hit, got {lat}");
        assert_eq!(h.directory().invalidation_msgs(), 1);
    }

    #[test]
    fn dirty_read_triggers_intervention() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::for_cores(2));
        let _ = h.access(0, 0x4000, true, 0);
        let lat = h.access(1, 0x4000, false, 500);
        assert!(h.directory().interventions() == 1);
        assert_eq!(lat, 3 + 22 + 22);
    }

    #[test]
    fn runtime_model_knees_at_l1_capacity() {
        let m = TaskRuntimeModel::default();
        // Well under 64 KB: second and later passes all hit L1.
        let small = m.stall_fraction(16 << 10);
        // Well over 64 KB: every pass thrashes.
        let large = m.stall_fraction(512 << 10);
        assert!(
            large > 2.0 * small,
            "stall fraction must jump past the L1 knee: {small:.3} -> {large:.3}"
        );
    }

    #[test]
    fn runtime_grows_superlinearly_past_l1() {
        let m = TaskRuntimeModel::default();
        let (rt_64k, _) = m.estimate(64 << 10);
        let (rt_256k, _) = m.estimate(256 << 10);
        // 4x the data must cost more than 4x the time once thrashing.
        assert!(rt_256k > 4 * rt_64k, "{rt_64k} -> {rt_256k}");
    }
}
