//! DDR3 main-memory model: 4 memory controllers × 2 channels × one
//! 800 MHz DDR3 DIMM each (Table II).
//!
//! Each channel is a serial resource: an access pays a fixed device
//! latency plus data transfer at the channel's bandwidth, expressed in
//! core cycles (3.2 GHz). DDR3-800 moves 8 bytes × 1600 MT/s = 12.8 GB/s
//! ≈ 4 bytes per core cycle.

use tss_sim::{Cycle, ServerTimeline};

/// Memory-system parameters.
#[derive(Debug, Clone)]
pub struct DramConfig {
    /// Number of memory controllers (4 in Table II).
    pub controllers: usize,
    /// Channels per controller (2 in Table II).
    pub channels_per_ctrl: usize,
    /// Fixed access (row activate + CAS) latency in core cycles.
    pub access_cycles: Cycle,
    /// Channel bandwidth in bytes per core cycle.
    pub bytes_per_cycle: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            controllers: 4,
            channels_per_ctrl: 2,
            // ~30 ns device latency at 3.2 GHz.
            access_cycles: 96,
            bytes_per_cycle: 4,
        }
    }
}

/// The DRAM subsystem: a bank of serially-occupied channels.
#[derive(Debug)]
pub struct Dram {
    cfg: DramConfig,
    channels: Vec<ServerTimeline>,
    accesses: u64,
    bytes: u64,
}

impl Dram {
    /// Builds the DRAM model.
    ///
    /// # Panics
    ///
    /// Panics on a zero-channel or zero-bandwidth configuration.
    pub fn new(cfg: DramConfig) -> Self {
        let n = cfg.controllers * cfg.channels_per_ctrl;
        assert!(n > 0, "memory system needs at least one channel");
        assert!(cfg.bytes_per_cycle > 0, "channels need bandwidth");
        Dram { channels: vec![ServerTimeline::new(); n], cfg, accesses: 0, bytes: 0 }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Channel serving `addr` (line-interleaved across channels).
    pub fn channel_of(&self, addr: u64) -> usize {
        ((addr / 64) % self.channels.len() as u64) as usize
    }

    /// Performs an access of `bytes` at `addr` starting no earlier than
    /// `now`; returns the completion cycle.
    pub fn access(&mut self, addr: u64, bytes: u64, now: Cycle) -> Cycle {
        self.accesses += 1;
        self.bytes += bytes;
        let ch = self.channel_of(addr);
        let transfer = bytes.div_ceil(self.cfg.bytes_per_cycle).max(1);
        self.channels[ch].occupy(now, self.cfg.access_cycles + transfer)
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.bytes
    }

    /// Aggregate channel utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: Cycle) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        let busy: Cycle = self.channels.iter().map(|c| c.busy_cycles()).sum();
        busy as f64 / (horizon as f64 * self.channels.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_latency_includes_device_and_transfer() {
        let mut d = Dram::new(DramConfig::default());
        // 64B line at 4 B/cycle = 16 cycles + 96 access.
        assert_eq!(d.access(0, 64, 0), 112);
    }

    #[test]
    fn same_channel_serializes() {
        let mut d = Dram::new(DramConfig::default());
        let a = d.access(0, 64, 0);
        // Same line address -> same channel -> queues.
        let b = d.access(0, 64, 0);
        assert_eq!(b, a + 112);
    }

    #[test]
    fn different_channels_overlap() {
        let mut d = Dram::new(DramConfig::default());
        let a = d.access(0, 64, 0);
        let b = d.access(64, 64, 0); // next line -> next channel
        assert_eq!(a, b);
        assert_eq!(d.accesses(), 2);
    }

    #[test]
    fn channel_mapping_is_line_interleaved() {
        let d = Dram::new(DramConfig::default());
        assert_eq!(d.channel_of(0), 0);
        assert_eq!(d.channel_of(64), 1);
        assert_eq!(d.channel_of(64 * 8), 0); // 8 channels wrap
    }

    #[test]
    fn utilization_counts_all_channels() {
        let mut d = Dram::new(DramConfig::default());
        d.access(0, 64, 0);
        let u = d.utilization(112);
        assert!((u - 1.0 / 8.0).abs() < 1e-9, "{u}");
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        let _ = Dram::new(DramConfig { controllers: 0, ..DramConfig::default() });
    }
}
