//! Directory-based MSI coherence, embedded in the L2 (Table II).
//!
//! One [`Directory`] tracks every cached line's global state:
//!
//! - `Invalid` — no L1 holds the line (it may still be in L2/memory);
//! - `Shared(readers)` — one or more L1s hold a clean copy;
//! - `Modified(owner)` — exactly one L1 holds a dirty copy.
//!
//! `read`/`write` apply a full MSI transition and report what traffic the
//! access generated ([`AccessOutcome`]), which the hierarchy converts to
//! latency.

use std::collections::{BTreeSet, HashMap};

/// Global MSI state of one cache line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineState {
    /// No L1 holds the line.
    Invalid,
    /// Clean copies in these cores' L1s.
    Shared(BTreeSet<usize>),
    /// A single dirty copy in this core's L1.
    Modified(usize),
}

/// What a coherence transaction had to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The requester already had sufficient permission (no directory
    /// round-trip needed).
    pub local_hit: bool,
    /// A dirty copy was fetched/written back from another L1.
    pub owner_intervention: bool,
    /// Number of sharer copies invalidated.
    pub invalidations: usize,
}

/// The MSI directory.
#[derive(Debug, Default)]
pub struct Directory {
    lines: HashMap<u64, LineState>,
    interventions: u64,
    invalidation_msgs: u64,
}

impl Directory {
    /// An empty directory (all lines `Invalid`).
    pub fn new() -> Self {
        Self::default()
    }

    /// State of `line` (by line address).
    pub fn state(&self, line: u64) -> LineState {
        self.lines.get(&line).cloned().unwrap_or(LineState::Invalid)
    }

    /// Core `core` reads `line`.
    pub fn read(&mut self, core: usize, line: u64) -> AccessOutcome {
        let st = self.lines.entry(line).or_insert(LineState::Invalid);
        match st {
            LineState::Invalid => {
                *st = LineState::Shared(BTreeSet::from([core]));
                AccessOutcome { local_hit: false, owner_intervention: false, invalidations: 0 }
            }
            LineState::Shared(readers) => {
                let had = readers.contains(&core);
                readers.insert(core);
                AccessOutcome { local_hit: had, owner_intervention: false, invalidations: 0 }
            }
            LineState::Modified(owner) => {
                if *owner == core {
                    AccessOutcome { local_hit: true, owner_intervention: false, invalidations: 0 }
                } else {
                    // Owner writes back; both become sharers.
                    self.interventions += 1;
                    let prev = *owner;
                    *st = LineState::Shared(BTreeSet::from([prev, core]));
                    AccessOutcome { local_hit: false, owner_intervention: true, invalidations: 0 }
                }
            }
        }
    }

    /// Core `core` writes `line`.
    pub fn write(&mut self, core: usize, line: u64) -> AccessOutcome {
        let st = self.lines.entry(line).or_insert(LineState::Invalid);
        match st {
            LineState::Invalid => {
                *st = LineState::Modified(core);
                AccessOutcome { local_hit: false, owner_intervention: false, invalidations: 0 }
            }
            LineState::Shared(readers) => {
                let others = readers.iter().filter(|&&r| r != core).count();
                self.invalidation_msgs += others as u64;
                *st = LineState::Modified(core);
                AccessOutcome { local_hit: false, owner_intervention: false, invalidations: others }
            }
            LineState::Modified(owner) => {
                if *owner == core {
                    AccessOutcome { local_hit: true, owner_intervention: false, invalidations: 0 }
                } else {
                    self.interventions += 1;
                    *st = LineState::Modified(core);
                    AccessOutcome { local_hit: false, owner_intervention: true, invalidations: 1 }
                }
            }
        }
    }

    /// Core `core` evicts its copy of `line`.
    pub fn evict(&mut self, core: usize, line: u64) {
        if let Some(st) = self.lines.get_mut(&line) {
            match st {
                LineState::Shared(readers) => {
                    readers.remove(&core);
                    if readers.is_empty() {
                        *st = LineState::Invalid;
                    }
                }
                LineState::Modified(owner) if *owner == core => *st = LineState::Invalid,
                _ => {}
            }
        }
    }

    /// Dirty-copy interventions served.
    pub fn interventions(&self) -> u64 {
        self.interventions
    }

    /// Invalidation messages sent.
    pub fn invalidation_msgs(&self) -> u64 {
        self.invalidation_msgs
    }

    /// Lines with non-Invalid state (directory occupancy).
    pub fn tracked_lines(&self) -> usize {
        self.lines.values().filter(|s| !matches!(s, LineState::Invalid)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_read_installs_shared() {
        let mut d = Directory::new();
        let out = d.read(0, 0x40);
        assert!(!out.local_hit);
        assert_eq!(d.state(0x40), LineState::Shared(BTreeSet::from([0])));
    }

    #[test]
    fn multiple_readers_share() {
        let mut d = Directory::new();
        d.read(0, 0x40);
        d.read(1, 0x40);
        d.read(2, 0x40);
        assert_eq!(d.state(0x40), LineState::Shared(BTreeSet::from([0, 1, 2])));
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut d = Directory::new();
        d.read(0, 0x40);
        d.read(1, 0x40);
        let out = d.write(2, 0x40);
        assert_eq!(out.invalidations, 2);
        assert_eq!(d.state(0x40), LineState::Modified(2));
        assert_eq!(d.invalidation_msgs(), 2);
    }

    #[test]
    fn read_of_modified_forces_writeback() {
        let mut d = Directory::new();
        d.write(0, 0x40);
        let out = d.read(1, 0x40);
        assert!(out.owner_intervention);
        assert_eq!(d.state(0x40), LineState::Shared(BTreeSet::from([0, 1])));
        assert_eq!(d.interventions(), 1);
    }

    #[test]
    fn write_steals_ownership() {
        let mut d = Directory::new();
        d.write(0, 0x40);
        let out = d.write(1, 0x40);
        assert!(out.owner_intervention);
        assert_eq!(out.invalidations, 1);
        assert_eq!(d.state(0x40), LineState::Modified(1));
    }

    #[test]
    fn owner_rereads_and_rewrites_locally() {
        let mut d = Directory::new();
        d.write(0, 0x40);
        assert!(d.read(0, 0x40).local_hit);
        assert!(d.write(0, 0x40).local_hit);
        assert_eq!(d.interventions(), 0);
    }

    #[test]
    fn sharer_upgrade_invalidates_only_others() {
        let mut d = Directory::new();
        d.read(0, 0x40);
        d.read(1, 0x40);
        let out = d.write(0, 0x40);
        assert_eq!(out.invalidations, 1);
        assert_eq!(d.state(0x40), LineState::Modified(0));
    }

    #[test]
    fn eviction_clears_state() {
        let mut d = Directory::new();
        d.read(0, 0x40);
        d.read(1, 0x40);
        d.evict(0, 0x40);
        assert_eq!(d.state(0x40), LineState::Shared(BTreeSet::from([1])));
        d.evict(1, 0x40);
        assert_eq!(d.state(0x40), LineState::Invalid);
        assert_eq!(d.tracked_lines(), 0);

        d.write(2, 0x80);
        d.evict(2, 0x80);
        assert_eq!(d.state(0x80), LineState::Invalid);
    }

    #[test]
    fn foreign_evict_is_ignored() {
        let mut d = Directory::new();
        d.write(0, 0x40);
        d.evict(5, 0x40); // core 5 holds nothing
        assert_eq!(d.state(0x40), LineState::Modified(0));
    }
}
