//! Cache-hierarchy model for the simulated CMP (paper, Table II):
//! private 64 KB 4-way L1s (3-cycle), a shared L2 of 32 × 4 MB 8-way
//! banks (22-cycle) with directory-based MSI coherence embedded in the
//! L2, and 4 dual-channel DDR3-800 memory controllers.
//!
//! # Role in the reproduction
//!
//! The paper drives its evaluation with *measured task runtimes* (its
//! simulator is trace-driven), so the task pipeline itself never walks a
//! cache. This crate exists for two purposes:
//!
//! 1. **The Section II motivation.** The paper argues tasks must be sized
//!    to their L1 (64 KB blocks): "once the dataset exceeds the capacity
//!    of the per-core L1 cache, the code will start suffering from memory
//!    stalls". [`hierarchy::TaskRuntimeModel`] reproduces that crossover
//!    (used by the `motivation` bench harness).
//! 2. **A faithful substrate.** The backend can charge realistic
//!    dispatch/copy-back traffic costs, and the coherence machinery is a
//!    complete, tested MSI directory — the substrate the paper's CMP
//!    assumes.

#![forbid(unsafe_code)]

pub mod cache;
pub mod coherence;
pub mod dram;
pub mod hierarchy;

pub use cache::{CacheConfig, SetAssocCache};
pub use coherence::{AccessOutcome, Directory, LineState};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{HierarchyConfig, MemoryHierarchy, TaskRuntimeModel};
