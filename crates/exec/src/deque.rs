//! Per-worker work-stealing deques: a lock-free **Chase-Lev** deque.
//!
//! PR 3 shipped a `Mutex<VecDeque>` ring here, with a module doc
//! calling it a placeholder for Chase-Lev; that ring survives below as
//! [`tests::MutexDeque`], the differential-test oracle (the same
//! discipline PR 2 used when the calendar queue replaced the seed's
//! `BinaryHeap`). The live implementation is now the real thing:
//! atomic `bottom`/`top` indices over a growable circular buffer,
//! owner-LIFO `push`/`pop`, thief-FIFO [`steal`](ChaseLev::steal), and
//! [`steal_batch_into`](ChaseLev::steal_batch_into) which relieves a
//! victim of half its queue per visit (Cilk-style steal-half: a thief
//! that found work once is likely to need more, and batching amortizes
//! the victim scan), claiming each item through the full validated
//! steal protocol — see its doc for why a single multi-item CAS would
//! race the owner's pop fast path.
//!
//! Discipline (unchanged from PR 3): the owner pushes and pops at the
//! *bottom* (LIFO: newest task is cache-hottest and depth-first order
//! bounds the live set, as in Cilk); thieves steal from the *top*
//! (FIFO: the oldest task is the likeliest root of a large untouched
//! subtree).
//!
//! # Memory-ordering argument
//!
//! The protocol is the C11 formulation of Lê, Pop, Cocke & Pottier's
//! "Correct and Efficient Work-Stealing for Weakly Ordered Memory
//! Models" (PPoPP 2013); DESIGN.md §8 carries the full argument. The
//! short form:
//!
//! - **Cells are `AtomicU32`s** written `Relaxed`; they are published
//!   not by their own ordering but by the release/acquire edge on
//!   `bottom` (owner push → thief read) or on the buffer pointer
//!   (grow → thief read). A stale cell read is harmless: every steal
//!   validates with a CAS on `top` before the value is used.
//! - **`push`** stores the cell, then `bottom` with `Release` — a thief
//!   that observes the new `bottom` observes the cell.
//! - **`pop`** decrements `bottom` (`Relaxed`), issues a `SeqCst`
//!   fence, then reads `top`. The fence pairs with the one in `steal`:
//!   either the thief sees the decremented `bottom` (and gives up) or
//!   the owner sees the thief's `top` (and falls into the one-item CAS
//!   race). Without `SeqCst` here both could read stale values and pop
//!   the same item.
//! - **`steal`** reads `top` (`Acquire`), fences (`SeqCst`), reads
//!   `bottom` (`Acquire`), copies the cell(s), then CASes `top`
//!   (`SeqCst` on success). The CAS is the linearization point: cells
//!   are copied *before* it, so the owner reusing the slots *after* it
//!   cannot corrupt a successful steal.
//! - **Grow** copies live cells into a buffer of twice the capacity and
//!   publishes it with a `Release` store of the buffer pointer. The old
//!   buffer is retired to a graveyard, not freed: a thief that loaded
//!   the old pointer may still be reading it, and the old cells keep
//!   their pre-grow values forever (the owner writes only through the
//!   new buffer), so a stale reader stays *correct*, not just safe.
//!   Doubling growth bounds graveyard memory by the live buffer's size.
//!
//! `steal_batch_into` targets `k = ceil(avail/2)` items but claims them
//! one validated `steal` at a time. A single `top` CAS over the whole
//! range is tempting and **wrong**: the owner's CAS-free `pop` fast
//! path takes `bottom - 1` whenever it reads `top < bottom - 1`, and
//! `bottom` keeps falling after the thief snapshots it — the owner can
//! take an index strictly inside `(t, t+k)` without ever touching
//! `top`, and the thief's wide CAS (top still `t`) would then
//! double-claim it. Only index `top` itself is CAS-arbitrated, so only
//! one-index claims are sound.

use crate::sync::atomic::{fence, AtomicIsize, AtomicPtr, AtomicU32, Ordering};
use crate::sync::Mutex;

use tss_sim::CachePadded;

/// Largest number of tasks one `steal_batch_into` moves (the stack
/// staging buffer's size). Victims longer than `2 * BATCH_MAX` are
/// relieved of `BATCH_MAX` tasks per steal.
pub const BATCH_MAX: usize = 32;

/// Ordering of the grown-buffer publish in [`ChaseLev::push`]'s grow
/// path (DESIGN.md §10.3). The seeded-bug build weakens it to Relaxed —
/// CI's negative gate compiles with `--cfg tss_bug_publish_relaxed` and
/// expects `model_steal_batch_vs_grow` to fail with a replayable trace,
/// proving the model checker actually discriminates the ordering.
#[cfg(not(tss_bug_publish_relaxed))]
const BUF_PUBLISH: Ordering = Ordering::Release;
#[cfg(tss_bug_publish_relaxed)]
const BUF_PUBLISH: Ordering = Ordering::Relaxed;

/// The growable circular cell array. Capacity is always a power of two;
/// logical index `i` lives in cell `i & mask`. Cells are atomics so a
/// deliberately-racy stale read (always discarded by a failed `top`
/// CAS) is defined behavior rather than UB.
struct Buffer {
    mask: usize,
    cells: Box<[AtomicU32]>,
}

impl Buffer {
    fn alloc(cap: usize) -> *mut Buffer {
        debug_assert!(cap.is_power_of_two());
        let cells: Box<[AtomicU32]> = (0..cap).map(|_| AtomicU32::new(0)).collect();
        Box::into_raw(Box::new(Buffer { mask: cap - 1, cells }))
    }

    #[inline]
    fn cap(&self) -> usize {
        self.mask + 1
    }

    #[inline]
    fn read(&self, i: isize) -> u32 {
        self.cells[i as usize & self.mask].load(Ordering::Relaxed)
    }

    #[inline]
    fn write(&self, i: isize, v: u32) {
        self.cells[i as usize & self.mask].store(v, Ordering::Relaxed);
    }
}

/// One worker's lock-free Chase-Lev deque, shared with thieves.
///
/// # Ownership contract
///
/// [`push`](ChaseLev::push) and [`pop`](ChaseLev::pop) may be called by
/// **one thread at a time** (the owner). Ownership may migrate between
/// threads only through a happens-before edge (the executor hands the
/// injector's owner role along its window-commit turn, which is such an
/// edge). [`steal`](ChaseLev::steal) and
/// [`steal_batch_into`](ChaseLev::steal_batch_into) are safe from any
/// number of threads concurrently. Violating the owner contract cannot
/// corrupt memory (cells are atomics) but can lose or duplicate tasks —
/// the executor would fail its oracle check, not segfault.
///
/// `bottom`, `top`, and the buffer pointer each sit on their own padded
/// cache line: `top` is hammered by thieves' CASes and must not evict
/// the owner's `bottom` line on every attempt (the false-sharing half
/// of this PR's hot-path work).
pub struct ChaseLev {
    /// Owner end. Written only by the owner; read by thieves.
    bottom: CachePadded<AtomicIsize>,
    /// Thief end. CASed by thieves (and by the owner's last-item race).
    top: CachePadded<AtomicIsize>,
    /// Current cell array; replaced (never mutated in place) on grow.
    buf: CachePadded<AtomicPtr<Buffer>>,
    /// Retired buffers, freed on drop. Grow is rare (doubling), so a
    /// mutex here is off every hot path.
    graveyard: Mutex<Vec<*mut Buffer>>,
}

// SAFETY: all shared state is atomics; the raw buffer pointers are
// created by `Box::into_raw`, published with Release, read with
// Acquire, and freed only under `&mut self` (drop), after every thread
// with a stale pointer is gone (threads borrow the deque, so the borrow
// checker forces joins before drop).
unsafe impl Send for ChaseLev {}
unsafe impl Sync for ChaseLev {}

impl Default for ChaseLev {
    fn default() -> Self {
        ChaseLev::with_capacity(64)
    }
}

impl ChaseLev {
    /// An empty deque with the default initial capacity.
    pub fn new() -> Self {
        ChaseLev::default()
    }

    /// An empty deque whose buffer starts at `cap` rounded up to a
    /// power of two (≥ 8). Sizing to the expected live set skips the
    /// grow path entirely on the replay hot loop.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(8);
        ChaseLev {
            bottom: CachePadded::new(AtomicIsize::new(0)),
            top: CachePadded::new(AtomicIsize::new(0)),
            buf: CachePadded::new(AtomicPtr::new(Buffer::alloc(cap))),
            graveyard: Mutex::new(Vec::new()),
        }
    }

    /// A snapshot of the queue length (exact when quiescent; a hint
    /// under concurrency). Used by wake heuristics, never correctness.
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// Whether the queue appears empty (same caveat as [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn buffer(&self, order: Ordering) -> &Buffer {
        // SAFETY: the pointer was produced by `Buffer::alloc`
        // (`Box::into_raw`) and is freed only in `drop`/graveyard
        // teardown, which requires `&mut self`.
        unsafe { &*self.buf.load(order) }
    }

    /// Owner push (bottom / LIFO end).
    pub fn push(&self, task: u32) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buffer(Ordering::Relaxed);
        if b - t >= buf.cap() as isize {
            buf = self.grow(t, b);
        }
        buf.write(b, task);
        // Release publishes the cell to any thief that acquires the new
        // bottom.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner pop (bottom): newest task first.
    pub fn pop(&self) -> Option<u32> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        // Pairs with the fence in `steal`: one of the two sides must
        // see the other's index write (Dekker store-load).
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Empty: undo the reservation.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let v = buf.read(b);
        if t == b {
            // Last item: arbitrate with thieves via the top CAS.
            let won =
                self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(v);
        }
        Some(v)
    }

    /// Thief steal (top): oldest task first. Retries internally on CAS
    /// contention, so `None` means the deque was observed empty.
    pub fn steal(&self) -> Option<u32> {
        loop {
            let t = self.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.bottom.load(Ordering::Acquire);
            if t >= b {
                return None;
            }
            let v = self.buffer(Ordering::Acquire).read(t);
            // The cell was copied above; on success the slot is ours.
            if self.top.compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed).is_ok() {
                return Some(v);
            }
        }
    }

    /// Steals up to half of this deque (capped at [`BATCH_MAX`] and
    /// `max`): the oldest task is returned to run now and the rest land
    /// in `dest` — the **thief's own** deque — ordered so that
    /// `dest.pop()` yields them oldest-first, preserving the
    /// program-order bias of FIFO stealing.
    ///
    /// The batch target (`ceil(avail/2)`, snapshotted on entry) is
    /// claimed **one validated [`steal`](Self::steal) at a time**, not
    /// by a single multi-item `top` CAS. A single CAS over `[t, t+k)`
    /// would race the owner: `bottom` keeps falling as the owner pops,
    /// and its CAS-free fast path only arbitrates index `top` itself —
    /// it can legally take `t+1..t+k-1` while `top` still reads `t`, so
    /// the thief's wide CAS would then double-claim them. Re-running
    /// the full `steal` protocol (fence, fresh `bottom` read, CAS) per
    /// item makes every claim individually sound; the batch still
    /// amortizes the victim scan and relieves the victim of half its
    /// load in one visit.
    ///
    /// `dest` must be owned by the calling thread (owner contract).
    pub fn steal_batch_into(&self, dest: &ChaseLev, max: usize) -> Option<u32> {
        let max = max.clamp(1, BATCH_MAX);
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        let avail = b - t;
        if avail <= 0 {
            return None;
        }
        // Take-half target from the entry snapshot; each item is still
        // individually validated below, so a stale snapshot only ends
        // the batch early.
        let target = (((avail + 1) / 2) as usize).min(max);
        let mut tmp = [0u32; BATCH_MAX];
        let mut got = 0usize;
        while got < target {
            match self.steal() {
                Some(v) => {
                    tmp[got] = v;
                    got += 1;
                }
                None => break,
            }
        }
        if got == 0 {
            return None;
        }
        // Push the surplus newest-first so the thief pops (LIFO)
        // oldest-first.
        for &task in tmp[1..got].iter().rev() {
            dest.push(task);
        }
        Some(tmp[0])
    }

    /// Cold path: double the buffer, copy live cells, publish, retire.
    #[cold]
    fn grow(&self, t: isize, b: isize) -> &Buffer {
        let old_ptr = self.buf.load(Ordering::Relaxed);
        // SAFETY: same lifetime argument as `buffer`.
        let old = unsafe { &*old_ptr };
        let new_ptr = Buffer::alloc(old.cap() * 2);
        // SAFETY: freshly allocated above, not yet shared.
        let new = unsafe { &*new_ptr };
        for i in t..b {
            new.write(i, old.read(i));
        }
        // Release: a thief acquiring the new pointer sees the copies
        // (weakened by the seeded-bug cfg; see `BUF_PUBLISH`).
        self.buf.store(new_ptr, BUF_PUBLISH);
        self.graveyard.lock().expect("deque graveyard poisoned").push(old_ptr);
        new
    }
}

/// The victim-selection seam (DESIGN.md §13.4): fills `buf` with every
/// worker index except `me` (out of `n` workers), rotated so the scan
/// starts at a rotation-offset derived from `r`. This is exactly the
/// rotation the pre-§13 executor inlined — `others` ascending, scan
/// from `r % (n-1)` — split out so scheduling policies can compose it
/// (per-domain rotations, load-ordered scans) without re-deriving the
/// exclude-self index arithmetic.
pub fn rotate_victims(me: usize, n: usize, r: u64, buf: &mut Vec<usize>) {
    buf.clear();
    if n <= 1 {
        return;
    }
    let len = n - 1;
    let start = (r as usize) % len;
    for i in 0..len {
        let idx = (start + i) % len;
        // The ascending all-but-`me` list, materialized lazily:
        // element `idx` is `idx` below `me` and `idx + 1` at or above.
        buf.push(if idx < me { idx } else { idx + 1 });
    }
}

impl Drop for ChaseLev {
    fn drop(&mut self) {
        // SAFETY: `&mut self` guarantees no thread still reads these;
        // every pointer came from `Box::into_raw` exactly once.
        unsafe {
            drop(Box::from_raw(self.buf.load(Ordering::Relaxed)));
            for p in self.graveyard.get_mut().expect("deque graveyard poisoned").drain(..) {
                drop(Box::from_raw(p));
            }
        }
    }
}

impl std::fmt::Debug for ChaseLev {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaseLev")
            .field("len", &self.len())
            .field("cap", &self.buffer(Ordering::Relaxed).cap())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::AtomicUsize;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[test]
    fn rotate_victims_is_the_baseline_rotation() {
        // Must reproduce the pre-§13 inline scan: `others` ascending
        // (all-but-me), visited from `r % others.len()`.
        let mut buf = Vec::new();
        for n in 1..6usize {
            for me in 0..n {
                let others: Vec<usize> = (0..n).filter(|&v| v != me).collect();
                for r in 0..8u64 {
                    rotate_victims(me, n, r, &mut buf);
                    if others.is_empty() {
                        assert!(buf.is_empty());
                        continue;
                    }
                    let start = (r as usize) % others.len();
                    let want: Vec<usize> =
                        (0..others.len()).map(|i| others[(start + i) % others.len()]).collect();
                    assert_eq!(buf, want, "n={n} me={me} r={r}");
                }
            }
        }
    }

    /// PR 3's mutexed ring, demoted to differential-test oracle: under
    /// a lock, owner-LIFO/thief-FIFO semantics are trivially correct,
    /// so any sequential divergence from `ChaseLev` is a `ChaseLev`
    /// bug.
    #[derive(Debug, Default)]
    pub struct MutexDeque {
        ring: Mutex<VecDeque<u32>>,
    }

    impl MutexDeque {
        pub fn new() -> Self {
            MutexDeque::default()
        }

        pub fn push(&self, task: u32) {
            self.ring.lock().expect("deque poisoned").push_back(task);
        }

        pub fn pop(&self) -> Option<u32> {
            self.ring.lock().expect("deque poisoned").pop_back()
        }

        pub fn steal(&self) -> Option<u32> {
            self.ring.lock().expect("deque poisoned").pop_front()
        }

        /// Oracle twin of [`ChaseLev::steal_batch_into`].
        pub fn steal_batch_into(&self, dest: &MutexDeque, max: usize) -> Option<u32> {
            let max = max.clamp(1, BATCH_MAX);
            let mut g = self.ring.lock().expect("deque poisoned");
            let avail = g.len();
            if avail == 0 {
                return None;
            }
            let n = avail.div_ceil(2).min(max);
            let taken: Vec<u32> = g.drain(..n).collect();
            drop(g);
            // Newest-first pushes so LIFO pops run the batch
            // oldest-first, exactly as the lock-free implementation
            // arranges — and without touching whatever `dest` already
            // held.
            for &t in taken[1..].iter().rev() {
                dest.push(t);
            }
            Some(taken[0])
        }
    }

    #[test]
    fn owner_order_is_lifo() {
        let d = ChaseLev::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn thieves_take_the_oldest() {
        let d = ChaseLev::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.steal(), Some(1));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), Some(2));
        assert_eq!(d.steal(), None, "drained");
    }

    #[test]
    fn steal_on_empty_returns_none() {
        let d = ChaseLev::new();
        assert_eq!(d.steal(), None);
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal_batch_into(&ChaseLev::new(), 8), None);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let d = ChaseLev::with_capacity(8);
        for i in 0..1000 {
            d.push(i);
        }
        assert_eq!(d.len(), 1000);
        for i in (0..1000).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn steal_batch_takes_half_oldest_first() {
        let v = ChaseLev::new();
        let mine = ChaseLev::new();
        for i in 0..8 {
            v.push(i);
        }
        // 8 available: batch takes ceil(8/2) = 4 → runs 0, banks 1,2,3.
        assert_eq!(v.steal_batch_into(&mine, BATCH_MAX), Some(0));
        assert_eq!(mine.len(), 3);
        assert_eq!(mine.pop(), Some(1), "banked tasks pop oldest-first");
        assert_eq!(mine.pop(), Some(2));
        assert_eq!(mine.pop(), Some(3));
        assert_eq!(v.len(), 4, "victim keeps its newest half");
        assert_eq!(v.pop(), Some(7));
    }

    /// One interpreted op for the sequential differential test.
    fn apply_ops(ops: &[(u8, u8)]) -> (Vec<Option<u32>>, Vec<Option<u32>>) {
        let cl = ChaseLev::with_capacity(8);
        let cl_dest = ChaseLev::with_capacity(8);
        let mx = MutexDeque::new();
        let mx_dest = MutexDeque::new();
        let mut next = 0u32;
        let mut cl_out = Vec::new();
        let mut mx_out = Vec::new();
        for &(op, arg) in ops {
            match op % 4 {
                0 => {
                    cl.push(next);
                    mx.push(next);
                    next += 1;
                }
                1 => {
                    cl_out.push(cl.pop());
                    mx_out.push(mx.pop());
                }
                2 => {
                    cl_out.push(cl.steal());
                    mx_out.push(mx.steal());
                }
                _ => {
                    let max = (arg as usize % BATCH_MAX) + 1;
                    cl_out.push(cl.steal_batch_into(&cl_dest, max));
                    mx_out.push(mx.steal_batch_into(&mx_dest, max));
                    // The banked halves must agree too: drain both.
                    loop {
                        let (a, b) = (cl_dest.pop(), mx_dest.pop());
                        cl_out.push(a);
                        mx_out.push(b);
                        if a.is_none() && b.is_none() {
                            break;
                        }
                    }
                }
            }
        }
        // Drain what's left through alternating ends.
        loop {
            let (a, b) = (cl.pop(), mx.pop());
            cl_out.push(a);
            mx_out.push(b);
            if a.is_none() && b.is_none() {
                break;
            }
        }
        (cl_out, mx_out)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Sequential differential test: every interleaving of owner
        /// ops and (single-threaded) thief ops must match the mutexed
        /// oracle exactly, including batch sizes and banked order.
        #[test]
        fn chase_lev_matches_mutex_oracle(
            ops in prop::collection::vec((0u8..8, 0u8..32), 1..120),
        ) {
            let (cl, mx) = apply_ops(&ops);
            prop_assert_eq!(cl, mx);
        }
    }

    /// Concurrent stress: one owner pushes/pops, `thieves` thieves
    /// steal (mixing single and batch), with seeded yield points
    /// injected between operations to vary the interleaving on
    /// single-core CI machines. Every pushed value must be consumed
    /// exactly once across all consumers.
    fn stress(seed: u64, thieves: usize, items: u32, batch: bool) {
        let deque = ChaseLev::with_capacity(8);
        let consumed = AtomicUsize::new(0);
        let seen_cells: Vec<AtomicU32> = (0..items).map(|_| AtomicU32::new(0)).collect();
        std::thread::scope(|scope| {
            for th in 0..thieves {
                let deque = &deque;
                let consumed = &consumed;
                let seen_cells = &seen_cells;
                scope.spawn(move || {
                    let mine = ChaseLev::with_capacity(8);
                    let mut rng = seed ^ (th as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    while consumed.load(Ordering::SeqCst) < items as usize {
                        rng =
                            rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        if rng & 3 == 0 {
                            std::thread::yield_now();
                        }
                        let got = if batch && rng & 4 != 0 {
                            deque.steal_batch_into(&mine, BATCH_MAX)
                        } else {
                            deque.steal()
                        };
                        if let Some(v) = got {
                            seen_cells[v as usize].fetch_add(1, Ordering::SeqCst);
                            consumed.fetch_add(1, Ordering::SeqCst);
                        }
                        while let Some(v) = mine.pop() {
                            seen_cells[v as usize].fetch_add(1, Ordering::SeqCst);
                            consumed.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
            // Owner: push all items, popping a few along the way.
            let mut rng = seed;
            for v in 0..items {
                deque.push(v);
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if rng & 7 == 0 {
                    std::thread::yield_now();
                }
                if rng & 3 == 0 {
                    if let Some(p) = deque.pop() {
                        seen_cells[p as usize].fetch_add(1, Ordering::SeqCst);
                        consumed.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            // Owner drains the rest so the thieves can terminate.
            while let Some(p) = deque.pop() {
                seen_cells[p as usize].fetch_add(1, Ordering::SeqCst);
                consumed.fetch_add(1, Ordering::SeqCst);
            }
        });
        for (i, c) in seen_cells.iter().enumerate() {
            let n = c.load(Ordering::SeqCst);
            assert_eq!(n, 1, "item {i} consumed {n} times (seed {seed})");
        }
    }

    #[test]
    fn concurrent_steal_loses_nothing() {
        for seed in [1u64, 7, 42] {
            stress(seed, 2, 4_000, false);
        }
    }

    #[test]
    fn concurrent_batch_steal_loses_nothing() {
        for seed in [3u64, 11, 99] {
            stress(seed, 3, 4_000, true);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Seeds × thief counts × batch modes: the interleaving-varied
        /// stress above, driven by proptest.
        #[test]
        fn concurrent_stress_over_seeds(
            seed in 1u32..1_000_000,
            thieves in 1usize..4,
            batch in 0u8..2,
        ) {
            stress(seed as u64, thieves, 1_500, batch == 1);
        }
    }
}

/// Model-checked interleaving tests (DESIGN.md §10.3). Compiled only
/// under `RUSTFLAGS="--cfg tss_model_check"`, where the sync facade
/// swaps every atomic for shuttle's scheduler-instrumented double; CI's
/// `verify` job runs them with bounded budgets.
#[cfg(all(test, tss_model_check))]
mod model_tests {
    use super::*;
    use shuttle::thread;
    use std::sync::Arc;

    /// Owner pop racing one thief on the single last element: every
    /// interleaving (exhaustively enumerated — ~80k schedules including
    /// all stale-read choices) hands the element to exactly one side —
    /// the `top` CAS arbitration at `t == b`.
    #[test]
    fn model_pop_vs_steal_last_element() {
        let report = shuttle::check_exhaustive(150_000, || {
            let q = Arc::new(ChaseLev::with_capacity(8));
            q.push(7);
            let q2 = q.clone();
            let thief = thread::spawn(move || q2.steal());
            let mine = q.pop();
            let stolen = thief.join().unwrap();
            match (mine, stolen) {
                (Some(7), None) | (None, Some(7)) => {}
                other => panic!("last element claimed {other:?}"),
            }
        });
        assert!(report.complete, "budget too small: {} schedules", report.schedules);
    }

    /// Two elements, owner pops both while a thief steals: the three
    /// claims always partition the set exactly (nothing lost, nothing
    /// doubled) — exercises both the guarded (t == b) and unguarded
    /// (t < b) owner paths against a concurrent CAS. The full tree is
    /// millions of schedules, so this one is searched by seeded PCT and
    /// uniform-random policies instead of enumerated.
    #[test]
    fn model_pop_vs_steal_two_elements() {
        let scenario = || {
            let q = Arc::new(ChaseLev::with_capacity(8));
            q.push(1);
            q.push(2);
            let q2 = q.clone();
            let thief = thread::spawn(move || q2.steal());
            let a = q.pop();
            let b = q.pop();
            let s = thief.join().unwrap();
            let mut got: Vec<u32> = [a, b, s].iter().flatten().copied().collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2], "claims {a:?}/{b:?} vs steal {s:?}");
        };
        shuttle::check_pct(0x7EA1_5AFE, 600, 3, scenario);
        shuttle::check_random(0x7EA1_5AFE, 600, scenario);
    }

    /// `steal_batch_into` racing the owner's grow: every task claimed
    /// exactly once, and no thief ever observes an unpublished cell.
    /// This is the seeded-bug catcher: under
    /// `--cfg tss_bug_publish_relaxed` (grow's buffer publish weakened
    /// Release→Relaxed) a schedule exists where the thief reads the new
    /// buffer pointer without the copies being visible, steals a stale
    /// `0`, and this assertion fails with a replayable trace.
    #[test]
    fn model_steal_batch_vs_grow() {
        shuttle::check_pct(0x5EED_CAFE, 400, 3, || {
            let q = Arc::new(ChaseLev::with_capacity(8));
            for v in 1..=8 {
                q.push(v);
            }
            let q2 = q.clone();
            let thief = thread::spawn(move || {
                let dest = ChaseLev::with_capacity(8);
                let mut got = Vec::new();
                got.extend(q2.steal_batch_into(&dest, 4));
                while let Some(v) = dest.pop() {
                    got.push(v);
                }
                got
            });
            q.push(9); // b - t == cap here unless the thief got in first: grow
            q.push(10);
            let mut all = thief.join().unwrap();
            while let Some(v) = q.pop() {
                all.push(v);
            }
            all.sort_unstable();
            assert_eq!(all, (1..=10).collect::<Vec<u32>>(), "lost, duplicated, or stale value");
        });
    }

    /// Buffer retire/reclaim: the owner grows (at least once — twice
    /// when the thief is slow) while a thief works the old buffers.
    /// Retired buffers park in the graveyard (never freed mid-run), so
    /// late steals through a stale buffer pointer still read valid
    /// cells; teardown then reclaims everything (the drop at the end of
    /// each schedule runs the `Box::from_raw` loop).
    #[test]
    fn model_grow_retires_buffers_safely() {
        shuttle::check_random(0xBADC_0FFE, 300, || {
            let q = Arc::new(ChaseLev::with_capacity(8));
            for v in 1..=8 {
                q.push(v);
            }
            let q2 = q.clone();
            let thief = thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..3 {
                    got.extend(q2.steal());
                }
                got
            });
            for v in 9..=17 {
                q.push(v); // 17 live at most: crosses cap 8, often 16
            }
            let mut all = thief.join().unwrap();
            // The thief can take at most 3, so ≥ 14 were live at push
            // time and the 8→16 grow is unavoidable in every schedule.
            assert!(q.buffer(Ordering::Relaxed).cap() >= 16, "expected at least one grow");
            while let Some(v) = q.pop() {
                all.push(v);
            }
            all.sort_unstable();
            assert_eq!(all, (1..=17).collect::<Vec<u32>>(), "retired buffer corrupted a claim");
        });
    }

    /// PR 6 regression pin (ISSUE 6 satellite): the contested
    /// last-element schedule — the thief wins the `top` CAS while the
    /// owner has already reserved `bottom` — found by a fixed seed and
    /// then replayed by trace. A probe panic marks the interleaving;
    /// the replay must reproduce it identically across runs, guarding
    /// both the deque protocol and the replay machinery against drift.
    #[test]
    fn model_regression_contested_last_element_replays() {
        let scenario = || {
            let q = Arc::new(ChaseLev::with_capacity(8));
            q.push(7);
            let q2 = q.clone();
            let thief = thread::spawn(move || q2.steal());
            let mine = q.pop();
            let stolen = thief.join().unwrap();
            match (mine, stolen) {
                (None, Some(7)) => panic!("contested: thief won the last element"),
                (Some(7), None) => {}
                other => panic!("last element claimed {other:?}"),
            }
        };
        let found = shuttle::explore_random(0xD00D_FEED, 500, scenario)
            .expect_err("seed no longer reaches the contested schedule");
        assert!(
            found.message.contains("contested: thief won"),
            "found a different schedule: {}",
            found.message
        );
        let r1 = shuttle::replay(&found.trace, scenario).expect("replay lost the schedule");
        let r2 = shuttle::replay(&found.trace, scenario).expect("replay lost the schedule");
        assert_eq!(r1.message, r2.message, "replay is not deterministic");
        assert!(r1.message.contains("contested: thief won"));
    }

    /// The §11 worker-loss adoption path: an owner dies mid-run (its
    /// thread simply stops popping, exactly like the executor's
    /// injected kill between tasks) with work still in its deque. The
    /// Chase-Lev top end needs no owner cooperation, so in every
    /// interleaving the survivor's batch steals drain the abandoned
    /// deque completely — nothing is lost with the owner gone, whether
    /// it died before, during, or after the survivor's first steal.
    #[test]
    fn model_worker_loss_deque_adoption() {
        shuttle::check_pct(0xDEAD_BEEF, 400, 3, || {
            let q = Arc::new(ChaseLev::with_capacity(8));
            q.push(1);
            q.push(2);
            let q2 = q.clone();
            // The dying owner: completes one task (one pop), then the
            // injected kill returns it without draining the rest.
            let owner = thread::spawn(move || q2.pop());
            // The survivor adopts whatever the owner abandoned: rescan
            // until the deque is observably drained (the worker loop's
            // steal-retry shape).
            let dest = ChaseLev::with_capacity(8);
            let mut got: Vec<u32> = Vec::new();
            loop {
                got.extend(q.steal_batch_into(&dest, 4));
                while let Some(v) = dest.pop() {
                    got.push(v);
                }
                if q.is_empty() {
                    break;
                }
            }
            let owned = owner.join().unwrap();
            got.extend(owned);
            got.sort_unstable();
            assert_eq!(got, vec![1, 2], "abandoned deque lost work (owner took {owned:?})");
        });
    }
}
