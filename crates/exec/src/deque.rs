//! Per-worker work-stealing deques.
//!
//! **Documented choice: a mutexed ring, not a hand-rolled Chase-Lev.**
//! A lock-free Chase-Lev deque needs `unsafe` raw-pointer buffers and a
//! subtle acquire/release protocol; its payoff is contention-free owner
//! pops under heavy parallelism. This workspace's bar is different: the
//! executor must be *auditable* (it is the correctness reference for
//! native replay — an executor race would be indistinguishable from a
//! renamer bug in the oracle check), it must run on tiny CI machines
//! (the dev container exposes a single hardware thread, where lock-free
//! spinning pessimizes), and its throughput story is measured by the
//! harness either way. A `Mutex<VecDeque>` ring keeps the whole
//! scheduling layer safe Rust; the uncontended fast path is a single
//! CAS (futex-free) lock acquisition, ~20 ns — invisible next to even
//! the no-op payload's bookkeeping. If a profile ever shows deque
//! contention, `steal_batch` (taking half, Chase-Lev style) is the
//! first lever, swapping the implementation the second.
//!
//! Discipline: the owner pushes and pops at the *back* (LIFO: newest
//! task is cache-hottest and depth-first order bounds the live set, as
//! in Cilk); thieves steal from the *front* (FIFO: oldest task is the
//! likeliest root of a large untouched subtree).

use std::collections::VecDeque;
use std::sync::Mutex;

/// One worker's deque, shared with thieves. Steal accounting is the
/// thief's job (`WorkerStats::steals`) — the deque itself carries no
/// counters on the hot path.
#[derive(Debug, Default)]
pub struct WorkDeque {
    ring: Mutex<VecDeque<u32>>,
}

impl WorkDeque {
    /// An empty deque.
    pub fn new() -> Self {
        WorkDeque::default()
    }

    /// Owner push (back / LIFO end).
    pub fn push(&self, task: u32) {
        self.ring.lock().expect("deque poisoned").push_back(task);
    }

    /// Owner pop (back): newest task first.
    pub fn pop(&self) -> Option<u32> {
        self.ring.lock().expect("deque poisoned").pop_back()
    }

    /// Thief steal (front): oldest task first.
    pub fn steal(&self) -> Option<u32> {
        self.ring.lock().expect("deque poisoned").pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_order_is_lifo() {
        let d = WorkDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), Some(1));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn thieves_take_the_oldest() {
        let d = WorkDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.steal(), Some(1));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.steal(), Some(2));
        assert_eq!(d.steal(), None, "drained");
    }

    #[test]
    fn steal_on_empty_returns_none() {
        let d = WorkDeque::new();
        assert_eq!(d.steal(), None);
        assert_eq!(d.pop(), None);
    }
}
