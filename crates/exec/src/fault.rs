//! The failure domain of the native executor (DESIGN.md §11).
//!
//! Everything here is *policy and vocabulary*; the mechanism (the
//! containment boundary, the POISONED readiness sentinel, the watchdog)
//! lives in `executor.rs`. The split keeps the executor's hot path free
//! of policy branching: workers consult a pre-resolved [`FaultPlan`]
//! and report [`TaskFailure`] values; the run-level verdict
//! ([`ExecError`] or a populated [`FaultReport`]) is assembled once at
//! join time.
//!
//! Determinism contract: every injected fault is a pure function of
//! `(fault seed, task id, attempt)` (see
//! `tss_workloads::payload::fault_decision`), and retry backoff is a
//! pure function of `(fault seed, task id, attempt)` too. The *set* of
//! failed/poisoned tasks is therefore identical across thread counts;
//! the *interleaving* (which worker hit the fault, wall times) is not.

use std::fmt;
use std::time::Duration;

pub use tss_workloads::payload::{fault_decision, InjectedFault};

/// Marker embedded in every injected panic's payload so the process
/// panic hook can keep chaos runs quiet without hiding real bugs.
pub const INJECTED_PANIC_MARKER: &str = "[tss-injected-fault]";

/// What the run does when a task attempt fails.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Stop the run at the first failure and return it as an error.
    /// This is the pre-failure-domain semantics, minus the abort: the
    /// executor drains in-flight work, joins every worker, and returns
    /// `Err(ExecError::TaskFailed)`.
    #[default]
    FailFast,
    /// Re-run a failed task up to `max_attempts` total attempts, with a
    /// seeded-deterministic backoff between attempts. A task that
    /// exhausts its attempts is quarantined (cone-poisoned) like under
    /// [`FailurePolicy::Quarantine`].
    Retry {
        /// Total attempts per task (first run included); >= 1.
        max_attempts: u32,
        /// Base backoff unit; attempt `k` waits roughly `k * backoff`
        /// with a seeded jitter. `Duration::ZERO` disables waiting.
        backoff: Duration,
    },
    /// Mark the task failed, transitively poison its successor cone
    /// through the release protocol, and keep executing the rest of the
    /// graph — discard the cone, not the run.
    Quarantine,
}

impl FailurePolicy {
    /// CLI name → policy (`fail-fast`, `retry`, `quarantine`).
    pub fn parse(name: &str, max_attempts: u32, backoff: Duration) -> Option<FailurePolicy> {
        match name {
            "fail-fast" => Some(FailurePolicy::FailFast),
            "retry" => Some(FailurePolicy::Retry { max_attempts, backoff }),
            "quarantine" => Some(FailurePolicy::Quarantine),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            FailurePolicy::FailFast => "fail-fast",
            FailurePolicy::Retry { .. } => "retry",
            FailurePolicy::Quarantine => "quarantine",
        }
    }

    /// Total attempts a task gets under this policy.
    pub fn max_attempts(&self) -> u32 {
        match self {
            FailurePolicy::Retry { max_attempts, .. } => (*max_attempts).max(1),
            _ => 1,
        }
    }
}

/// Why one task (after all its attempts) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskFailure {
    /// The payload panicked; the message is the stringified payload.
    Panicked {
        /// Panic payload rendered to a string (`"<non-string panic>"`
        /// when the payload was not a string).
        message: String,
    },
    /// The payload exceeded the per-task deadline and was cancelled.
    Deadline,
}

impl fmt::Display for TaskFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskFailure::Panicked { message } => write!(f, "panicked: {message}"),
            TaskFailure::Deadline => write!(f, "exceeded task deadline"),
        }
    }
}

/// One task's final failure record, as surfaced in `FaultReport`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedTask {
    /// The failing task's id.
    pub task: u32,
    /// Attempts consumed (1 for non-retry policies).
    pub attempts: u32,
    /// The last attempt's failure.
    pub failure: TaskFailure,
}

/// Failure accounting for one run, carried in `ExecReport`. The
/// reconciliation invariant (checked by the harness and the chaos
/// tests): `clean first-try completions + retried-into-success +
/// failed + poisoned = tasks`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Tasks that finally failed (every attempt consumed), sorted by
    /// task id.
    pub failed: Vec<FailedTask>,
    /// Tasks transitively poisoned by a failed producer (quarantine
    /// cone, the failed tasks themselves excluded), sorted by task id.
    pub poisoned: Vec<u32>,
    /// Tasks that failed at least one attempt but eventually completed.
    pub retried_ok: usize,
    /// `retry_hist[k]`: tasks whose final outcome (success or failure)
    /// consumed `k + 1` attempts. Empty unless the policy retries;
    /// poisoned tasks consume no attempts and are not counted.
    pub retry_hist: Vec<u64>,
    /// Worker threads lost during the run (injected kills plus real
    /// thread deaths the survivors absorbed).
    pub workers_lost: usize,
}

impl FaultReport {
    /// Whether this run saw any failure activity at all.
    pub fn any(&self) -> bool {
        !self.failed.is_empty()
            || !self.poisoned.is_empty()
            || self.retried_ok > 0
            || self.workers_lost > 0
    }
}

/// Why a run returned `Err` instead of a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// `FailurePolicy::FailFast` and a task failed: the first failure
    /// observed (by completion-ticket order at one worker; ties under
    /// parallelism pick an arbitrary first).
    TaskFailed(FailedTask),
    /// The whole-run deadline expired before the graph drained.
    RunDeadline {
        /// The configured run deadline.
        deadline: Duration,
        /// Tasks that had completed (incl. failed/poisoned) at expiry.
        completed: usize,
        /// Total tasks in the run.
        tasks: usize,
    },
    /// An external [`CancelToken`](crate::CancelToken) fired
    /// (DESIGN.md §14.3): the run aborted cleanly and joined every
    /// thread, but the graph did not drain.
    Cancelled {
        /// Tasks that had completed (incl. failed/poisoned) at the
        /// abort.
        completed: usize,
        /// Total tasks in the run.
        tasks: usize,
    },
    /// A worker or decoder thread died from a non-payload panic (an
    /// executor bug, or an injected worker kill under `FailFast`); the
    /// run still joined every surviving thread.
    WorkerPanic {
        /// Stringified panic payload from the first dead thread.
        message: String,
    },
    /// The post-run dependency oracle rejected the completion order.
    OracleViolation {
        /// Human-readable violation (task ids and the broken edge).
        detail: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::TaskFailed(t) => {
                write!(f, "task {} failed after {} attempt(s): {}", t.task, t.attempts, t.failure)
            }
            ExecError::RunDeadline { deadline, completed, tasks } => write!(
                f,
                "run deadline ({deadline:?}) expired with {completed}/{tasks} tasks complete"
            ),
            ExecError::Cancelled { completed, tasks } => {
                write!(f, "run cancelled with {completed}/{tasks} tasks complete")
            }
            ExecError::WorkerPanic { message } => write!(f, "worker thread panicked: {message}"),
            ExecError::OracleViolation { detail } => {
                write!(f, "dependency oracle violation: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// The resolved chaos configuration a run executes under. Built once by
/// `Executor::run` from the `PayloadMode` and `ExecConfig`; workers
/// only ever read it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Injection probability in parts-per-million (0 = no injection).
    pub rate_ppm: u32,
    /// Seed for fault rolls and retry backoff jitter.
    pub seed: u64,
    /// Worker index whose thread is killed after its first task
    /// completes (exercises the worker-loss/deque-adoption path).
    pub kill_worker: Option<usize>,
}

impl FaultPlan {
    /// True when any chaos mechanism is armed.
    pub fn enabled(&self) -> bool {
        self.rate_ppm > 0 || self.kill_worker.is_some()
    }

    /// The deterministic fault roll for one `(task, attempt)`.
    pub fn decide(&self, task: u32, attempt: u32) -> Option<InjectedFault> {
        fault_decision(self.seed, task, attempt, self.rate_ppm)
    }

    /// The fault roll as the executor applies it: a [`InjectedFault::Delay`]
    /// stalls until the deadline watchdog cancels it, so when no
    /// per-task deadline is armed it is deterministically downgraded to
    /// a panic (a delay nobody cancels would hang the run). The chaos
    /// oracle mirrors this exact rule.
    pub fn effective(
        &self,
        task: u32,
        attempt: u32,
        deadline_armed: bool,
    ) -> Option<InjectedFault> {
        match self.decide(task, attempt) {
            Some(InjectedFault::Delay) if !deadline_armed => Some(InjectedFault::Panic),
            other => other,
        }
    }
}

/// Seeded-deterministic retry backoff for attempt `attempt` (1-based:
/// the wait before attempt 2 passes `attempt = 1`). Linear base with a
/// ±25% jitter hashed from `(seed, task, attempt)` — deterministic per
/// task, de-synchronized across tasks so retries don't stampede.
pub fn backoff_for(seed: u64, task: u32, attempt: u32, base: Duration) -> Duration {
    if base.is_zero() {
        return Duration::ZERO;
    }
    let mut z = seed ^ 0xD6E8_FEB8_6659_FD93u64;
    z = z.wrapping_add((task as u64) << 32 | attempt as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let base_ns = base.as_nanos() as u64 * attempt as u64;
    // jitter in [-25%, +25%): base/4 scaled by a hash fraction.
    let jitter = ((z >> 32) * (base_ns / 2)) >> 32;
    Duration::from_nanos(base_ns - base_ns / 4 + jitter)
}

/// Installs a process panic hook (once) that suppresses the default
/// backtrace spam for *injected* panics — identified by
/// [`INJECTED_PANIC_MARKER`] in the payload — while passing every other
/// panic to the previous hook untouched. Chaos runs at a 5% rate would
/// otherwise drown real diagnostics in expected noise.
pub fn install_quiet_hook() {
    use std::sync::OnceLock;
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains(INJECTED_PANIC_MARKER))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&'static str>()
                        .map(|s| s.contains(INJECTED_PANIC_MARKER))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Renders a caught panic payload for [`TaskFailure::Panicked`].
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else {
        "<non-string panic>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parse_round_trips() {
        for name in ["fail-fast", "retry", "quarantine"] {
            let p = FailurePolicy::parse(name, 3, Duration::ZERO).unwrap();
            assert_eq!(p.name(), name);
        }
        assert_eq!(FailurePolicy::parse("ignore", 3, Duration::ZERO), None);
    }

    #[test]
    fn max_attempts_respects_policy() {
        assert_eq!(FailurePolicy::FailFast.max_attempts(), 1);
        assert_eq!(FailurePolicy::Quarantine.max_attempts(), 1);
        let r = FailurePolicy::Retry { max_attempts: 4, backoff: Duration::ZERO };
        assert_eq!(r.max_attempts(), 4);
        // A degenerate retry config still gets one attempt.
        let r0 = FailurePolicy::Retry { max_attempts: 0, backoff: Duration::ZERO };
        assert_eq!(r0.max_attempts(), 1);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let base = Duration::from_millis(10);
        for task in 0..32u32 {
            for attempt in 1..4u32 {
                let a = backoff_for(5, task, attempt, base);
                let b = backoff_for(5, task, attempt, base);
                assert_eq!(a, b);
                let scaled = base * attempt;
                assert!(a >= scaled * 3 / 4 && a < scaled * 5 / 4, "backoff {a:?} out of band");
            }
        }
        assert_eq!(backoff_for(5, 0, 1, Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn plan_enabled_logic() {
        assert!(!FaultPlan::default().enabled());
        assert!(FaultPlan { rate_ppm: 1, ..Default::default() }.enabled());
        assert!(FaultPlan { kill_worker: Some(0), ..Default::default() }.enabled());
    }

    #[test]
    fn error_messages_name_the_cause() {
        let e = ExecError::TaskFailed(FailedTask {
            task: 7,
            attempts: 2,
            failure: TaskFailure::Deadline,
        });
        assert!(e.to_string().contains("task 7"));
        assert!(e.to_string().contains("deadline"));
        let e =
            ExecError::RunDeadline { deadline: Duration::from_secs(1), completed: 3, tasks: 10 };
        assert!(e.to_string().contains("3/10"));
    }

    #[test]
    fn panic_message_renders_both_string_kinds() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str".to_string());
        assert_eq!(panic_message(&*s), "static str");
        let s: Box<dyn std::any::Any + Send> = Box::new("literal");
        assert_eq!(panic_message(&*s), "literal");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(&*s), "<non-string panic>");
    }
}
