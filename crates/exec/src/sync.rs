//! The sync facade (DESIGN.md §10.1): the single import point for every
//! atomic, mutex, and condvar in the concurrency core (`deque`,
//! `executor`, and `tss-core::fabric`).
//!
//! Under a normal build these are re-exports of the real `std::sync`
//! types — zero cost, zero behavior change. Under
//! `RUSTFLAGS="--cfg tss_model_check"` they swap to the vendored
//! `shuttle` doubles, whose every operation is a controlled yield point
//! of a deterministic model-checking scheduler (see `vendor/shuttle`).
//! The repo lint (`cargo run --bin tss-lint`) rejects direct
//! `std::sync::atomic` imports in the facaded files, so the model
//! checker always sees every synchronization op.
//!
//! `shuttle` is an unconditional (tiny) dependency because cargo cannot
//! toggle dependencies on a RUSTFLAGS cfg; outside a model run its
//! types degrade to raw `std` operations.
//!
//! The failure domain (DESIGN.md §11) routes its handshake state
//! through this facade too: per-task status bytes (`AtomicU8` — added
//! to the shuttle doubles for exactly this) and payload cancel flags
//! all come from `crate::sync::atomic`, so the POISONED-sentinel
//! publish/observe protocol is model-checked with the same fidelity as
//! the deque and parker.

#[cfg(not(tss_model_check))]
pub use std::sync::atomic;
#[cfg(not(tss_model_check))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(tss_model_check)]
pub use shuttle::sync::atomic;
#[cfg(tss_model_check)]
pub use shuttle::sync::{Condvar, Mutex, MutexGuard};
