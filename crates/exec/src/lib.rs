//! `tss-exec` — a native out-of-order task executor.
//!
//! Everything else in this workspace *simulates* the paper's pipeline
//! cycle by cycle; this crate *is* the pipeline, in software, at host
//! speed: the role StarSs plays for the paper's hardware — except built
//! the way the paper argues a task window should be (DESIGN.md §7).
//! Three layers:
//!
//! 1. **[`renamer`]** — a software ORT/OVT: decodes `in`/`out`/`inout`
//!    operands of a [`TaskTrace`] (or of tasks spawned through
//!    [`TaskGraphBuilder`]) into producer→consumer chains, either in
//!    one in-order pass ([`Renamer`]) or streamed in windows with
//!    address interning sharded across decode threads
//!    ([`StreamingRenamer`] — the distributed-ORT analogy).
//! 2. **[`executor`]** — real `std::thread` workers over lock-free
//!    Chase-Lev work-stealing deques ([`deque`]), O(1) atomic
//!    readiness counters, and pluggable [`payload`]s (no-op /
//!    spin-for-runtime / memcpy-over-footprint). [`Executor::run`]
//!    *pipelines* decode into execution: workers replay early windows
//!    while decode threads still rename later ones.
//! 3. **Validation & metrics** — every run emits a completion log that
//!    is checked against the `tss-trace::DepGraph` oracle (a violating
//!    order fails the run), plus tasks/sec, per-worker utilization,
//!    and steal counts in the [`ExecReport`].
//! 4. **A failure domain** ([`fault`], DESIGN.md §11) — every payload
//!    runs inside a `catch_unwind` containment boundary; a panicking or
//!    deadline-blown task becomes a structured [`TaskFailure`] handled
//!    by the configured [`FailurePolicy`] (fail fast / seeded retry /
//!    quarantine-and-continue), and [`Executor::run`] returns
//!    `Result<ExecReport, ExecError>` instead of panicking.
//!
//! ```
//! use tss_exec::{ExecConfig, Executor, TaskGraphBuilder};
//!
//! // Spawn a 2-stage pipeline through the public API...
//! let mut b = TaskGraphBuilder::new("demo");
//! let produce = b.kernel("produce");
//! let consume = b.kernel("consume");
//! for i in 0..4u64 {
//!     let buf = 0x1000 + i * 0x100;
//!     b.task(produce).runtime_us(1.0).output(buf, 256).spawn();
//!     b.task(consume).runtime_us(1.0).input(buf, 256).spawn();
//! }
//! // ...and replay it on two real threads, oracle-checked.
//! let report = Executor::new(ExecConfig { threads: 2, ..Default::default() })
//!     .run(&b.build())
//!     .expect("replay failed");
//! assert_eq!(report.tasks, 8);
//! assert!(report.validated);
//! ```

// The unsafe surface of this crate (raw deque buffers) is audited by
// `tss-lint`; inside unsafe fns every unsafe op still needs its own
// block + SAFETY comment.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod deque;
pub mod executor;
pub mod fault;
pub mod payload;
pub mod renamer;
pub mod sched;
pub mod sync;

pub use deque::ChaseLev;
pub use executor::{run_trace, CancelToken, ExecConfig, ExecReport, Executor, WorkerStats};
pub use fault::{ExecError, FailedTask, FailurePolicy, FaultReport, InjectedFault, TaskFailure};
pub use payload::PayloadMode;
pub use renamer::{RenameStats, Renamer, StreamingRenamer, TaskGraph};
pub use sched::{
    CostAwarePolicy, FifoPolicy, LifoPolicy, LocalityPolicy, SchedKind, SchedPolicy, SCHED_MENU,
};

/// The observability layer (DESIGN.md §12), re-exported so harnesses
/// can consume [`ExecReport::obs`] (`tss_obs::ObsReport`, Chrome trace
/// export, histograms) without naming the crate themselves.
pub use tss_obs as obs;

/// Whether this build records observability data (`obs` feature →
/// `tss-obs/ring`). `false` means [`ExecReport::obs`] is always `None`
/// and the sinks compile to nothing — harnesses use this to reject
/// `--trace-out`/`--histogram` up front instead of writing empty files.
pub const fn obs_enabled() -> bool {
    tss_obs::ENABLED
}

use tss_sim::us_to_cycles;
use tss_trace::{KernelId, OperandDesc, TaskDesc, TaskId, TaskTrace};

/// Builds a task graph through spawn calls instead of a pre-recorded
/// trace — the programming-model face of the executor (what a StarSs
/// `#pragma css task` expands to at runtime).
///
/// Tasks are recorded in spawn (program) order; the renamer decodes
/// them exactly as it would a trace from disk.
#[derive(Debug, Clone, Default)]
pub struct TaskGraphBuilder {
    trace: TaskTrace,
}

impl TaskGraphBuilder {
    /// An empty graph with a name.
    pub fn new(name: impl Into<String>) -> Self {
        TaskGraphBuilder { trace: TaskTrace::new(name) }
    }

    /// Registers a kernel function.
    pub fn kernel(&mut self, name: impl Into<String>) -> KernelId {
        self.trace.add_kernel(name)
    }

    /// Starts spawning one task of `kernel`; finish with
    /// [`TaskSpawner::spawn`].
    pub fn task(&mut self, kernel: KernelId) -> TaskSpawner<'_> {
        TaskSpawner { builder: self, kernel, runtime: 1, operands: Vec::new() }
    }

    /// Tasks spawned so far.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether nothing has been spawned.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Finishes the graph as a trace (feed it to [`Executor::run`], the
    /// simulator, or `tss_trace::to_text`).
    pub fn build(self) -> TaskTrace {
        self.trace
    }
}

/// In-progress task spawn (see [`TaskGraphBuilder::task`]).
#[derive(Debug)]
pub struct TaskSpawner<'a> {
    builder: &'a mut TaskGraphBuilder,
    kernel: KernelId,
    runtime: tss_sim::Cycle,
    operands: Vec<OperandDesc>,
}

impl TaskSpawner<'_> {
    /// Sets the task runtime in simulated cycles.
    pub fn runtime_cycles(mut self, cycles: tss_sim::Cycle) -> Self {
        self.runtime = cycles;
        self
    }

    /// Sets the task runtime in microseconds (of the 3.2 GHz clock).
    pub fn runtime_us(self, us: f64) -> Self {
        self.runtime_cycles(us_to_cycles(us))
    }

    /// Adds a read-only memory operand.
    pub fn input(mut self, addr: u64, size: u32) -> Self {
        self.operands.push(OperandDesc::input(addr, size));
        self
    }

    /// Adds a write-only (renamable) memory operand.
    pub fn output(mut self, addr: u64, size: u32) -> Self {
        self.operands.push(OperandDesc::output(addr, size));
        self
    }

    /// Adds a read-write (never renamed) memory operand.
    pub fn inout(mut self, addr: u64, size: u32) -> Self {
        self.operands.push(OperandDesc::inout(addr, size));
        self
    }

    /// Adds an immediate scalar operand.
    pub fn scalar(mut self, size: u32) -> Self {
        self.operands.push(OperandDesc::scalar(size));
        self
    }

    /// Records the task in program order and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the operand count exceeds `tss_trace::MAX_OPERANDS`
    /// (the TRS inode limit the hardware shares).
    pub fn spawn(self) -> TaskId {
        self.builder.trace.push(TaskDesc::new(self.kernel, self.runtime, self.operands))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_spawns_in_program_order() {
        let mut b = TaskGraphBuilder::new("b");
        let k = b.kernel("k");
        let t0 = b.task(k).runtime_us(2.0).output(0xA0, 64).spawn();
        let t1 = b.task(k).input(0xA0, 64).scalar(8).spawn();
        assert_eq!((t0, t1), (0, 1));
        assert_eq!(b.len(), 2);
        let tr = b.build();
        assert_eq!(tr.task(0).runtime, us_to_cycles(2.0));
        assert_eq!(tr.task(1).operands.len(), 2);
    }

    #[test]
    fn built_graphs_execute_and_validate() {
        let mut b = TaskGraphBuilder::new("fan");
        let k = b.kernel("k");
        b.task(k).output(0x1, 64).spawn();
        for _ in 0..16 {
            b.task(k).input(0x1, 64).spawn();
        }
        let report = run_trace(&b.build(), 3).expect("replay failed");
        assert_eq!(report.tasks, 17);
        assert_eq!(report.order[0], 0, "the producer must complete first");
    }

    #[test]
    fn builder_interoperates_with_the_text_format() {
        let mut b = TaskGraphBuilder::new("txt");
        let k = b.kernel("k");
        b.task(k).inout(0xFF, 128).spawn();
        let text = tss_trace::to_text(&b.build());
        let back = tss_trace::from_text(&text).expect("round trip");
        assert_eq!(back.len(), 1);
        assert_eq!(back.task(0).operands[0], OperandDesc::inout(0xFF, 128));
    }
}
