//! The execution core: real threads replaying a decoded task graph
//! out of order, playing the role of the paper's CMP backend at native
//! speed.
//!
//! Scheme (DESIGN.md §7):
//!
//! - every task carries an atomic *unready-producer* counter (decoded
//!   by the [`Renamer`]); completing a task decrements its successors'
//!   counters, and whichever worker performs the 1→0 transition pushes
//!   the now-ready task onto its own deque (locality: the consumer
//!   likely reads what the producer just wrote);
//! - workers pop their own deque LIFO, fall back to the shared
//!   injector (roots, in program order), then steal FIFO from victims
//!   in a seeded random rotation;
//! - idle workers park on a condvar epoch — no spinning. The dev and
//!   CI machines can have fewer hardware threads than workers (the
//!   container exposes one), where a spinning sibling would starve the
//!   worker actually holding work;
//! - completion takes a global atomic ticket *before* releasing
//!   successors, so the ticket sequence is a linearization of the
//!   dependency order: every run emits it as the completion log and
//!   [`DepGraph::validate_order`] checks it — an invalid order is an
//!   executor bug and fails the run.
//!
//! With one worker there is no stealing and no ticket race: replay
//! order is a pure function of the queue discipline, which the
//! determinism tests pin down.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::deque::WorkDeque;
use crate::payload::{build_arena, PayloadMode, PayloadScratch};
use crate::renamer::{RenameStats, Renamer, TaskGraph};
use tss_trace::{DepGraph, OrderViolation, TaskId, TaskTrace};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker thread count (≥ 1).
    pub threads: usize,
    /// What each task execution does.
    pub payload: PayloadMode,
    /// Operand renaming in the frontend (off = WaR/WaW enforced too).
    pub renaming: bool,
    /// Seeds the per-worker steal-victim rotation.
    pub seed: u64,
    /// Check the completion log against the `DepGraph` oracle after the
    /// run (on by default; a violating run panics — it is an executor
    /// bug, never a workload property).
    pub validate: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: 4,
            payload: PayloadMode::Noop,
            renaming: true,
            seed: 1,
            validate: true,
        }
    }
}

/// Per-worker counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Tasks this worker executed.
    pub executed: u64,
    /// Tasks this worker stole from other deques.
    pub steals: u64,
    /// Wall time spent inside payloads.
    pub busy: Duration,
}

/// Everything measured in one native replay.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Benchmark name (from the trace).
    pub benchmark: String,
    /// Tasks replayed.
    pub tasks: usize,
    /// Worker threads.
    pub threads: usize,
    /// Payload mode.
    pub payload: PayloadMode,
    /// Wall time of the renamer decode pass.
    pub decode_wall: Duration,
    /// Wall time of the threaded replay (decode excluded).
    pub exec_wall: Duration,
    /// The completion log: task ids in global completion-ticket order.
    pub order: Vec<TaskId>,
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// Renamer decode statistics.
    pub rename: RenameStats,
    /// Whether the completion log was checked against the oracle.
    pub validated: bool,
}

impl ExecReport {
    /// Decode throughput in nanoseconds per task (the native number the
    /// paper's ~700 ns/task software-decoder ceiling is compared to).
    pub fn decode_ns_per_task(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        self.decode_wall.as_nanos() as f64 / self.tasks as f64
    }

    /// Replay throughput in tasks per second.
    pub fn tasks_per_sec(&self) -> f64 {
        let s = self.exec_wall.as_secs_f64();
        if s > 0.0 {
            self.tasks as f64 / s
        } else {
            0.0
        }
    }

    /// Total steals across workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// A worker's busy fraction of the replay wall time.
    pub fn utilization(&self, worker: usize) -> f64 {
        let wall = self.exec_wall.as_secs_f64();
        if wall > 0.0 {
            self.workers[worker].busy.as_secs_f64() / wall
        } else {
            0.0
        }
    }
}

/// Condvar epoch for idle-worker parking. Every work push bumps the
/// epoch; a worker only sleeps if the epoch is unchanged since before
/// its last (empty) scan, so no wakeup can be lost. The epoch itself is
/// an atomic — the busy path (one read per loop iteration) must not
/// serialize all workers on a mutex; the mutex + condvar are touched
/// only when someone actually parks or wakes parked peers.
struct Parker {
    epoch: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
    idle: AtomicUsize,
}

impl Parker {
    fn new() -> Self {
        Parker {
            epoch: AtomicU64::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            idle: AtomicUsize::new(0),
        }
    }

    fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Wakes all parked workers (cheap no-op when nobody is idle).
    fn wake(&self) {
        if self.idle.load(Ordering::SeqCst) > 0 {
            self.epoch.fetch_add(1, Ordering::SeqCst);
            // Taking the lock orders the bump against a parker that has
            // checked the epoch but not yet entered `wait` (it holds
            // the lock across that window), so the notify cannot land
            // in the gap.
            let _g = self.lock.lock().expect("parker poisoned");
            self.cv.notify_all();
        }
    }

    /// Parks until the epoch moves past `seen` or `done` returns true.
    fn park(&self, seen: u64, done: impl Fn() -> bool) {
        let mut g = self.lock.lock().expect("parker poisoned");
        while self.epoch.load(Ordering::SeqCst) == seen && !done() {
            g = self.cv.wait(g).expect("parker poisoned");
        }
    }
}

/// Shared replay state (borrowed by every worker via a scoped spawn).
struct Shared<'a> {
    graph: &'a TaskGraph,
    trace: &'a TaskTrace,
    /// Remaining unready producers per task (the O(1) readiness scheme).
    unready: Vec<AtomicU32>,
    /// Completion tickets: `order[k]` is the k-th task to complete.
    order: Vec<AtomicU32>,
    next_ticket: AtomicUsize,
    completed: AtomicUsize,
    deques: Vec<WorkDeque>,
    injector: WorkDeque,
    parker: Parker,
    payload: PayloadMode,
}

impl Shared<'_> {
    fn done(&self) -> bool {
        self.completed.load(Ordering::SeqCst) == self.graph.len()
    }
}

/// Tiny SplitMix64 for the steal-victim rotation.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn worker_loop(w: usize, shared: &Shared<'_>, arena: &[u8], seed: u64) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut scratch = PayloadScratch::new(arena);
    let mut rng = seed ^ (w as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    let others: Vec<usize> = (0..shared.deques.len()).filter(|&v| v != w).collect();

    loop {
        // Read the epoch *before* scanning: if a push lands after the
        // scan misses it, the epoch has moved and park returns at once.
        let epoch = shared.parker.current_epoch();
        if shared.done() {
            break;
        }
        let task = shared.deques[w].pop().or_else(|| shared.injector.steal()).or_else(|| {
            if others.is_empty() {
                return None;
            }
            let start = (splitmix(&mut rng) as usize) % others.len();
            (0..others.len()).find_map(|i| {
                let victim = others[(start + i) % others.len()];
                let t = shared.deques[victim].steal();
                if t.is_some() {
                    stats.steals += 1;
                }
                t
            })
        });
        match task {
            Some(t) => {
                run_task(t as TaskId, w, shared, &mut scratch, &mut stats);
            }
            None => {
                shared.parker.idle.fetch_add(1, Ordering::SeqCst);
                shared.parker.park(epoch, || shared.done());
                shared.parker.idle.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
    stats
}

fn run_task(
    t: TaskId,
    w: usize,
    shared: &Shared<'_>,
    scratch: &mut PayloadScratch<'_>,
    stats: &mut WorkerStats,
) {
    stats.busy += scratch.run(shared.payload, shared.trace.task(t));
    stats.executed += 1;

    // Ticket first, successor release second: any successor's ticket is
    // therefore strictly after every producer's (valid linearization).
    let ticket = shared.next_ticket.fetch_add(1, Ordering::SeqCst);
    shared.order[ticket].store(t as u32, Ordering::SeqCst);

    let mut released = false;
    for &s in shared.graph.succs(t) {
        if shared.unready[s as usize].fetch_sub(1, Ordering::SeqCst) == 1 {
            shared.deques[w].push(s);
            released = true;
        }
    }
    let completed = shared.completed.fetch_add(1, Ordering::SeqCst) + 1;
    if released || completed == shared.graph.len() {
        shared.parker.wake();
    }
}

/// The native out-of-order task executor.
///
/// ```
/// use tss_exec::{ExecConfig, Executor};
/// use tss_workloads::{Benchmark, Scale};
///
/// let trace = Benchmark::Cholesky.trace(Scale::Small, 1);
/// let report = Executor::new(ExecConfig { threads: 2, ..ExecConfig::default() }).run(&trace);
/// assert_eq!(report.tasks, trace.len());
/// assert!(report.validated);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Executor {
    config: ExecConfig,
}

impl Executor {
    /// An executor with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.threads` is zero.
    pub fn new(config: ExecConfig) -> Self {
        assert!(config.threads >= 1, "the executor needs at least one worker");
        Executor { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Decodes and replays `trace` on real threads.
    ///
    /// # Panics
    ///
    /// Panics if the replay deadlocks (cyclic trace — impossible for
    /// program-order decode), loses tasks, or (with validation on)
    /// emits a completion log violating the `DepGraph` oracle.
    pub fn run(&self, trace: &TaskTrace) -> ExecReport {
        let t0 = Instant::now();
        let graph = Renamer::new().renaming(self.config.renaming).decode(trace);
        let decode_wall = t0.elapsed();
        let (exec_wall, order, workers) = self.replay(trace, &graph);

        assert_eq!(order.len(), trace.len(), "executor lost tasks");
        let validated = self.config.validate;
        if validated {
            let oracle = DepGraph::from_trace(trace);
            if let Err(v) = oracle.validate_order(&order) {
                panic!("native replay violates the dependency oracle: {v}");
            }
        }
        ExecReport {
            benchmark: trace.name().to_string(),
            tasks: trace.len(),
            threads: self.config.threads,
            payload: self.config.payload,
            decode_wall,
            exec_wall,
            order,
            workers,
            rename: *graph.stats(),
            validated,
        }
    }

    /// Replays an already-decoded graph; returns wall time, completion
    /// log, and per-worker stats.
    fn replay(
        &self,
        trace: &TaskTrace,
        graph: &TaskGraph,
    ) -> (Duration, Vec<TaskId>, Vec<WorkerStats>) {
        let n = graph.len();
        let threads = self.config.threads;
        let shared = Shared {
            graph,
            trace,
            unready: (0..n).map(|t| AtomicU32::new(graph.pred_count(t))).collect(),
            order: (0..n).map(|_| AtomicU32::new(u32::MAX)).collect(),
            next_ticket: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            deques: (0..threads).map(|_| WorkDeque::new()).collect(),
            injector: WorkDeque::new(),
            parker: Parker::new(),
            payload: self.config.payload,
        };
        for r in graph.roots() {
            shared.injector.push(r as u32);
        }
        // Only memcpy reads the source arena; noop/spin runs get a
        // minimal zeroed one (building the 4 MB pattern would dominate
        // short replays).
        let arena = match self.config.payload {
            PayloadMode::Memcpy => build_arena(),
            _ => vec![0u8; 2 * tss_workloads::payload::CHUNK_CAP],
        };

        let t0 = Instant::now();
        let mut workers = vec![WorkerStats::default(); threads];
        if n > 0 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        let shared = &shared;
                        let arena = &arena[..];
                        let seed = self.config.seed;
                        scope.spawn(move || worker_loop(w, shared, arena, seed))
                    })
                    .collect();
                for (w, h) in handles.into_iter().enumerate() {
                    workers[w] = h.join().expect("worker panicked");
                }
            });
        }
        let exec_wall = t0.elapsed();

        let order =
            shared.order.iter().map(|s| s.load(Ordering::SeqCst) as TaskId).collect::<Vec<_>>();
        (exec_wall, order, workers)
    }
}

/// Convenience: replay with defaults, returning the report.
///
/// # Panics
///
/// As [`Executor::run`].
pub fn run_trace(trace: &TaskTrace, threads: usize) -> ExecReport {
    Executor::new(ExecConfig { threads, ..ExecConfig::default() }).run(trace)
}

/// Re-exported for harness use: classifies a completion log against an
/// oracle without panicking.
pub fn check_order(trace: &TaskTrace, order: &[TaskId]) -> Result<(), OrderViolation> {
    DepGraph::from_trace(trace).validate_order(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::{OperandDesc, TaskTrace};

    fn diamond() -> TaskTrace {
        // 0 → {1, 2} → 3
        let mut tr = TaskTrace::new("diamond");
        let k = tr.add_kernel("k");
        tr.push_task(k, 10, vec![OperandDesc::output(0xA, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::input(0xA, 64), OperandDesc::output(0xB, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::input(0xA, 64), OperandDesc::output(0xC, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::input(0xB, 64), OperandDesc::input(0xC, 64)]);
        tr
    }

    #[test]
    fn replays_a_diamond_in_dependency_order() {
        for threads in [1, 2, 4] {
            let report = run_trace(&diamond(), threads);
            assert_eq!(report.tasks, 4);
            assert_eq!(report.order[0], 0);
            assert_eq!(report.order[3], 3);
            assert!(report.validated);
            let executed: u64 = report.workers.iter().map(|w| w.executed).sum();
            assert_eq!(executed, 4);
        }
    }

    #[test]
    fn empty_trace_is_a_clean_noop() {
        let report = run_trace(&TaskTrace::new("empty"), 2);
        assert_eq!(report.tasks, 0);
        assert!(report.order.is_empty());
        assert_eq!(report.tasks_per_sec(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Executor::new(ExecConfig { threads: 0, ..ExecConfig::default() });
    }

    #[test]
    fn independent_tasks_all_run() {
        let mut tr = TaskTrace::new("indep");
        let k = tr.add_kernel("k");
        for i in 0..200u64 {
            tr.push_task(k, 10, vec![OperandDesc::output(0x1000 + i * 64, 64)]);
        }
        let report = run_trace(&tr, 4);
        assert_eq!(report.tasks, 200);
        let mut seen = report.order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn no_renaming_serializes_a_waw_chain() {
        let mut tr = TaskTrace::new("waw");
        let k = tr.add_kernel("k");
        for _ in 0..8 {
            tr.push_task(k, 10, vec![OperandDesc::output(0xA, 64)]);
        }
        let cfg = ExecConfig { threads: 4, renaming: false, ..ExecConfig::default() };
        let report = Executor::new(cfg).run(&tr);
        // WaW enforced: completion order must be program order.
        assert_eq!(report.order, (0..8).collect::<Vec<_>>());
        assert_eq!(report.rename.removed_by_renaming, 0);
    }

    #[test]
    fn report_rates_are_sane() {
        let report = run_trace(&diamond(), 2);
        assert!(report.decode_ns_per_task() > 0.0);
        assert!(report.tasks_per_sec() > 0.0);
        assert!(report.utilization(0) >= 0.0);
        assert_eq!(report.total_steals(), report.workers.iter().map(|w| w.steals).sum::<u64>());
    }
}
