//! The execution core: real threads replaying a decoded task graph
//! out of order — now a *pipelined* core in which decode itself streams
//! concurrently with execution, the way the paper's distributed
//! ORT/OVT/TRS frontend feeds its backend without serializing it.
//!
//! Scheme (DESIGN.md §7 for the execution side, §8 for the streaming
//! protocol and memory orderings):
//!
//! - **Two run modes.** [`Executor::run`] streams: decode shard
//!   threads rename the trace window by window *while* workers execute
//!   already-committed windows (the decode cost overlaps execution —
//!   [`ExecReport::decode_overlap_pct`]). [`Executor::run_oneshot`]
//!   keeps PR 3's phases (decode fully, then replay) — it is the
//!   apples-to-apples replay-throughput measurement and the shape the
//!   microbenches time.
//! - **Lock-free scheduling.** Per-worker [`ChaseLev`] deques (owner
//!   LIFO, thief FIFO, batch stealing takes half) replace the mutexed
//!   ring; the one lock left on the task hot path is gone.
//! - **Readiness.** Every task carries an atomic counter. In one-shot
//!   mode it starts at the decoded producer count. In streaming mode it
//!   starts at a large sentinel `UNPUBLISHED`: producers that finish
//!   *before* their successor is even decoded simply decrement through
//!   the sentinel, and the window commit adds `pred_count − UNPUBLISHED`
//!   back — whichever atomic op lands the counter exactly on zero owns
//!   the push. Early release needs no blocking and no side lookups.
//! - **Pending-release lists.** A producer's successor set is not fully
//!   known until later windows decode. Each task owns a lock-free
//!   pending list (CAS-push by the window committer); completion swaps
//!   the head with `CLOSED` and drains. A committer that observes
//!   `CLOSED` knows the producer already completed and drained, and
//!   counts the edge as satisfied itself — the exactly-once handshake
//!   (§8).
//! - **Parking without storms.** Workers park on a condvar epoch, but
//!   wakes are throttled: a completion wakes one thief only when it
//!   banked *surplus* ready tasks (≥ 2), a window commit wakes
//!   everyone once per window, and the final completion wakes everyone
//!   once. PR 3 notified on every completion that released anything —
//!   on an oversubscribed host that was a futex storm dominating the
//!   replay.
//! - **Completion tickets** are taken *before* successor release, so
//!   the ticket sequence is a linearization of the dependency order by
//!   construction; [`DepGraph::validate_order`] checks it on every
//!   validated run. The ticket counter doubles as the termination
//!   count: ticket `n−1` means every task has executed.
//!
//! With one worker there is no stealing and no ticket race. For a
//! *two-phase* replay ([`Executor::run_oneshot`]) the order is then a
//! pure function of the queue discipline (own deque LIFO over injector
//! FIFO, batch banking preserves root order) — bit-deterministic, and
//! the determinism tests pin it. A *streamed* 1-worker run is oracle-
//! deterministic only: whether a task arrives via the injector or via
//! a producer's pending list is the decode-vs-execution race itself
//! (`tests/streaming.rs` pins that contract).

use crate::sync::atomic::{AtomicI32, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use crate::sync::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;
// All wall-clock reads go through the tss-obs timestamp facade (tss-lint
// bans raw Instant::now() in this crate, DESIGN.md §12.1); the sinks
// are zero-sized no-ops unless the `obs` feature is on.
use tss_obs::clock::Stamp;
use tss_obs::{ObsReport, SharedObs, SpanStamp, WorkerObs};

use crate::deque::{ChaseLev, BATCH_MAX};
use crate::fault::{
    backoff_for, panic_message, ExecError, FailedTask, FailurePolicy, FaultPlan, FaultReport,
    InjectedFault, TaskFailure, INJECTED_PANIC_MARKER,
};
use crate::payload::{build_arena, PayloadMode, PayloadScratch};
use crate::renamer::{merge_window, RenameStats, Renamer, ShardState, TaskGraph};
use crate::sched::{
    CostAwarePolicy, FifoPolicy, LifoPolicy, LocalityPolicy, SchedKind, SchedPolicy,
};
use tss_sim::{CachePadded, Cycle};
use tss_trace::{OrderViolation, TaskId, TaskTrace};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker thread count (≥ 1).
    pub threads: usize,
    /// What each task execution does.
    pub payload: PayloadMode,
    /// Operand renaming in the frontend (off = WaR/WaW enforced too).
    pub renaming: bool,
    /// Seeds the per-worker steal-victim rotation.
    pub seed: u64,
    /// Check the completion log against the `DepGraph` oracle after the
    /// run (on by default; a violating run panics — it is an executor
    /// bug, never a workload property).
    pub validate: bool,
    /// Streaming decode window: tasks committed to the executor per
    /// batch (≥ 1). Smaller windows overlap sooner but commit more
    /// often.
    pub window: usize,
    /// Decode shard threads for streaming runs (≥ 1): address interning
    /// is hash-partitioned this many ways and each shard renames its
    /// partition on its own thread (the distributed-ORT analogy).
    pub decode_shards: usize,
    /// What the run does when a task fails (DESIGN.md §11).
    pub policy: FailurePolicy,
    /// Per-task wall-clock budget: an attempt exceeding it is cancelled
    /// by the watchdog and counts as a [`TaskFailure::Deadline`].
    pub task_deadline: Option<Duration>,
    /// Whole-run wall-clock budget: expiry aborts the run with
    /// [`ExecError::RunDeadline`].
    pub run_deadline: Option<Duration>,
    /// Chaos: kill this worker's thread after its first completed task
    /// (the survivors adopt its deque via the thief protocol). Requires
    /// `threads >= 2`.
    pub kill_worker: Option<usize>,
    /// Scheduling policy (DESIGN.md §13). The default, [`SchedKind::Lifo`],
    /// monomorphizes to the pre-§13 worker loop.
    pub sched: SchedKind,
    /// Worker classes for [`SchedKind::Locality`] (clamped to 1..=2;
    /// 1 disables class routing). Ignored by the other policies.
    pub classes: usize,
    /// Affinity domains for [`SchedKind::Locality`] (clamped to
    /// 1..=threads). Ignored by the other policies.
    pub domains: usize,
    /// External cancellation (DESIGN.md §14.3): when the token fires,
    /// the watchdog aborts the run and it returns
    /// [`ExecError::Cancelled`] with its progress counts. `None` (the
    /// default) adds no machinery at all.
    pub cancel: Option<CancelToken>,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: 4,
            payload: PayloadMode::Noop,
            renaming: true,
            seed: 1,
            validate: true,
            window: 1024,
            decode_shards: 1,
            policy: FailurePolicy::FailFast,
            task_deadline: None,
            run_deadline: None,
            kill_worker: None,
            sched: SchedKind::Lifo,
            classes: 2,
            domains: 1,
            cancel: None,
        }
    }
}

/// A cloneable external-cancellation handle. The serve layer
/// (DESIGN.md §14.3) arms one per accepted graph so a drain deadline
/// can stop a run that is already executing; anything else that embeds
/// the executor can do the same. The token is polled by the watchdog
/// thread (same 200 µs cadence as the deadlines), never on the task
/// hot path, so an armed-but-unfired token costs one extra load per
/// poll tick and nothing per task. Cancellation latency is therefore
/// bounded by one poll tick plus the longest in-flight payload.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(std::sync::Arc<AtomicU32>);

impl CancelToken {
    /// A fresh, unfired token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Fires the token. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.0.store(1, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire) != 0
    }
}

/// Per-worker counters. Each worker accumulates its own copy on its own
/// stack (the strongest form of false-sharing avoidance — nothing is
/// shared until the join) and hands it back when the scope ends.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Tasks this worker executed.
    pub executed: u64,
    /// Steal *events* (a batch steal of k tasks counts once).
    pub steals: u64,
    /// Steal events that crossed an affinity domain (always ≤ `steals`;
    /// zero under every domain-blind policy, where the check folds to
    /// constant `false` — DESIGN.md §13.4).
    pub cross_steals: u64,
    /// Wall time spent executing tasks, measured per work *burst* (the
    /// span from acquiring work to going idle), not per task: noop
    /// payloads pay two clock reads per burst instead of two per task,
    /// so `noop` throughput still measures scheduling, yet `busy_frac`
    /// is real for every payload (the ISSUE 5 regression was `busy`
    /// never accumulating on noop runs, printing 0.0000 for a worker
    /// that executed every task).
    pub busy: Duration,
}

/// Everything measured in one native replay.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Benchmark name (from the trace).
    pub benchmark: String,
    /// Tasks replayed.
    pub tasks: usize,
    /// Worker threads.
    pub threads: usize,
    /// Payload mode.
    pub payload: PayloadMode,
    /// Decode span. One-shot runs: the serial decode phase. Streaming
    /// runs: from thread start to the last window commit — a *span*
    /// that shares the host with execution, not a pure-work figure.
    pub decode_wall: Duration,
    /// Replay span. One-shot runs: the threaded replay, decode
    /// excluded. Streaming runs: the whole pipelined run — decode
    /// happens *inside* this span, which is the point.
    pub exec_wall: Duration,
    /// Share (percent) of `exec_wall` during which decode was still
    /// streaming. Zero for one-shot runs (decode is a serial phase
    /// before the replay); near 100 means the frontend streamed for the
    /// whole run and was never a standalone latency.
    pub decode_overlap_pct: f64,
    /// Whether this run streamed decode into execution.
    pub streaming: bool,
    /// Decode shard threads used (1 for one-shot runs).
    pub decode_shards: usize,
    /// The completion log: task ids in global completion-ticket order.
    pub order: Vec<TaskId>,
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// Renamer decode statistics.
    pub rename: RenameStats,
    /// Whether the completion log was checked against the oracle.
    pub validated: bool,
    /// Failure accounting (all-zero for a clean run).
    pub fault: FaultReport,
    /// RingSink observability data (latency histograms, per-worker
    /// event tracks, gauges) — `Some` exactly when the crate was built
    /// with the `obs` feature (DESIGN.md §12), `None` in the NoopSink
    /// default build.
    pub obs: Option<ObsReport>,
}

impl ExecReport {
    /// Decode throughput in nanoseconds per task (the native number the
    /// paper's ~700 ns/task software-decoder ceiling is compared to).
    /// For streaming runs this is a span over a shared host — see
    /// [`ExecReport::decode_wall`].
    pub fn decode_ns_per_task(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        self.decode_wall.as_nanos() as f64 / self.tasks as f64
    }

    /// Replay throughput in tasks per second (for streaming runs this
    /// is end-to-end: decode is inside the denominator).
    pub fn tasks_per_sec(&self) -> f64 {
        let s = self.exec_wall.as_secs_f64();
        if s > 0.0 {
            self.tasks as f64 / s
        } else {
            0.0
        }
    }

    /// Total steal events across workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Total cross-domain steal events across workers (§13.4).
    pub fn total_cross_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.cross_steals).sum()
    }

    /// A worker's busy fraction of the replay wall time (burst-timed;
    /// see [`WorkerStats::busy`]).
    pub fn utilization(&self, worker: usize) -> f64 {
        let wall = self.exec_wall.as_secs_f64();
        if wall > 0.0 {
            self.workers[worker].busy.as_secs_f64() / wall
        } else {
            0.0
        }
    }

    /// Tasks that completed (payload ran to success), from the workers'
    /// own counters — independent of the status-array scan that feeds
    /// [`ExecReport::fault`], which is what makes reconciliation a real
    /// cross-check.
    pub fn completed(&self) -> usize {
        self.workers.iter().map(|w| w.executed as usize).sum()
    }

    /// Tasks that completed without ever failing an attempt.
    pub fn completed_clean(&self) -> usize {
        self.completed() - self.fault.retried_ok
    }

    /// The §11 accounting identity: `clean + retried-into-success +
    /// failed + poisoned = tasks`, with `clean + retried` counted by
    /// the workers and `failed + poisoned` by the final status scan. A
    /// report that does not reconcile is an executor bug; the harness
    /// gates on this.
    pub fn accounting_reconciles(&self) -> bool {
        self.completed() + self.fault.failed.len() + self.fault.poisoned.len() == self.tasks
            && self.fault.retried_ok <= self.completed()
    }
}

// ---------------------------------------------------------------------
// Parker
// ---------------------------------------------------------------------

/// Condvar epoch for idle-worker parking. A worker reads the epoch
/// *before* scanning for work and only sleeps if the epoch is unchanged
/// since — any wake between its read and its sleep is therefore
/// observed (the epoch moved) and the sleep aborts. The epoch ops are
/// `SeqCst`: the worker's *read epoch → scan queues* and a producer's
/// *push work → bump epoch* form the classic store-load (Dekker)
/// pattern, which weaker orderings do not close (§8). The mutex and
/// condvar are touched only when someone actually parks or wakes.
struct Parker {
    epoch: CachePadded<AtomicU64>,
    idle: CachePadded<AtomicUsize>,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Parker {
    fn new() -> Self {
        Parker {
            epoch: CachePadded::new(AtomicU64::new(0)),
            idle: CachePadded::new(AtomicUsize::new(0)),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    #[inline]
    fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Whether any worker is parked (a hint for wake throttling; a
    /// missed hint delays a thief until the next wake, it never loses
    /// work — the producer itself still holds the tasks).
    #[inline]
    fn has_idle(&self) -> bool {
        self.idle.load(Ordering::Relaxed) > 0
    }

    /// Wakes one parked worker (throttled wake: surplus in one deque
    /// needs one thief, not a stampede).
    fn wake_one(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        let _g = self.lock.lock().expect("parker poisoned");
        self.cv.notify_one();
    }

    /// Wakes all parked workers (window commits, termination).
    fn wake_all(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        // Taking the lock orders the bump against a parker that has
        // checked the epoch but not yet entered `wait` (it holds the
        // lock across that window), so the notify cannot land in the
        // gap.
        let _g = self.lock.lock().expect("parker poisoned");
        self.cv.notify_all();
    }

    /// Parks until the epoch moves past `seen` or `done` returns true.
    fn park(&self, seen: u64, done: impl Fn() -> bool) {
        self.idle.fetch_add(1, Ordering::SeqCst);
        let mut g = self.lock.lock().expect("parker poisoned");
        while self.epoch.load(Ordering::SeqCst) == seen && !done() {
            g = self.cv.wait(g).expect("parker poisoned");
        }
        drop(g);
        self.idle.fetch_sub(1, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------
// Task status (the POISONED readiness sentinel, DESIGN.md §11)
// ---------------------------------------------------------------------

/// Task ran (or will run) normally.
const HEALTHY: u8 = 0;
/// A producer in the task's ancestry failed: skip the payload, count it
/// quarantined, propagate.
const POISONED: u8 = 1;
/// The task itself failed every attempt.
const FAILED: u8 = 2;

/// Ordering of the *fail-path* pending-list close (the `swap` to
/// `PENDING_CLOSED` in `poison_release`). The release half is what
/// publishes the producer's FAILED/POISONED status byte to a window
/// committer that observes `PENDING_CLOSED` with its `Acquire` head
/// load: weaken it and the committer can read a stale HEALTHY status
/// and wrongly count the edge healthy-satisfied, executing a task whose
/// producer failed. `--cfg tss_bug_poison_relaxed` seeds exactly that
/// bug so CI can prove the model suite still catches it (§10.3).
#[cfg(not(tss_bug_poison_relaxed))]
const POISON_PUBLISH: Ordering = Ordering::AcqRel;
#[cfg(tss_bug_poison_relaxed)]
const POISON_PUBLISH: Ordering = Ordering::Relaxed;

/// Marks a task poisoned. Plain store: the countdown RMW chain (or the
/// pending-close publish) that makes the task *ready* is what carries
/// the byte to whoever pops it.
#[inline]
fn mark_poisoned(status: &AtomicU8) {
    status.store(POISONED, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Release modes (how a completion finds its successors)
// ---------------------------------------------------------------------

/// How a completed task's successors are found and counted down. Two
/// implementations, one worker loop: the hot path is monomorphized per
/// mode, never dynamically dispatched.
trait ReleaseSuccs: Sync {
    /// Called exactly once per completed task `t`; appends every task
    /// made ready by this completion to `ready`. `obs` carries the
    /// sampled pending-drain gauge (a no-op in NoopSink builds).
    fn release(&self, t: u32, ready: &mut Vec<u32>, obs: &SharedObs);

    /// [`ReleaseSuccs::release`] for a FAILED or POISONED task `t`:
    /// marks every successor POISONED in `status` *before* counting it
    /// down, so a successor that becomes ready is observed poisoned by
    /// whichever worker pops it (the countdown's AcqRel chain plus the
    /// deque's push/steal protocol carry the byte).
    fn poison_release(&self, t: u32, status: &[AtomicU8], ready: &mut Vec<u32>);
}

/// One-shot mode: the successor CSR is fully decoded up front and the
/// counters start at the exact producer count.
struct PrebuiltRelease<'a> {
    graph: &'a TaskGraph,
    unready: Vec<AtomicI32>,
}

impl<'a> PrebuiltRelease<'a> {
    fn new(graph: &'a TaskGraph) -> Self {
        let unready =
            (0..graph.len()).map(|t| AtomicI32::new(graph.pred_count(t) as i32)).collect();
        PrebuiltRelease { graph, unready }
    }
}

impl ReleaseSuccs for PrebuiltRelease<'_> {
    #[inline]
    fn release(&self, t: u32, ready: &mut Vec<u32>, _obs: &SharedObs) {
        for &s in self.graph.succs(t as TaskId) {
            // AcqRel: release our payload writes to the successor's
            // executor, acquire the other producers' on the 1 → 0 edge.
            if self.unready[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                ready.push(s);
            }
        }
    }

    fn poison_release(&self, t: u32, status: &[AtomicU8], ready: &mut Vec<u32>) {
        for &s in self.graph.succs(t as TaskId) {
            mark_poisoned(&status[s as usize]);
            if self.unready[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                ready.push(s);
            }
        }
    }
}

/// Streaming mode sentinels (pending-list heads).
const PENDING_NIL: u32 = u32::MAX;
const PENDING_CLOSED: u32 = u32::MAX - 1;

/// Streaming mode readiness sentinel: a counter at `UNPUBLISHED − k`
/// means "not yet decoded, k producers already finished". Must exceed
/// any real producer count; `1 << 30` towers over the ≤ `3 ×
/// operands` edge bound.
const UNPUBLISHED: i32 = 1 << 30;

/// Streaming mode: successor sets grow as later windows decode, so each
/// task owns a lock-free pending-release list; counters start at the
/// [`UNPUBLISHED`] sentinel and are reconciled by the window commit.
struct StreamRelease {
    unready: Vec<AtomicI32>,
    /// Pending-list heads: `PENDING_NIL` empty, `PENDING_CLOSED` after
    /// the owner completed and drained, else a `nodes` index.
    pending: Vec<AtomicU32>,
    /// Node slab: `(next << 32) | succ`, bump-allocated by the window
    /// committer (the commit lock serializes allocation), capacity
    /// fixed at the `3 × operands` edge bound so nodes never move.
    nodes: Vec<AtomicU64>,
}

impl StreamRelease {
    fn new(n: usize, edge_cap: usize) -> Self {
        StreamRelease {
            unready: (0..n).map(|_| AtomicI32::new(UNPUBLISHED)).collect(),
            pending: (0..n).map(|_| AtomicU32::new(PENDING_NIL)).collect(),
            nodes: (0..edge_cap).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    fn countdown(&self, s: u32, ready: &mut Vec<u32>) {
        if self.unready[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
            ready.push(s);
        }
    }

    /// Registers edge `p → s` (committer thread, under the commit
    /// lock), storing the list node at `node_idx`. Returns how the edge
    /// resolved; on either `Satisfied*` fate the node slot is unused.
    fn register_edge(&self, node_idx: u32, p: u32, s: u32, status: &[AtomicU8]) -> EdgeFate {
        loop {
            let head = self.pending[p as usize].load(Ordering::Acquire);
            if head == PENDING_CLOSED {
                // `p` completed and drained before this edge existed:
                // the committer owns the satisfaction (§8). The Acquire
                // head load synchronizes with the closing swap, so `p`'s
                // status byte (stored before the close) is visible —
                // unless the seeded §10.3 bug weakened the close.
                return if status[p as usize].load(Ordering::Relaxed) == HEALTHY {
                    EdgeFate::SatisfiedHealthy
                } else {
                    EdgeFate::SatisfiedPoisoned
                };
            }
            self.nodes[node_idx as usize]
                .store(((head as u64) << 32) | s as u64, Ordering::Relaxed);
            if self.pending[p as usize]
                .compare_exchange(head, node_idx, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return EdgeFate::Registered;
            }
            // Lost to the drain swap (or another commit — impossible
            // under the commit lock): retry against the new head.
        }
    }
}

/// How a window-commit edge registration resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeFate {
    /// Pushed onto the producer's pending list; the producer's drain
    /// will count it down.
    Registered,
    /// The producer already completed healthy: the committer counts the
    /// edge satisfied.
    SatisfiedHealthy,
    /// The producer already completed FAILED/POISONED: the committer
    /// counts the edge satisfied *and* poisons the successor.
    SatisfiedPoisoned,
}

impl ReleaseSuccs for StreamRelease {
    #[inline]
    fn release(&self, t: u32, ready: &mut Vec<u32>, obs: &SharedObs) {
        // Close the list: every edge registered up to now is drained
        // here; every edge registered after sees CLOSED and counts
        // itself satisfied at the commit (§8 exactly-once handshake).
        let mut head = self.pending[t as usize].swap(PENDING_CLOSED, Ordering::AcqRel);
        let mut drained = 0u64;
        while head != PENDING_NIL {
            let node = self.nodes[head as usize].load(Ordering::Relaxed);
            self.countdown(node as u32, ready);
            drained += 1;
            head = (node >> 32) as u32;
        }
        // Sampled pending-drain gauge: folds away in NoopSink builds
        // (`sampled` is const false), and on RingSink builds only 1-in-
        // SAMPLE_EVERY completions touch the shared gauge line.
        if tss_obs::sampled(t) {
            obs.note_pending_drain(drained as usize);
        }
    }

    fn poison_release(&self, t: u32, status: &[AtomicU8], ready: &mut Vec<u32>) {
        // Same close as `release`, but the swap's ordering is the
        // POISON_PUBLISH constant: its release half is what hands `t`'s
        // FAILED/POISONED status byte to a committer that sees CLOSED
        // (the §10.3 seeded bug weakens exactly this edge).
        let mut head = self.pending[t as usize].swap(PENDING_CLOSED, POISON_PUBLISH);
        while head != PENDING_NIL {
            let node = self.nodes[head as usize].load(Ordering::Relaxed);
            let s = node as u32;
            mark_poisoned(&status[s as usize]);
            self.countdown(s, ready);
            head = (node >> 32) as u32;
        }
    }
}

// ---------------------------------------------------------------------
// Shared replay state
// ---------------------------------------------------------------------

/// One worker's deadline-watchdog slot. The worker arms it around each
/// payload attempt; the watchdog thread polls armed slots and raises
/// `cancel` past the deadline. A worker that observes `cancel` verifies
/// the deadline really expired before failing the attempt (the arm ↔
/// poll race can, rarely, cancel a *fresh* attempt; the verification
/// turns that into a silent payload restart instead of a wrong
/// failure).
struct WatchSlot {
    /// Absolute attempt deadline, ns since `Shared::t0` (0 = unarmed).
    deadline_ns: CachePadded<AtomicU64>,
    /// Nonzero = stop the current payload.
    cancel: AtomicU32,
}

impl WatchSlot {
    fn new() -> Self {
        WatchSlot { deadline_ns: CachePadded::new(AtomicU64::new(0)), cancel: AtomicU32::new(0) }
    }
}

/// Shared replay state (borrowed by every worker via a scoped spawn).
struct Shared<'a, R: ReleaseSuccs, P: SchedPolicy> {
    mode: R,
    /// The scheduling policy (DESIGN.md §13): statically dispatched,
    /// so the default [`LifoPolicy`] build monomorphizes every hook
    /// into the pre-§13 inline code.
    sched: P,
    trace: &'a TaskTrace,
    /// Traced runtimes as a dense SoA column (only populated for spin
    /// payloads): the readiness/dispatch hot path must not drag each
    /// task's whole `TaskDesc` (operand `Vec` header included) through
    /// the cache for one u64.
    runtimes: Vec<Cycle>,
    n: usize,
    /// Completion tickets: `order[k]` is the k-th task to complete.
    order: Vec<AtomicU32>,
    /// Ticket source *and* termination counter: ticket `n − 1` implies
    /// every task has executed.
    next_ticket: CachePadded<AtomicUsize>,
    deques: Vec<ChaseLev>,
    injector: ChaseLev,
    parker: Parker,
    payload: PayloadMode,

    // --- failure domain (DESIGN.md §11) ---
    /// Per-task status byte (HEALTHY / POISONED / FAILED).
    status: Vec<AtomicU8>,
    /// Nonzero = stop the run (fail-fast failure, run deadline, or an
    /// infrastructure panic). Checked on the idle path and the park
    /// predicate only — never per task.
    abort: CachePadded<AtomicU32>,
    /// Nonzero once any attempt has failed: diverts subsequent tasks
    /// from the fast path onto the guarded path even when no chaos is
    /// armed (a real payload panic under Quarantine must still poison).
    tainted: CachePadded<AtomicU32>,
    /// Resolved fault-injection plan (all-zero when disarmed).
    plan: FaultPlan,
    policy: FailurePolicy,
    max_attempts: u32,
    backoff_base: Duration,
    /// Per-task deadline (None = unarmed).
    task_deadline: Option<Duration>,
    /// Absolute run deadline, ns since `t0` (0 = unarmed).
    run_deadline_ns: u64,
    /// Wall anchor for every deadline computation.
    t0: Stamp,
    /// Shared observability state (ready-time table + gauges); a ZST
    /// no-op unless the `obs` feature is on (DESIGN.md §12).
    obs: SharedObs,
    /// True when any per-task machinery (injection, task deadline, or
    /// payload cancellation for the run deadline) must run: decided
    /// once, so a fault-free run's per-task path is unchanged.
    guarded: bool,
    /// Per-worker watchdog slots (empty when no deadline is armed).
    watch: Vec<WatchSlot>,
    /// Set by the watchdog when the run deadline expired.
    run_deadline_hit: AtomicU32,
    /// External cancellation token (DESIGN.md §14.3), polled by the
    /// watchdog alongside the deadlines.
    cancel: Option<CancelToken>,
    /// Set by the watchdog when the cancel token fired.
    cancel_hit: AtomicU32,
    /// Final failure records, in completion order.
    failures: Mutex<Vec<FailedTask>>,
    /// First infrastructure (non-payload) panic message.
    infra_panic: Mutex<Option<String>>,
    /// `retry_hist[k]`: outcomes that consumed k+1 attempts (only
    /// maintained under a Retry policy).
    retry_hist: Vec<AtomicU64>,
    /// Tasks that failed an attempt but eventually completed.
    retried_ok: CachePadded<AtomicUsize>,
}

impl<R: ReleaseSuccs, P: SchedPolicy> Shared<'_, R, P> {
    fn new_for<'t>(trace: &'t TaskTrace, mode: R, cfg: &ExecConfig) -> Shared<'t, R, P> {
        let n = trace.len();
        let threads = cfg.threads;
        let payload = cfg.payload;
        let runtimes = if matches!(payload, PayloadMode::Spin { .. }) {
            trace.iter().map(|t| t.runtime).collect()
        } else {
            Vec::new()
        };
        let plan = match payload {
            PayloadMode::Faulty { rate_ppm, seed } => {
                FaultPlan { rate_ppm, seed, kill_worker: cfg.kill_worker }
            }
            _ => FaultPlan { rate_ppm: 0, seed: 0, kill_worker: cfg.kill_worker },
        };
        // An armed cancel token counts as a deadline: it needs the
        // watch slots so a firing can stop in-flight payloads, not just
        // idle workers (otherwise cancellation latency is a full local
        // deque of payloads, DESIGN.md §14.3).
        let deadline_armed =
            cfg.task_deadline.is_some() || cfg.run_deadline.is_some() || cfg.cancel.is_some();
        let guarded = plan.enabled() || deadline_armed;
        let max_attempts = cfg.policy.max_attempts();
        let backoff_base = match cfg.policy {
            FailurePolicy::Retry { backoff, .. } => backoff,
            _ => Duration::ZERO,
        };
        let t0 = Stamp::now();
        let run_deadline_ns = cfg.run_deadline.map_or(0, |d| (d.as_nanos() as u64).max(1));
        Shared {
            mode,
            sched: P::new(trace, payload, threads, cfg.classes, cfg.domains),
            trace,
            runtimes,
            n,
            order: (0..n).map(|_| AtomicU32::new(u32::MAX)).collect(),
            next_ticket: CachePadded::new(AtomicUsize::new(0)),
            deques: (0..threads).map(|_| ChaseLev::with_capacity(256)).collect(),
            injector: ChaseLev::with_capacity(1024),
            parker: Parker::new(),
            payload,
            status: (0..n).map(|_| AtomicU8::new(HEALTHY)).collect(),
            abort: CachePadded::new(AtomicU32::new(0)),
            tainted: CachePadded::new(AtomicU32::new(0)),
            plan,
            policy: cfg.policy,
            max_attempts,
            backoff_base,
            task_deadline: cfg.task_deadline,
            run_deadline_ns,
            t0,
            obs: SharedObs::new(),
            guarded,
            watch: if deadline_armed {
                (0..threads).map(|_| WatchSlot::new()).collect()
            } else {
                Vec::new()
            },
            run_deadline_hit: AtomicU32::new(0),
            cancel: cfg.cancel.clone(),
            cancel_hit: AtomicU32::new(0),
            failures: Mutex::new(Vec::new()),
            infra_panic: Mutex::new(None),
            retry_hist: (0..max_attempts as usize).map(|_| AtomicU64::new(0)).collect(),
            retried_ok: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    #[inline]
    fn done(&self) -> bool {
        self.next_ticket.load(Ordering::Acquire) >= self.n
    }

    #[inline]
    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire) != 0
    }

    /// Workers exit on this: normal termination *or* an abort.
    #[inline]
    fn stopping(&self) -> bool {
        self.done() || self.aborted()
    }

    /// Raises the abort flag and flushes every parked worker into its
    /// `stopping()` check.
    fn request_abort(&self) {
        self.abort.store(1, Ordering::Release);
        self.parker.wake_all();
    }

    /// Records a non-payload panic (an executor bug, caught at the
    /// thread boundary so the run still joins cleanly) and aborts.
    fn note_infra_panic(&self, message: String) {
        let mut slot = self.infra_panic.lock().expect("infra panic slot poisoned");
        slot.get_or_insert(message);
        drop(slot);
        self.request_abort();
    }

    /// Whether the watchdog thread is needed.
    #[inline]
    fn watchdog_armed(&self) -> bool {
        !self.watch.is_empty() || self.cancel.is_some()
    }
}

/// Takes the completion ticket for `t` and releases its successors —
/// healthily or (for a FAILED/POISONED `t`) with cone poisoning. Every
/// task, whatever its fate, takes a ticket: the ticket counter is the
/// termination count, and because a failed/poisoned task still only
/// completes after its producers, the *full* log (completed + failed +
/// poisoned) stays a valid `DepGraph` linearization.
fn complete<R: ReleaseSuccs, P: SchedPolicy>(
    t: u32,
    w: usize,
    shared: &Shared<'_, R, P>,
    ready: &mut Vec<u32>,
    wobs: &mut WorkerObs,
    poisoned: bool,
) {
    // Policy bookkeeping (load-gauge decay) before the release: every
    // completed task — poisoned included — balances its dispatch
    // credit. A no-op for every policy without gauges.
    shared.sched.note_executed(w, t);
    // Ticket first, successor release second: any successor's ticket is
    // therefore strictly after every producer's (valid linearization).
    // Relaxed suffices: tickets on one counter are totally ordered, and
    // producer-before-successor follows from the release/acquire edge
    // on the readiness counter (§8).
    let ticket = shared.next_ticket.fetch_add(1, Ordering::AcqRel);
    shared.order[ticket].store(t, Ordering::Relaxed);

    ready.clear();
    if poisoned {
        shared.mode.poison_release(t, &shared.status, ready);
    } else {
        shared.mode.release(t, ready, &shared.obs);
    }
    // Policy ordering of the batch (cost sort): dispatched in order,
    // popped LIFO, so ascending cost runs the costliest first. The
    // default is the identity and folds away.
    shared.sched.prepare(ready);
    let mut routed = 0usize;
    for &s in ready.iter() {
        // The policy decides where the task goes: the own deque (the
        // baseline, `own = true`) or a routed side queue (class
        // routing, `own = false`).
        let own = shared.sched.dispatch(w, s, &shared.deques[w]);
        if !own {
            routed += 1;
        }
        // Sampled spawn instrumentation: a Spawn ring event (the
        // queue-wait anchor, paired with the Task slice at drain) and
        // the deque-depth gauge — one clock read for both. `sampled`
        // is const false in NoopSink builds, so the whole block (the
        // `len()` call included) folds away (DESIGN.md §12.3).
        if tss_obs::sampled(s) {
            wobs.spawn(s, &shared.obs);
            shared.obs.note_deque_depth(shared.deques[w].len());
        }
    }
    if ticket + 1 == shared.n {
        // Final completion: unconditionally flush every parked worker
        // into their done() check.
        shared.parker.wake_all();
        wobs.wake(&shared.obs);
    } else if routed > 0 {
        // Routed tasks are invisible to the deque/injector scans: only
        // `take_routed` on the idle path finds them, so flush every
        // parked worker — the targeted pool must get a chance to look,
        // and a single wake_one could land on a worker of the wrong
        // class with a full deque. Unreachable (routed is always 0)
        // under policies whose `dispatch` is the baseline.
        shared.parker.wake_all();
        wobs.wake(&shared.obs);
    } else if ready.len() >= 2 && shared.parker.has_idle() {
        // Surplus banked beyond what this worker immediately runs: one
        // thief's worth of news, one wake — not PR 3's per-completion
        // notify_all storm.
        shared.parker.wake_one();
        wobs.wake(&shared.obs);
    }
}

fn run_task<R: ReleaseSuccs, P: SchedPolicy>(
    t: u32,
    w: usize,
    shared: &Shared<'_, R, P>,
    scratch: &mut PayloadScratch<'_>,
    stats: &mut WorkerStats,
    ready: &mut Vec<u32>,
    wobs: &mut WorkerObs,
) {
    if shared.guarded || shared.tainted.load(Ordering::Relaxed) != 0 {
        // Chaos, deadlines, or an earlier failure: the guarded lane
        // owns poison checks and the containment state machine.
        return run_task_guarded(t, w, shared, scratch, stats, ready, wobs);
    }
    // Sampled execution-latency span: a clock read only for 1-in-
    // SAMPLE_EVERY tasks on RingSink builds, nothing at all on NoopSink
    // builds (TaskStamp is zero-sized there).
    let tb = wobs.task_begin(t);
    let outcome: Result<(), Box<dyn std::any::Any + Send>> = match shared.payload {
        // No per-task clock reads on any path: busy time is accumulated
        // per burst by `worker_loop`, so noop runs still measure pure
        // decode + scheduling throughput. Nothing in the noop arm can
        // panic, so the fault-free noop lane is byte-identical to the
        // pre-§11 core.
        PayloadMode::Noop | PayloadMode::Faulty { .. } => Ok(()),
        // Real payloads run inside the containment boundary even on the
        // fast lane: a panicking payload becomes a TaskFailure, never a
        // dead worker. catch_unwind's happy path is a few instructions
        // against payloads that busy-work for microseconds.
        PayloadMode::Spin { time_scale } => catch_unwind(AssertUnwindSafe(|| {
            scratch.run_spin(shared.runtimes[t as usize], time_scale);
        })),
        PayloadMode::Memcpy => catch_unwind(AssertUnwindSafe(|| {
            scratch.run_memcpy(shared.trace.task(t as TaskId));
        })),
        PayloadMode::Mixed { time_scale } => catch_unwind(AssertUnwindSafe(|| {
            scratch.run_mixed(shared.trace.task(t as TaskId), time_scale);
        })),
    };
    match outcome {
        Ok(()) => {
            stats.executed += 1;
            complete(t, w, shared, ready, wobs, false);
            // After `complete`: the span covers payload + successor
            // release, the full service time a waiter observes.
            wobs.task_end(t, tb, &shared.obs);
        }
        Err(payload) => {
            // First failure of the run: taint (diverting everyone to
            // the guarded lane) and hand this task to the policy.
            shared.tainted.store(1, Ordering::Relaxed);
            let failure = TaskFailure::Panicked { message: panic_message(&*payload) };
            resolve_failure(t, w, shared, scratch, stats, ready, wobs, 1, failure);
        }
    }
}

/// The guarded lane: poison check, fault injection, deadline watch, and
/// the attempt loop. Split from [`run_task`] so the fault-free fast
/// lane never pays for any of it.
fn run_task_guarded<R: ReleaseSuccs, P: SchedPolicy>(
    t: u32,
    w: usize,
    shared: &Shared<'_, R, P>,
    scratch: &mut PayloadScratch<'_>,
    stats: &mut WorkerStats,
    ready: &mut Vec<u32>,
    wobs: &mut WorkerObs,
) {
    // The status byte was stored before the countdown/publish that made
    // `t` ready, and the deque transfer carries it here (§11).
    if shared.status[t as usize].load(Ordering::Acquire) != HEALTHY {
        complete(t, w, shared, ready, wobs, true);
        wobs.task_poisoned(t, &shared.obs);
        return;
    }
    let tb = wobs.task_begin(t);
    match attempt_payload(t, 1, w, shared, scratch) {
        Ok(()) => {
            stats.executed += 1;
            if !shared.retry_hist.is_empty() {
                shared.retry_hist[0].fetch_add(1, Ordering::Relaxed);
            }
            complete(t, w, shared, ready, wobs, false);
            wobs.task_end(t, tb, &shared.obs);
        }
        Err(AttemptError::Failed(failure)) => {
            shared.tainted.store(1, Ordering::Relaxed);
            resolve_failure(t, w, shared, scratch, stats, ready, wobs, 1, failure);
        }
        Err(AttemptError::Aborted) => {}
    }
}

/// A task attempt's failure modes.
enum AttemptError {
    /// The attempt failed (panic or deadline): the policy decides next.
    Failed(TaskFailure),
    /// The run is aborting (run deadline / fail-fast elsewhere): drop
    /// the attempt without completing the task; the worker loop exits
    /// on its next `stopping()` check.
    Aborted,
}

/// Runs one payload attempt inside the containment boundary, with
/// injection and deadline watching. `attempt` is 1-based.
fn attempt_payload<R: ReleaseSuccs, P: SchedPolicy>(
    t: u32,
    attempt: u32,
    w: usize,
    shared: &Shared<'_, R, P>,
    scratch: &mut PayloadScratch<'_>,
) -> Result<(), AttemptError> {
    let injected = shared.plan.effective(t, attempt, shared.task_deadline.is_some());
    if let Some(InjectedFault::Panic) = injected {
        // Containment-boundary exercise: a real panic, caught exactly
        // where a payload panic would be. The marker keeps the process
        // panic hook quiet for expected chaos (fault::install_quiet_hook).
        let caught = catch_unwind(AssertUnwindSafe(|| {
            panic!("{INJECTED_PANIC_MARKER} task {t} attempt {attempt}");
        }));
        debug_assert!(caught.is_err());
        return match caught {
            Err(payload) => Err(AttemptError::Failed(TaskFailure::Panicked {
                message: panic_message(&*payload),
            })),
            Ok(()) => Ok(()),
        };
    }
    if shared.watch.is_empty() {
        // No deadline armed: plain payload under the boundary.
        // (`effective` already downgraded any Delay to a Panic.)
        let res = catch_unwind(AssertUnwindSafe(|| match shared.payload {
            PayloadMode::Noop | PayloadMode::Faulty { .. } => {}
            PayloadMode::Spin { time_scale } => {
                scratch.run_spin(shared.runtimes[t as usize], time_scale);
            }
            PayloadMode::Memcpy => {
                scratch.run_memcpy(shared.trace.task(t as TaskId));
            }
            PayloadMode::Mixed { time_scale } => {
                scratch.run_mixed(shared.trace.task(t as TaskId), time_scale);
            }
        }));
        return res.map_err(|p| {
            AttemptError::Failed(TaskFailure::Panicked { message: panic_message(&*p) })
        });
    }
    // Watched attempt: arm this worker's slot, run the cancellable
    // payload, verify any cancellation against the clock (see
    // `WatchSlot` for the race this closes).
    let slot = &shared.watch[w];
    loop {
        if shared.aborted() {
            return Err(AttemptError::Aborted);
        }
        let started = Stamp::now();
        slot.cancel.store(0, Ordering::Relaxed);
        if let Some(dl) = shared.task_deadline {
            let abs = shared.t0.elapsed() + dl;
            slot.deadline_ns.store((abs.as_nanos() as u64).max(1), Ordering::Release);
        }
        let outcome = match injected {
            Some(InjectedFault::Delay) => {
                // Stall until the watchdog cancels (only reachable with
                // a task deadline armed — `effective` guarantees it).
                scratch.stall_until_cancelled(&slot.cancel);
                Ok(true)
            }
            _ => catch_unwind(AssertUnwindSafe(|| {
                let task = shared.trace.task(t as TaskId);
                let (_, cancelled) = scratch.run_watched(shared.payload, task, &slot.cancel);
                cancelled
            })),
        };
        slot.deadline_ns.store(0, Ordering::Release);
        match outcome {
            Ok(false) => return Ok(()),
            Ok(true) => {
                if shared.run_deadline_hit.load(Ordering::Acquire) != 0 || shared.aborted() {
                    return Err(AttemptError::Aborted);
                }
                if shared.task_deadline.is_some_and(|dl| started.elapsed() >= dl) {
                    return Err(AttemptError::Failed(TaskFailure::Deadline));
                }
                // Stale cancel from the previous task's expiry racing
                // the re-arm: restart the attempt (payloads are
                // idempotent on private scratch).
            }
            Err(p) => {
                return Err(AttemptError::Failed(TaskFailure::Panicked {
                    message: panic_message(&*p),
                }))
            }
        }
    }
}

/// Applies the failure policy after attempt `attempt` of task `t`
/// failed with `failure`: retries (with seeded backoff) while attempts
/// remain, then fail-fasts or quarantines.
#[allow(clippy::too_many_arguments)]
fn resolve_failure<R: ReleaseSuccs, P: SchedPolicy>(
    t: u32,
    w: usize,
    shared: &Shared<'_, R, P>,
    scratch: &mut PayloadScratch<'_>,
    stats: &mut WorkerStats,
    ready: &mut Vec<u32>,
    wobs: &mut WorkerObs,
    mut attempt: u32,
    mut failure: TaskFailure,
) {
    while attempt < shared.max_attempts && !shared.aborted() {
        let wait = backoff_for(shared.plan.seed, t, attempt, shared.backoff_base);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
        attempt += 1;
        wobs.retry(t, &shared.obs);
        match attempt_payload(t, attempt, w, shared, scratch) {
            Ok(()) => {
                stats.executed += 1;
                shared.retried_ok.fetch_add(1, Ordering::Relaxed);
                if !shared.retry_hist.is_empty() {
                    shared.retry_hist[(attempt - 1) as usize].fetch_add(1, Ordering::Relaxed);
                }
                complete(t, w, shared, ready, wobs, false);
                return;
            }
            Err(AttemptError::Failed(f)) => failure = f,
            Err(AttemptError::Aborted) => return,
        }
    }
    if shared.aborted() {
        return;
    }
    // Attempts exhausted: record, then fail-fast or quarantine.
    {
        let mut failures = shared.failures.lock().expect("failure log poisoned");
        failures.push(FailedTask { task: t, attempts: attempt, failure });
    }
    if !shared.retry_hist.is_empty() {
        shared.retry_hist[(attempt - 1) as usize].fetch_add(1, Ordering::Relaxed);
    }
    match shared.policy {
        FailurePolicy::FailFast => {
            // No ticket, no release: successors starve by design; the
            // abort flag (not the ticket count) ends the run.
            shared.request_abort();
        }
        FailurePolicy::Retry { .. } | FailurePolicy::Quarantine => {
            // FAILED is stored before `complete`'s poison_release
            // closes the pending list, so the §11 publish hands the
            // byte to any later window commit.
            shared.status[t as usize].store(FAILED, Ordering::Relaxed);
            complete(t, w, shared, ready, wobs, true);
            wobs.task_poisoned(t, &shared.obs);
        }
    }
}

/// How a worker thread left the run. Either way it hands back its
/// counters and its observability sink (drained after the join).
enum WorkerExit {
    /// Normal exit: ran until termination (or abort).
    Finished(WorkerStats, WorkerObs),
    /// Injected worker kill: the thread left mid-run with work possibly
    /// still in its deque — the survivors adopt it via the thief
    /// protocol (the Chase-Lev top end needs no owner).
    Killed(WorkerStats, WorkerObs),
}

fn worker_loop<R: ReleaseSuccs, P: SchedPolicy>(
    w: usize,
    shared: &Shared<'_, R, P>,
    arena: &[u8],
    seed: u64,
) -> WorkerExit {
    let mut stats = WorkerStats::default();
    let mut wobs = WorkerObs::new();
    // The whole-worker span guarantees every worker track carries at
    // least one event, even for a worker that never won a task.
    let span = SpanStamp::begin();
    let mut scratch = PayloadScratch::new(arena);
    let mut ready: Vec<u32> = Vec::with_capacity(64);
    let mut rng = seed ^ (w as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    let me = &shared.deques[w];
    // Victim scan order, refilled by the policy each idle scan (reused
    // so the steady state allocates nothing).
    let mut victims: Vec<usize> = Vec::with_capacity(shared.deques.len());
    // Injected worker loss: die *between* tasks after the first
    // completion — a clean kill (ticket taken, successors released), so
    // the run still terminates; only the parallelism degrades.
    let kill_after: u64 = match shared.plan.kill_worker {
        Some(k) if k == w => 1,
        _ => u64::MAX,
    };

    loop {
        // Fast path: drain the own deque depth-first. No epoch or done
        // loads per task — those belong to the idle path. The burst is
        // clocked as one span: two clock reads however many tasks
        // drain, and the Burst ring event reuses exactly those two
        // stamps (zero extra reads, DESIGN.md §12.3).
        if let Some(t) = shared.sched.take_local(w, me) {
            let burst = Stamp::now();
            let before = stats.executed;
            run_task(t, w, shared, &mut scratch, &mut stats, &mut ready, &mut wobs);
            while stats.executed < kill_after {
                match shared.sched.take_local(w, me) {
                    Some(t) => {
                        run_task(t, w, shared, &mut scratch, &mut stats, &mut ready, &mut wobs)
                    }
                    None => break,
                }
            }
            let end = Stamp::now();
            stats.busy += end.since(burst);
            wobs.burst(burst, end, stats.executed - before, &shared.obs);
            if stats.executed >= kill_after {
                // Leave abandoned work visible: wake everyone so the
                // survivors rescan and adopt this deque.
                shared.parker.wake_all();
                wobs.worker_span(w as u32, span, &shared.obs);
                return WorkerExit::Killed(stats, wobs);
            }
        }
        if shared.stopping() {
            break;
        }
        // Epoch before the scans: any push after a failed scan moves
        // the epoch and aborts the park (§8 Dekker pairing).
        let epoch = shared.parker.current_epoch();
        let task = shared
            .sched
            .take_routed(w)
            .or_else(|| shared.injector.steal_batch_into(me, BATCH_MAX))
            .or_else(|| {
                // The policy orders the victim scan (baseline: one
                // random rotation over everyone else; locality: own
                // domain first, cross-domain fallback after). The scan
                // stays *complete* — every deque is visited — which
                // the park/termination argument requires (§13.4).
                shared.sched.victims(w, &mut rng, &mut victims);
                victims.iter().find_map(|&victim| {
                    let t = shared.deques[victim].steal_batch_into(me, BATCH_MAX);
                    if t.is_some() {
                        stats.steals += 1;
                        if shared.sched.cross_domain(w, victim) {
                            stats.cross_steals += 1;
                        }
                        wobs.steal(victim as u32, &shared.obs);
                    }
                    t
                })
            });
        match task {
            Some(t) => {
                // A successful batch steal banked surplus: chain one
                // wake so other idle workers can re-balance too.
                if !me.is_empty() && shared.parker.has_idle() {
                    shared.parker.wake_one();
                    wobs.wake(&shared.obs);
                }
                let burst = Stamp::now();
                let before = stats.executed;
                run_task(t, w, shared, &mut scratch, &mut stats, &mut ready, &mut wobs);
                let end = Stamp::now();
                stats.busy += end.since(burst);
                wobs.burst(burst, end, stats.executed - before, &shared.obs);
                if stats.executed >= kill_after {
                    shared.parker.wake_all();
                    wobs.worker_span(w as u32, span, &shared.obs);
                    return WorkerExit::Killed(stats, wobs);
                }
            }
            None => {
                if shared.stopping() {
                    break;
                }
                let parked = wobs.park_begin();
                shared.parker.park(epoch, || shared.stopping());
                wobs.park(parked, &shared.obs);
            }
        }
    }
    wobs.worker_span(w as u32, span, &shared.obs);
    WorkerExit::Finished(stats, wobs)
}

/// The deadline watchdog: a polling thread (the facade condvar has no
/// `wait_timeout`, and 200 µs polls are noise against ms-scale
/// deadlines) that cancels expired attempts and aborts the run past its
/// deadline. Spawned only when a deadline is armed; exits as soon as
/// the run stops.
fn watchdog_loop<R: ReleaseSuccs, P: SchedPolicy>(shared: &Shared<'_, R, P>) {
    loop {
        if shared.stopping() {
            return;
        }
        std::thread::sleep(Duration::from_micros(200));
        let now = shared.t0.elapsed().as_nanos() as u64;
        for slot in &shared.watch {
            let dl = slot.deadline_ns.load(Ordering::Acquire);
            if dl != 0 && now >= dl {
                slot.cancel.store(1, Ordering::Release);
            }
        }
        if shared.run_deadline_ns != 0 && now >= shared.run_deadline_ns {
            shared.run_deadline_hit.store(1, Ordering::Release);
            // Cancel every in-flight payload, then abort: workers
            // observe `Aborted` attempts and exit without completing.
            for slot in &shared.watch {
                slot.cancel.store(1, Ordering::Release);
            }
            shared.request_abort();
            return;
        }
        // External cancellation (DESIGN.md §14.3): same abort protocol
        // as the run deadline, but reported as `ExecError::Cancelled`.
        // With no deadline armed there are no watch slots, so an
        // in-flight payload finishes before its worker observes the
        // abort on the idle path — cancellation is prompt, not
        // preemptive.
        if let Some(token) = &shared.cancel {
            if token.is_cancelled() {
                shared.cancel_hit.store(1, Ordering::Release);
                for slot in &shared.watch {
                    slot.cancel.store(1, Ordering::Release);
                }
                shared.request_abort();
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Streaming decode plumbing
// ---------------------------------------------------------------------

/// One window × shard pair buffer: `(consumer, producer)` in scan
/// order.
type PairBuf = Vec<(u32, u32)>;

/// Decode-side shared state for a streaming run.
struct DecodeShared<'a> {
    trace: &'a TaskTrace,
    window: usize,
    windows: usize,
    shards: usize,
    /// `scan_done[w]`: shards that have finished scanning window `w`.
    scan_done: Vec<AtomicUsize>,
    /// `bufs[w][sh]`: window `w`'s `(consumer, producer)` pairs from
    /// shard `sh`. Mutex-guarded but uncontended by construction (the
    /// owning shard writes before its `scan_done` bump; the committer
    /// reads after observing all bumps) — the lock is an auditability
    /// choice on a per-window cold path.
    bufs: Vec<Vec<Mutex<PairBuf>>>,
    /// Serializes window commits and owns the committer-side cursors.
    commit: Mutex<CommitState>,
    /// Wall-clock anchor for [`ExecReport::decode_wall`].
    started: Stamp,
    /// Nanoseconds from `started` to the last commit.
    decode_span_ns: AtomicU64,
}

struct CommitState {
    /// Next window to commit (windows commit strictly in order: that
    /// keeps injector pushes — and thus 1-worker replays —
    /// deterministic).
    next_window: usize,
    /// Bump cursor into the `StreamRelease` node slab.
    node_cursor: usize,
    /// Enforced (post-dedup) edges registered so far.
    edges: usize,
    scratch: Vec<u32>,
}

impl<'a> DecodeShared<'a> {
    fn new(trace: &'a TaskTrace, window: usize, shards: usize) -> Self {
        let n = trace.len();
        let windows = n.div_ceil(window.max(1));
        DecodeShared {
            trace,
            window,
            windows,
            shards,
            scan_done: (0..windows).map(|_| AtomicUsize::new(0)).collect(),
            bufs: (0..windows)
                .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            commit: Mutex::new(CommitState {
                next_window: 0,
                node_cursor: 0,
                edges: 0,
                scratch: Vec::new(),
            }),
            started: Stamp::now(),
            decode_span_ns: AtomicU64::new(0),
        }
    }

    /// Commits every consecutively-ready window starting at the commit
    /// cursor. Called by whichever shard thread finished a window last;
    /// the commit mutex makes the committer role migrate safely (the
    /// injector's owner contract rides the same lock).
    fn commit_ready<P: SchedPolicy>(
        &self,
        shared: &Shared<'_, StreamRelease, P>,
        dobs: &mut WorkerObs,
    ) {
        let mut st = self.commit.lock().expect("commit state poisoned");
        let mut pushed_roots = false;
        while st.next_window < self.windows {
            let w = st.next_window;
            if self.scan_done[w].load(Ordering::Acquire) != self.shards {
                break;
            }
            let lo = w * self.window;
            let hi = ((w + 1) * self.window).min(self.trace.len());
            let views: Vec<PairBuf> = self.bufs[w]
                .iter()
                .map(|m| std::mem::take(&mut *m.lock().expect("window buffer poisoned")))
                .collect();
            let mut cursors = vec![0usize; self.shards];
            let mut scratch = std::mem::take(&mut st.scratch);
            let mut node_cursor = st.node_cursor;
            let mut edges = 0usize;
            merge_window(lo, hi, &views, &mut cursors, &mut scratch, |s, preds| {
                let mut satisfied = 0usize;
                for &p in preds {
                    let idx = node_cursor as u32;
                    node_cursor += 1;
                    match shared.mode.register_edge(idx, p, s, &shared.status) {
                        EdgeFate::Registered => {}
                        EdgeFate::SatisfiedHealthy => {
                            satisfied += 1;
                            node_cursor -= 1; // node unused: reuse the slot
                        }
                        EdgeFate::SatisfiedPoisoned => {
                            // The producer failed (or was poisoned)
                            // before this edge existed: the committer
                            // owns both the satisfaction *and* the
                            // poison propagation (§11).
                            mark_poisoned(&shared.status[s as usize]);
                            satisfied += 1;
                            node_cursor -= 1;
                        }
                    }
                }
                edges += preds.len();
                // Publish: fold the sentinel away. Whichever atomic op
                // lands the counter exactly on zero owns the push.
                let delta = preds.len() as i32 - satisfied as i32 - UNPUBLISHED;
                let old = shared.mode.unready[s as usize].fetch_add(delta, Ordering::AcqRel);
                if old + delta == 0 {
                    shared.injector.push(s);
                    pushed_roots = true;
                    // Injector-path Spawn event for sampled roots (the
                    // deque-path event lives in `complete`); the
                    // drain-time pairing in `SharedObs::finish` turns
                    // it into the task's queue-wait anchor.
                    if tss_obs::sampled(s) {
                        dobs.spawn(s, &shared.obs);
                    }
                }
            });
            st.scratch = scratch;
            st.node_cursor = node_cursor;
            st.edges += edges;
            st.next_window = w + 1;
            // Per-window commit event + commit-lag gauge (how far the
            // committed frontier runs ahead of completions). The whole
            // block folds away in NoopSink builds.
            if tss_obs::ENABLED {
                dobs.commit(w as u32, &shared.obs);
                let lag = hi.saturating_sub(shared.next_ticket.load(Ordering::Relaxed));
                shared.obs.note_commit_lag(lag as u64);
            }
        }
        let finished = st.next_window == self.windows;
        drop(st);
        if finished {
            let ns = self.started.elapsed().as_nanos() as u64;
            self.decode_span_ns.fetch_max(ns, Ordering::Relaxed);
        }
        if pushed_roots {
            // One wake per commit, not per task: parked workers rescan
            // the injector and re-balance via batch steals.
            shared.parker.wake_all();
        }
    }
}

/// One decode shard thread: scan every window (in order — the shard's
/// rename state is sequential), commit whenever this shard is the last
/// to finish a window.
fn decode_loop<P: SchedPolicy>(
    shard: usize,
    renaming: bool,
    dec: &DecodeShared<'_>,
    shared: &Shared<'_, StreamRelease, P>,
) -> (RenameStats, WorkerObs) {
    let mut dobs = WorkerObs::new();
    let mut state = ShardState::new(renaming, shard as u32, dec.shards as u32);
    for w in 0..dec.windows {
        let lo = w * dec.window;
        let hi = ((w + 1) * dec.window).min(dec.trace.len());
        let sp = SpanStamp::begin();
        {
            let mut buf = dec.bufs[w][shard].lock().expect("window buffer poisoned");
            state.scan(dec.trace, lo, hi, &mut buf);
        }
        dobs.scan(w as u32, sp, &shared.obs);
        if dec.scan_done[w].fetch_add(1, Ordering::AcqRel) + 1 == dec.shards {
            dec.commit_ready(shared, &mut dobs);
        }
    }
    (*state.stats(), dobs)
}

// ---------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------

/// The native out-of-order task executor.
///
/// ```
/// use tss_exec::{ExecConfig, Executor};
/// use tss_workloads::{Benchmark, Scale};
///
/// let trace = Benchmark::Cholesky.trace(Scale::Small, 1);
/// let report = Executor::new(ExecConfig { threads: 2, ..ExecConfig::default() })
///     .run(&trace)
///     .expect("replay failed");
/// assert_eq!(report.tasks, trace.len());
/// assert!(report.validated);
/// assert!(report.streaming);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Executor {
    config: ExecConfig,
}

impl Executor {
    /// An executor with the given configuration (`window` and
    /// `decode_shards` are clamped to ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `config.threads` is zero, or if `kill_worker` is set
    /// with fewer than two workers / an out-of-range index (a lone
    /// killed worker could never finish the run).
    pub fn new(mut config: ExecConfig) -> Self {
        assert!(config.threads >= 1, "the executor needs at least one worker");
        if let Some(k) = config.kill_worker {
            assert!(config.threads >= 2, "kill_worker needs at least two workers");
            assert!(k < config.threads, "kill_worker index out of range");
        }
        config.window = config.window.max(1);
        config.decode_shards = config.decode_shards.max(1);
        config.classes = config.classes.clamp(1, crate::payload::NUM_CLASSES);
        config.domains = config.domains.clamp(1, config.threads);
        Executor { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Streams `trace` through the pipelined core: decode shard threads
    /// rename window by window while workers already execute committed
    /// windows.
    ///
    /// # Errors
    ///
    /// [`ExecError::TaskFailed`] under `FailFast`, `RunDeadline` past
    /// the run budget, `WorkerPanic` for a non-payload thread death,
    /// and `OracleViolation` if validation rejects the completion log.
    /// Task failures under `Retry`/`Quarantine` are *not* errors: they
    /// come back inside [`ExecReport::fault`].
    pub fn run(&self, trace: &TaskTrace) -> Result<ExecReport, ExecError> {
        // The one policy dispatch of the run (DESIGN.md §13.1): each
        // arm monomorphizes the entire pipeline — worker loop, decode
        // commit, finish — over its policy type. No `dyn` anywhere.
        match self.config.sched {
            SchedKind::Lifo => self.run_inner::<LifoPolicy>(trace),
            SchedKind::Fifo => self.run_inner::<FifoPolicy>(trace),
            SchedKind::CostAware => self.run_inner::<CostAwarePolicy>(trace),
            SchedKind::Locality => self.run_inner::<LocalityPolicy>(trace),
        }
    }

    fn run_inner<P: SchedPolicy>(&self, trace: &TaskTrace) -> Result<ExecReport, ExecError> {
        let n = trace.len();
        let threads = self.config.threads;
        let shards = self.config.decode_shards;
        let total_ops: usize = trace.iter().map(|t| t.operands.len()).sum();
        // Pre-dedup pair bound: ≤ 1 RaW per read + 1 WaW per write +
        // readers cleared per write (≤ total reads) — see renamer.rs.
        let edge_cap = 3 * total_ops + 8;
        let shared: Shared<'_, _, P> =
            Shared::new_for(trace, StreamRelease::new(n, edge_cap), &self.config);
        let arena = self.arena();
        // Constructed last: `dec.started` anchors the decode span, so
        // nothing non-decode (notably the memcpy arena build) may sit
        // between it and the run start.
        let dec = DecodeShared::new(trace, self.config.window, shards);

        let t0 = dec.started;
        let mut workers = vec![WorkerStats::default(); threads];
        let mut worker_obs: Vec<WorkerObs> = (0..threads).map(|_| WorkerObs::new()).collect();
        let mut decode_obs: Vec<WorkerObs> = Vec::with_capacity(shards);
        let mut rename = RenameStats::default();
        let mut workers_lost = 0usize;
        if n > 0 {
            std::thread::scope(|scope| {
                if shared.watchdog_armed() {
                    let shared = &shared;
                    scope.spawn(move || watchdog_loop(shared));
                }
                let decoders: Vec<_> = (0..shards)
                    .map(|sh| {
                        let dec = &dec;
                        let shared = &shared;
                        let renaming = self.config.renaming;
                        scope.spawn(move || {
                            // Thread-boundary containment: a decoder
                            // panic (an executor bug) aborts the run
                            // with a structured error instead of a
                            // process abort at join time.
                            catch_unwind(AssertUnwindSafe(|| {
                                decode_loop(sh, renaming, dec, shared)
                            }))
                            .unwrap_or_else(|p| {
                                shared.note_infra_panic(panic_message(&*p));
                                (RenameStats::default(), WorkerObs::new())
                            })
                        })
                    })
                    .collect();
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        let shared = &shared;
                        let arena = &arena[..];
                        let seed = self.config.seed;
                        scope.spawn(move || {
                            catch_unwind(AssertUnwindSafe(|| worker_loop(w, shared, arena, seed)))
                                .map_err(|p| shared.note_infra_panic(panic_message(&*p)))
                        })
                    })
                    .collect();
                for d in decoders {
                    if let Ok((stats, dobs)) = d.join() {
                        rename.objects += stats.objects;
                        rename.tracked_operands += stats.tracked_operands;
                        rename.removed_by_renaming += stats.removed_by_renaming;
                        decode_obs.push(dobs);
                    }
                }
                for (w, h) in handles.into_iter().enumerate() {
                    match h.join() {
                        Ok(Ok(WorkerExit::Finished(stats, wobs))) => {
                            workers[w] = stats;
                            worker_obs[w] = wobs;
                        }
                        Ok(Ok(WorkerExit::Killed(stats, wobs))) => {
                            workers[w] = stats;
                            worker_obs[w] = wobs;
                            workers_lost += 1;
                        }
                        // The closure caught the panic already (and
                        // noted it); a dead worker is a lost worker.
                        Ok(Err(())) | Err(_) => workers_lost += 1,
                    }
                }
            });
        }
        let exec_wall = t0.elapsed();
        rename.enforced_edges = dec.commit.lock().expect("commit state poisoned").edges;
        let decode_wall = Duration::from_nanos(dec.decode_span_ns.load(Ordering::Relaxed));
        let overlap = if exec_wall.as_secs_f64() > 0.0 {
            100.0 * decode_wall.as_secs_f64().min(exec_wall.as_secs_f64()) / exec_wall.as_secs_f64()
        } else {
            0.0
        };
        let extras = FinishExtras {
            decode_wall,
            exec_wall,
            overlap,
            streaming: true,
            workers_lost,
            worker_obs,
            decode_obs,
        };
        self.finish(trace, shared, extras, workers, rename)
    }

    /// PR 3's two-phase shape: decode the whole trace first (timed as a
    /// pure serial phase), then replay it. This is the
    /// apples-to-apples *replay throughput* measurement — decode is
    /// excluded from `exec_wall` — and the fixed-graph shape the
    /// microbenches need.
    ///
    /// # Errors
    ///
    /// As [`Executor::run`].
    pub fn run_oneshot(&self, trace: &TaskTrace) -> Result<ExecReport, ExecError> {
        let t0 = Stamp::now();
        let graph = Renamer::new().renaming(self.config.renaming).decode(trace);
        let decode_wall = t0.elapsed();
        self.replay(trace, &graph, decode_wall)
    }

    /// Replays an already-decoded graph (one-shot mode without paying
    /// the decode: benchmark loops hoist it).
    ///
    /// # Errors
    ///
    /// As [`Executor::run`].
    pub fn replay(
        &self,
        trace: &TaskTrace,
        graph: &TaskGraph,
        decode_wall: Duration,
    ) -> Result<ExecReport, ExecError> {
        match self.config.sched {
            SchedKind::Lifo => self.replay_inner::<LifoPolicy>(trace, graph, decode_wall),
            SchedKind::Fifo => self.replay_inner::<FifoPolicy>(trace, graph, decode_wall),
            SchedKind::CostAware => self.replay_inner::<CostAwarePolicy>(trace, graph, decode_wall),
            SchedKind::Locality => self.replay_inner::<LocalityPolicy>(trace, graph, decode_wall),
        }
    }

    fn replay_inner<P: SchedPolicy>(
        &self,
        trace: &TaskTrace,
        graph: &TaskGraph,
        decode_wall: Duration,
    ) -> Result<ExecReport, ExecError> {
        assert_eq!(graph.len(), trace.len(), "graph decoded from a different trace");
        let threads = self.config.threads;
        let shared: Shared<'_, _, P> =
            Shared::new_for(trace, PrebuiltRelease::new(graph), &self.config);
        for r in graph.roots() {
            shared.injector.push(r as u32);
            // No Spawn events for roots: they are pushed from the main
            // thread before any worker (and its ring) exists, so their
            // queue wait goes unmeasured — sampling loss, not bias
            // (DESIGN.md §12.3).
        }
        let arena = self.arena();

        let t0 = Stamp::now();
        let mut workers = vec![WorkerStats::default(); threads];
        let mut worker_obs: Vec<WorkerObs> = (0..threads).map(|_| WorkerObs::new()).collect();
        let mut workers_lost = 0usize;
        if !graph.is_empty() {
            std::thread::scope(|scope| {
                if shared.watchdog_armed() {
                    let shared = &shared;
                    scope.spawn(move || watchdog_loop(shared));
                }
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        let shared = &shared;
                        let arena = &arena[..];
                        let seed = self.config.seed;
                        scope.spawn(move || {
                            catch_unwind(AssertUnwindSafe(|| worker_loop(w, shared, arena, seed)))
                                .map_err(|p| shared.note_infra_panic(panic_message(&*p)))
                        })
                    })
                    .collect();
                for (w, h) in handles.into_iter().enumerate() {
                    match h.join() {
                        Ok(Ok(WorkerExit::Finished(stats, wobs))) => {
                            workers[w] = stats;
                            worker_obs[w] = wobs;
                        }
                        Ok(Ok(WorkerExit::Killed(stats, wobs))) => {
                            workers[w] = stats;
                            worker_obs[w] = wobs;
                            workers_lost += 1;
                        }
                        Ok(Err(())) | Err(_) => workers_lost += 1,
                    }
                }
            });
        }
        let exec_wall = t0.elapsed();
        let rename = *graph.stats();
        let extras = FinishExtras {
            decode_wall,
            exec_wall,
            overlap: 0.0,
            streaming: false,
            workers_lost,
            worker_obs,
            decode_obs: Vec::new(),
        };
        self.finish(trace, shared, extras, workers, rename)
    }

    /// Only memcpy (and mixed, whose memory class memcpys) reads the
    /// source arena; noop/spin runs get a minimal zeroed one (building
    /// the 4 MB pattern would dominate short replays).
    fn arena(&self) -> Vec<u8> {
        match self.config.payload {
            PayloadMode::Memcpy | PayloadMode::Mixed { .. } => build_arena(),
            _ => vec![0u8; 2 * tss_workloads::payload::CHUNK_CAP],
        }
    }

    fn finish<R: ReleaseSuccs, P: SchedPolicy>(
        &self,
        trace: &TaskTrace,
        shared: Shared<'_, R, P>,
        extras: FinishExtras,
        workers: Vec<WorkerStats>,
        rename: RenameStats,
    ) -> Result<ExecReport, ExecError> {
        let FinishExtras {
            decode_wall,
            exec_wall,
            overlap,
            streaming,
            workers_lost,
            worker_obs,
            decode_obs,
        } = extras;
        // Error resolution order: infrastructure death first (nothing
        // else is trustworthy after an executor-bug panic), then the
        // run deadline, then a fail-fast task failure.
        let infra = shared.infra_panic.lock().expect("infra panic slot poisoned").take();
        if let Some(message) = infra {
            return Err(ExecError::WorkerPanic { message });
        }
        let completed = shared.next_ticket.load(Ordering::Acquire).min(shared.n);
        if shared.cancel_hit.load(Ordering::Acquire) != 0 {
            return Err(ExecError::Cancelled { completed, tasks: shared.n });
        }
        if shared.run_deadline_hit.load(Ordering::Acquire) != 0 {
            return Err(ExecError::RunDeadline {
                deadline: self.config.run_deadline.unwrap_or_default(),
                completed,
                tasks: shared.n,
            });
        }
        let mut failed =
            std::mem::take(&mut *shared.failures.lock().expect("failure log poisoned"));
        failed.sort_by_key(|f| f.task);
        if matches!(self.config.policy, FailurePolicy::FailFast) && !failed.is_empty() {
            return Err(ExecError::TaskFailed(failed.remove(0)));
        }
        if shared.aborted() {
            // Aborted without an infra panic, deadline, or fail-fast
            // failure: cannot happen by construction; surface it rather
            // than fabricating a report.
            return Err(ExecError::WorkerPanic { message: "run aborted without a cause".into() });
        }
        let order: Vec<TaskId> =
            shared.order.iter().map(|s| s.load(Ordering::Relaxed) as TaskId).collect();
        assert_eq!(order.len(), trace.len(), "executor lost tasks");
        let validated = self.config.validate;
        if validated {
            // The *full* log — failed and poisoned tasks included — must
            // linearize the dependency order: every task, whatever its
            // fate, took its ticket only after its producers took
            // theirs.
            let oracle = trace.dep_graph();
            if let Err(v) = oracle.validate_order(&order) {
                return Err(ExecError::OracleViolation { detail: v.to_string() });
            }
        }
        let poisoned: Vec<u32> = (0..shared.n as u32)
            .filter(|&t| shared.status[t as usize].load(Ordering::Relaxed) == POISONED)
            .collect();
        let retry_hist: Vec<u64> =
            shared.retry_hist.iter().map(|h| h.load(Ordering::Relaxed)).collect();
        let fault = FaultReport {
            failed,
            poisoned,
            retried_ok: shared.retried_ok.load(Ordering::Relaxed),
            retry_hist: if retry_hist.len() > 1 { retry_hist } else { Vec::new() },
            workers_lost,
        };
        // Drain the per-worker sinks into the report (None in NoopSink
        // builds): histograms merge across workers, rings become
        // per-worker/per-shard tracks.
        let obs = shared.obs.finish(worker_obs, decode_obs);
        Ok(ExecReport {
            benchmark: trace.name().to_string(),
            tasks: trace.len(),
            threads: self.config.threads,
            payload: self.config.payload,
            decode_wall,
            exec_wall,
            decode_overlap_pct: overlap,
            streaming,
            decode_shards: if streaming { self.config.decode_shards } else { 1 },
            order,
            workers,
            rename,
            validated,
            fault,
            obs,
        })
    }
}

/// Mode-specific run measurements handed to `finish`.
struct FinishExtras {
    decode_wall: Duration,
    exec_wall: Duration,
    overlap: f64,
    streaming: bool,
    workers_lost: usize,
    /// Per-worker observability sinks, in worker order.
    worker_obs: Vec<WorkerObs>,
    /// Per-decode-shard sinks (empty for one-shot replays).
    decode_obs: Vec<WorkerObs>,
}

/// Convenience: stream with defaults, returning the report.
///
/// # Errors
///
/// As [`Executor::run`].
pub fn run_trace(trace: &TaskTrace, threads: usize) -> Result<ExecReport, ExecError> {
    Executor::new(ExecConfig { threads, ..ExecConfig::default() }).run(trace)
}

/// Re-exported for harness use: classifies a completion log against an
/// oracle without panicking.
pub fn check_order(trace: &TaskTrace, order: &[TaskId]) -> Result<(), OrderViolation> {
    trace.dep_graph().validate_order(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::{OperandDesc, TaskTrace};

    fn diamond() -> TaskTrace {
        // 0 → {1, 2} → 3
        let mut tr = TaskTrace::new("diamond");
        let k = tr.add_kernel("k");
        tr.push_task(k, 10, vec![OperandDesc::output(0xA, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::input(0xA, 64), OperandDesc::output(0xB, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::input(0xA, 64), OperandDesc::output(0xC, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::input(0xB, 64), OperandDesc::input(0xC, 64)]);
        tr
    }

    #[test]
    fn replays_a_diamond_in_dependency_order() {
        for threads in [1, 2, 4] {
            let report = run_trace(&diamond(), threads).expect("diamond replay failed");
            assert_eq!(report.tasks, 4);
            assert_eq!(report.order[0], 0);
            assert_eq!(report.order[3], 3);
            assert!(report.validated);
            assert!(report.streaming);
            let executed: u64 = report.workers.iter().map(|w| w.executed).sum();
            assert_eq!(executed, 4);
        }
    }

    #[test]
    fn oneshot_replays_the_diamond_too() {
        let cfg = ExecConfig { threads: 2, ..ExecConfig::default() };
        let report = Executor::new(cfg).run_oneshot(&diamond()).expect("oneshot failed");
        assert_eq!(report.tasks, 4);
        assert_eq!(report.order[0], 0);
        assert!(!report.streaming);
        assert_eq!(report.decode_overlap_pct, 0.0);
        assert!(!report.fault.any(), "clean run reported failure activity");
        assert!(report.accounting_reconciles());
    }

    #[test]
    fn empty_trace_is_a_clean_noop() {
        for streaming in [true, false] {
            let exec = Executor::new(ExecConfig { threads: 2, ..ExecConfig::default() });
            let report = if streaming {
                exec.run(&TaskTrace::new("empty")).expect("empty run failed")
            } else {
                exec.run_oneshot(&TaskTrace::new("empty")).expect("empty oneshot failed")
            };
            assert_eq!(report.tasks, 0);
            assert!(report.order.is_empty());
            assert_eq!(report.tasks_per_sec(), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Executor::new(ExecConfig { threads: 0, ..ExecConfig::default() });
    }

    #[test]
    fn independent_tasks_all_run() {
        let mut tr = TaskTrace::new("indep");
        let k = tr.add_kernel("k");
        for i in 0..200u64 {
            tr.push_task(k, 10, vec![OperandDesc::output(0x1000 + i * 64, 64)]);
        }
        let report = run_trace(&tr, 4).expect("independent replay failed");
        assert_eq!(report.tasks, 200);
        let mut seen = report.order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn no_renaming_serializes_a_waw_chain() {
        let mut tr = TaskTrace::new("waw");
        let k = tr.add_kernel("k");
        for _ in 0..8 {
            tr.push_task(k, 10, vec![OperandDesc::output(0xA, 64)]);
        }
        let cfg = ExecConfig { threads: 4, renaming: false, ..ExecConfig::default() };
        let report = Executor::new(cfg).run(&tr).expect("waw replay failed");
        // WaW enforced: completion order must be program order.
        assert_eq!(report.order, (0..8).collect::<Vec<_>>());
        assert_eq!(report.rename.removed_by_renaming, 0);
    }

    #[test]
    fn tiny_windows_and_many_shards_replay_validated() {
        // Window 1 with multiple shards maximizes cross-window edges
        // and pending-release traffic.
        let cfg = ExecConfig { threads: 3, window: 1, decode_shards: 3, ..ExecConfig::default() };
        let report = Executor::new(cfg).run(&diamond()).expect("tiny-window replay failed");
        assert!(report.validated);
        assert_eq!(report.order[0], 0);
        assert_eq!(report.order[3], 3);
    }

    #[test]
    fn streaming_rename_stats_match_oneshot() {
        let tr = diamond();
        let oneshot = Renamer::new().decode(&tr);
        let cfg = ExecConfig { threads: 2, window: 2, decode_shards: 2, ..ExecConfig::default() };
        let report = Executor::new(cfg).run(&tr).expect("streaming replay failed");
        assert_eq!(&report.rename, oneshot.stats());
    }

    #[test]
    fn busy_frac_is_positive_for_working_workers() {
        // ISSUE 5 satellite regression: a worker that executed > 0
        // tasks on a non-trivial replay must report busy_frac > 0. The
        // old per-payload accounting skipped noop entirely, so the
        // default BENCH_exec.json printed 0.0000 for a worker that
        // executed every task.
        let mut tr = TaskTrace::new("busy");
        let k = tr.add_kernel("k");
        for i in 0..400u64 {
            tr.push_task(k, 10, vec![OperandDesc::output(0x1000 + i * 64, 64)]);
        }
        for threads in [1, 2] {
            let exec = Executor::new(ExecConfig { threads, ..ExecConfig::default() });
            let report = exec.run_oneshot(&tr).expect("busy replay failed");
            assert!(report.workers.iter().any(|w| w.executed > 0));
            for (w, ws) in report.workers.iter().enumerate() {
                if ws.executed > 0 {
                    assert!(ws.busy > Duration::ZERO, "worker {w} executed, busy stayed zero");
                    assert!(
                        report.utilization(w) > 0.0,
                        "worker {w} executed {} tasks with busy_frac 0",
                        ws.executed
                    );
                }
            }
        }
    }

    #[test]
    fn report_rates_are_sane() {
        let report = run_trace(&diamond(), 2).expect("diamond replay failed");
        assert!(report.tasks_per_sec() > 0.0);
        assert!(report.utilization(0) >= 0.0);
        assert!((0.0..=100.0).contains(&report.decode_overlap_pct));
        assert_eq!(report.total_steals(), report.workers.iter().map(|w| w.steals).sum::<u64>());
    }

    // -----------------------------------------------------------------
    // Failure domain (DESIGN.md §11)
    // -----------------------------------------------------------------

    use crate::fault::{fault_decision, install_quiet_hook};

    /// The diamond plus an independent task 4 (survives any quarantine
    /// of the diamond).
    fn diamond_plus_loner() -> TaskTrace {
        let mut tr = diamond();
        let k = tr.add_kernel("loner");
        tr.push_task(k, 10, vec![OperandDesc::output(0xD, 64)]);
        tr
    }

    /// A seed where, at `rate` ppm, task 0 faults on attempt 1, is clean
    /// on attempt 2, and tasks `1..n` are clean on attempt 1 — found by
    /// scanning the pure `fault_decision` hash, so it is deterministic
    /// and survives any trace change.
    fn seed_failing_only_task0(rate: u32, n: u32) -> u64 {
        (0..10_000u64)
            .find(|&s| {
                fault_decision(s, 0, 1, rate).is_some()
                    && fault_decision(s, 0, 2, rate).is_none()
                    && (1..n).all(|t| fault_decision(s, t, 1, rate).is_none())
            })
            .expect("no qualifying seed in 10k")
    }

    fn chaos_cfg(rate_ppm: u32, seed: u64, policy: FailurePolicy) -> ExecConfig {
        ExecConfig {
            threads: 2,
            payload: PayloadMode::Faulty { rate_ppm, seed },
            policy,
            ..ExecConfig::default()
        }
    }

    #[test]
    fn fail_fast_surfaces_the_injected_panic_as_an_error() {
        install_quiet_hook();
        let cfg = chaos_cfg(1_000_000, 7, FailurePolicy::FailFast);
        match Executor::new(cfg).run(&diamond()) {
            Err(ExecError::TaskFailed(f)) => {
                assert_eq!(f.task, 0, "only the root was ever ready");
                assert_eq!(f.attempts, 1);
                match f.failure {
                    TaskFailure::Panicked { ref message } => {
                        assert!(message.contains(INJECTED_PANIC_MARKER), "message: {message}")
                    }
                    ref other => panic!("expected an injected panic, got {other}"),
                }
            }
            other => panic!("expected TaskFailed, got {other:?}"),
        }
    }

    #[test]
    fn quarantine_poisons_exactly_the_successor_cone() {
        install_quiet_hook();
        let rate = 500_000;
        let seed = seed_failing_only_task0(rate, 5);
        let tr = diamond_plus_loner();
        for threads in [1, 2, 4] {
            for streaming in [true, false] {
                let cfg =
                    ExecConfig { threads, ..chaos_cfg(rate, seed, FailurePolicy::Quarantine) };
                let exec = Executor::new(cfg);
                let report = if streaming { exec.run(&tr) } else { exec.run_oneshot(&tr) }
                    .expect("quarantine run aborted");
                assert_eq!(report.fault.failed.len(), 1);
                assert_eq!(report.fault.failed[0].task, 0);
                assert_eq!(report.fault.poisoned, vec![1, 2, 3], "cone mismatch");
                assert_eq!(report.completed(), 1, "the loner still runs");
                assert!(report.fault.retry_hist.is_empty());
                assert!(report.accounting_reconciles());
                assert!(report.validated, "full log (incl. poisoned) passed the oracle");
            }
        }
    }

    #[test]
    fn retry_turns_a_transient_fault_into_success() {
        install_quiet_hook();
        let rate = 500_000;
        let seed = seed_failing_only_task0(rate, 5);
        let policy = FailurePolicy::Retry { max_attempts: 3, backoff: Duration::ZERO };
        let report = Executor::new(chaos_cfg(rate, seed, policy))
            .run(&diamond_plus_loner())
            .expect("retry run aborted");
        assert!(report.fault.failed.is_empty());
        assert!(report.fault.poisoned.is_empty());
        assert_eq!(report.fault.retried_ok, 1);
        assert_eq!(report.completed(), 5);
        assert_eq!(report.completed_clean(), 4);
        assert_eq!(report.fault.retry_hist, vec![4, 1, 0]);
        assert!(report.accounting_reconciles());
    }

    #[test]
    fn retry_exhaustion_fails_the_task_and_poisons_its_cone() {
        install_quiet_hook();
        let policy = FailurePolicy::Retry { max_attempts: 2, backoff: Duration::ZERO };
        let report = Executor::new(chaos_cfg(1_000_000, 3, policy))
            .run(&diamond())
            .expect("retry run aborted");
        assert_eq!(report.fault.failed.len(), 1, "poisoned tasks consume no attempts");
        assert_eq!(report.fault.failed[0].task, 0);
        assert_eq!(report.fault.failed[0].attempts, 2);
        assert_eq!(report.fault.poisoned, vec![1, 2, 3]);
        assert_eq!(report.completed(), 0);
        assert_eq!(report.fault.retry_hist, vec![0, 1]);
        assert!(report.accounting_reconciles());
    }

    #[test]
    fn killed_worker_deque_is_adopted_and_the_run_completes() {
        let mut tr = TaskTrace::new("kill");
        let k = tr.add_kernel("k");
        for i in 0..400u64 {
            tr.push_task(k, 3200, vec![OperandDesc::output(0x1000 + i * 64, 64)]);
            // 1 µs
        }
        for streaming in [true, false] {
            // The kill fires after the victim's first *completed* task;
            // on a fast host the other workers can occasionally drain
            // everything before worker 1 ever runs one, so retry the
            // run until the kill landed (the spin payload makes the
            // first try overwhelmingly likely).
            let mut fired = false;
            for _ in 0..16 {
                let cfg = ExecConfig {
                    threads: 2,
                    kill_worker: Some(1),
                    payload: PayloadMode::Spin { time_scale: 1.0 },
                    ..ExecConfig::default()
                };
                let exec = Executor::new(cfg);
                let report = if streaming { exec.run(&tr) } else { exec.run_oneshot(&tr) }
                    .expect("degraded run failed");
                assert_eq!(report.completed(), 400, "run lost tasks");
                assert!(report.accounting_reconciles());
                if report.fault.workers_lost == 1 {
                    fired = true;
                    break;
                }
            }
            assert!(fired, "injected kill never fired in 16 runs (streaming={streaming})");
        }
    }

    #[test]
    #[should_panic(expected = "kill_worker")]
    fn kill_worker_requires_a_second_worker() {
        let _ =
            Executor::new(ExecConfig { threads: 1, kill_worker: Some(0), ..ExecConfig::default() });
    }

    #[test]
    fn task_deadline_cancels_a_stuck_payload() {
        let mut tr = TaskTrace::new("stuck");
        let k = tr.add_kernel("k");
        tr.push_task(k, 32_000_000_000, vec![]); // 10 s at 3.2 GHz
        let cfg = ExecConfig {
            threads: 2,
            payload: PayloadMode::Spin { time_scale: 1.0 },
            policy: FailurePolicy::Quarantine,
            task_deadline: Some(Duration::from_millis(20)),
            ..ExecConfig::default()
        };
        let report = Executor::new(cfg).run(&tr).expect("deadline run aborted");
        assert_eq!(report.fault.failed.len(), 1);
        assert_eq!(report.fault.failed[0].failure, TaskFailure::Deadline);
        assert_eq!(report.completed(), 0);
        assert!(report.accounting_reconciles());
    }

    #[test]
    fn run_deadline_aborts_a_long_run() {
        let mut tr = TaskTrace::new("slow");
        let k = tr.add_kernel("k");
        for _ in 0..64 {
            tr.push_task(k, 3_200_000_000, vec![]); // 1 s each at 3.2 GHz
        }
        let cfg = ExecConfig {
            threads: 2,
            payload: PayloadMode::Spin { time_scale: 1.0 },
            run_deadline: Some(Duration::from_millis(30)),
            ..ExecConfig::default()
        };
        match Executor::new(cfg).run(&tr) {
            Err(ExecError::RunDeadline { tasks, completed, .. }) => {
                assert_eq!(tasks, 64);
                assert!(completed < 64);
            }
            other => panic!("expected RunDeadline, got {other:?}"),
        }
    }

    #[test]
    fn cancel_token_aborts_a_long_run() {
        let mut tr = TaskTrace::new("cancellable");
        let k = tr.add_kernel("k");
        for _ in 0..64 {
            tr.push_task(k, 3_200_000_000, vec![]); // 1 s each at 3.2 GHz
        }
        let token = CancelToken::new();
        let cfg = ExecConfig {
            threads: 2,
            payload: PayloadMode::Spin { time_scale: 1.0 },
            cancel: Some(token.clone()),
            ..ExecConfig::default()
        };
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                token.cancel();
            })
        };
        match Executor::new(cfg).run(&tr) {
            Err(ExecError::Cancelled { tasks, completed }) => {
                assert_eq!(tasks, 64);
                assert!(completed < 64);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        canceller.join().expect("canceller thread");
        assert!(token.is_cancelled());
    }

    #[test]
    fn unfired_cancel_token_changes_nothing() {
        let tr = diamond_plus_loner();
        let token = CancelToken::new();
        let cfg = ExecConfig { threads: 2, cancel: Some(token.clone()), ..ExecConfig::default() };
        let report = Executor::new(cfg).run(&tr).expect("armed-but-unfired run failed");
        assert_eq!(report.completed(), tr.len());
        assert!(!token.is_cancelled());
    }

    #[test]
    fn faulty_single_worker_failure_sets_are_seed_deterministic() {
        install_quiet_hook();
        let tr = diamond_plus_loner();
        let collect = |seed: u64| {
            let cfg =
                ExecConfig { threads: 1, ..chaos_cfg(250_000, seed, FailurePolicy::Quarantine) };
            let r = Executor::new(cfg).run(&tr).expect("chaos run aborted");
            (r.fault.failed.clone(), r.fault.poisoned.clone())
        };
        for seed in 0..32u64 {
            assert_eq!(collect(seed), collect(seed), "seed {seed} not reproducible");
        }
    }
}

/// Model-checked interleaving tests for the parker (DESIGN.md §10.3).
/// Compiled only under `RUSTFLAGS="--cfg tss_model_check"`.
#[cfg(all(test, tss_model_check))]
mod model_tests {
    use super::*;
    use shuttle::thread;
    use std::sync::Arc;

    /// The park/wake handoff: a worker that sees no work parks against
    /// an epoch snapshot; a producer publishes work and bumps the
    /// epoch. In every interleaving (exhaustive) the worker terminates
    /// having observed the work — the epoch protocol closes the classic
    /// lost-wakeup window (wake landing between the worker's scan and
    /// its sleep). A lost wakeup here shows up as a model-detected
    /// deadlock, not a hang.
    #[test]
    fn model_parker_handoff_never_loses_the_wake() {
        let report = shuttle::check_exhaustive(300_000, || {
            let parker = Arc::new(Parker::new());
            let work = Arc::new(AtomicU32::new(0));
            let (p2, w2) = (parker.clone(), work.clone());
            let worker = thread::spawn(move || {
                // The real worker loop shape: snapshot epoch, scan,
                // park only if the scan came up empty.
                loop {
                    let seen = p2.current_epoch();
                    if w2.load(Ordering::SeqCst) == 1 {
                        break;
                    }
                    p2.park(seen, || false);
                }
            });
            work.store(1, Ordering::SeqCst);
            parker.wake_one();
            worker.join().unwrap();
            assert_eq!(work.load(Ordering::SeqCst), 1);
        });
        assert!(report.complete, "budget too small: {} schedules", report.schedules);
    }

    /// `wake_all` reaches both parked workers (the window-commit path):
    /// no schedule leaves a worker asleep once the producer has bumped
    /// the epoch.
    #[test]
    fn model_parker_wake_all_reaches_every_worker() {
        shuttle::check_pct(0xAB5E_1200, 400, 3, || {
            let parker = Arc::new(Parker::new());
            let work = Arc::new(AtomicU32::new(0));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let (p2, w2) = (parker.clone(), work.clone());
                    thread::spawn(move || loop {
                        let seen = p2.current_epoch();
                        if w2.load(Ordering::SeqCst) == 1 {
                            break;
                        }
                        p2.park(seen, || false);
                    })
                })
                .collect();
            work.store(1, Ordering::SeqCst);
            parker.wake_all();
            for w in workers {
                w.join().unwrap();
            }
        });
    }

    /// The §11 poison-publish handshake: a failing producer stores its
    /// FAILED status byte and closes its pending list
    /// (`poison_release`) while a window committer races to register an
    /// edge from it (`register_edge`). In every interleaving the
    /// successor ends up POISONED — either the producer's drain marks
    /// it (edge registered in time) or the committer observes the
    /// CLOSED head *and* the FAILED byte behind it
    /// (`EdgeFate::SatisfiedPoisoned`). The release half of the
    /// `POISON_PUBLISH` swap is what carries the byte across the second
    /// path: `--cfg tss_bug_poison_relaxed` weakens exactly that swap
    /// and this test fails — without the release edge the committer's
    /// `Acquire` head loads are never forced past the stale head (the
    /// model flags the retry loop as a livelock), and a schedule that
    /// does observe CLOSED may still read a stale HEALTHY byte behind
    /// it. The CI negative gate proves the model keeps catching it.
    #[test]
    fn model_poison_publish_reaches_the_committer() {
        let report = shuttle::check_exhaustive(300_000, || {
            let sr = Arc::new(StreamRelease::new(2, 4));
            let status: Arc<Vec<AtomicU8>> =
                Arc::new((0..2).map(|_| AtomicU8::new(HEALTHY)).collect());
            let (sr2, st2) = (sr.clone(), status.clone());
            let producer = thread::spawn(move || {
                // The resolve_failure shape: FAILED first, close second.
                st2[0].store(FAILED, Ordering::Relaxed);
                let mut ready = Vec::new();
                sr2.poison_release(0, &st2, &mut ready);
            });
            let fate = sr.register_edge(0, 0, 1, &status);
            producer.join().unwrap();
            match fate {
                EdgeFate::Registered => {
                    // The drain owned the edge: it must have poisoned
                    // the successor on its way through.
                    assert_eq!(
                        status[1].load(Ordering::Relaxed),
                        POISONED,
                        "drain missed a registered edge"
                    );
                }
                EdgeFate::SatisfiedPoisoned => {} // committer poisons s
                EdgeFate::SatisfiedHealthy => {
                    panic!("committer read a stale HEALTHY byte for a failed producer")
                }
            }
        });
        assert!(report.complete, "budget too small: {} schedules", report.schedules);
    }
}
