//! The execution core: real threads replaying a decoded task graph
//! out of order — now a *pipelined* core in which decode itself streams
//! concurrently with execution, the way the paper's distributed
//! ORT/OVT/TRS frontend feeds its backend without serializing it.
//!
//! Scheme (DESIGN.md §7 for the execution side, §8 for the streaming
//! protocol and memory orderings):
//!
//! - **Two run modes.** [`Executor::run`] streams: decode shard
//!   threads rename the trace window by window *while* workers execute
//!   already-committed windows (the decode cost overlaps execution —
//!   [`ExecReport::decode_overlap_pct`]). [`Executor::run_oneshot`]
//!   keeps PR 3's phases (decode fully, then replay) — it is the
//!   apples-to-apples replay-throughput measurement and the shape the
//!   microbenches time.
//! - **Lock-free scheduling.** Per-worker [`ChaseLev`] deques (owner
//!   LIFO, thief FIFO, batch stealing takes half) replace the mutexed
//!   ring; the one lock left on the task hot path is gone.
//! - **Readiness.** Every task carries an atomic counter. In one-shot
//!   mode it starts at the decoded producer count. In streaming mode it
//!   starts at a large sentinel `UNPUBLISHED`: producers that finish
//!   *before* their successor is even decoded simply decrement through
//!   the sentinel, and the window commit adds `pred_count − UNPUBLISHED`
//!   back — whichever atomic op lands the counter exactly on zero owns
//!   the push. Early release needs no blocking and no side lookups.
//! - **Pending-release lists.** A producer's successor set is not fully
//!   known until later windows decode. Each task owns a lock-free
//!   pending list (CAS-push by the window committer); completion swaps
//!   the head with `CLOSED` and drains. A committer that observes
//!   `CLOSED` knows the producer already completed and drained, and
//!   counts the edge as satisfied itself — the exactly-once handshake
//!   (§8).
//! - **Parking without storms.** Workers park on a condvar epoch, but
//!   wakes are throttled: a completion wakes one thief only when it
//!   banked *surplus* ready tasks (≥ 2), a window commit wakes
//!   everyone once per window, and the final completion wakes everyone
//!   once. PR 3 notified on every completion that released anything —
//!   on an oversubscribed host that was a futex storm dominating the
//!   replay.
//! - **Completion tickets** are taken *before* successor release, so
//!   the ticket sequence is a linearization of the dependency order by
//!   construction; [`DepGraph::validate_order`] checks it on every
//!   validated run. The ticket counter doubles as the termination
//!   count: ticket `n−1` means every task has executed.
//!
//! With one worker there is no stealing and no ticket race. For a
//! *two-phase* replay ([`Executor::run_oneshot`]) the order is then a
//! pure function of the queue discipline (own deque LIFO over injector
//! FIFO, batch banking preserves root order) — bit-deterministic, and
//! the determinism tests pin it. A *streamed* 1-worker run is oracle-
//! deterministic only: whether a task arrives via the injector or via
//! a producer's pending list is the decode-vs-execution race itself
//! (`tests/streaming.rs` pins that contract).

use crate::sync::atomic::{AtomicI32, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::deque::{ChaseLev, BATCH_MAX};
use crate::payload::{build_arena, PayloadMode, PayloadScratch};
use crate::renamer::{merge_window, RenameStats, Renamer, ShardState, TaskGraph};
use tss_sim::{CachePadded, Cycle};
use tss_trace::{OrderViolation, TaskId, TaskTrace};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker thread count (≥ 1).
    pub threads: usize,
    /// What each task execution does.
    pub payload: PayloadMode,
    /// Operand renaming in the frontend (off = WaR/WaW enforced too).
    pub renaming: bool,
    /// Seeds the per-worker steal-victim rotation.
    pub seed: u64,
    /// Check the completion log against the `DepGraph` oracle after the
    /// run (on by default; a violating run panics — it is an executor
    /// bug, never a workload property).
    pub validate: bool,
    /// Streaming decode window: tasks committed to the executor per
    /// batch (≥ 1). Smaller windows overlap sooner but commit more
    /// often.
    pub window: usize,
    /// Decode shard threads for streaming runs (≥ 1): address interning
    /// is hash-partitioned this many ways and each shard renames its
    /// partition on its own thread (the distributed-ORT analogy).
    pub decode_shards: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: 4,
            payload: PayloadMode::Noop,
            renaming: true,
            seed: 1,
            validate: true,
            window: 1024,
            decode_shards: 1,
        }
    }
}

/// Per-worker counters. Each worker accumulates its own copy on its own
/// stack (the strongest form of false-sharing avoidance — nothing is
/// shared until the join) and hands it back when the scope ends.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Tasks this worker executed.
    pub executed: u64,
    /// Steal *events* (a batch steal of k tasks counts once).
    pub steals: u64,
    /// Wall time spent executing tasks, measured per work *burst* (the
    /// span from acquiring work to going idle), not per task: noop
    /// payloads pay two clock reads per burst instead of two per task,
    /// so `noop` throughput still measures scheduling, yet `busy_frac`
    /// is real for every payload (the ISSUE 5 regression was `busy`
    /// never accumulating on noop runs, printing 0.0000 for a worker
    /// that executed every task).
    pub busy: Duration,
}

/// Everything measured in one native replay.
#[derive(Debug, Clone)]
pub struct ExecReport {
    /// Benchmark name (from the trace).
    pub benchmark: String,
    /// Tasks replayed.
    pub tasks: usize,
    /// Worker threads.
    pub threads: usize,
    /// Payload mode.
    pub payload: PayloadMode,
    /// Decode span. One-shot runs: the serial decode phase. Streaming
    /// runs: from thread start to the last window commit — a *span*
    /// that shares the host with execution, not a pure-work figure.
    pub decode_wall: Duration,
    /// Replay span. One-shot runs: the threaded replay, decode
    /// excluded. Streaming runs: the whole pipelined run — decode
    /// happens *inside* this span, which is the point.
    pub exec_wall: Duration,
    /// Share (percent) of `exec_wall` during which decode was still
    /// streaming. Zero for one-shot runs (decode is a serial phase
    /// before the replay); near 100 means the frontend streamed for the
    /// whole run and was never a standalone latency.
    pub decode_overlap_pct: f64,
    /// Whether this run streamed decode into execution.
    pub streaming: bool,
    /// Decode shard threads used (1 for one-shot runs).
    pub decode_shards: usize,
    /// The completion log: task ids in global completion-ticket order.
    pub order: Vec<TaskId>,
    /// Per-worker counters, indexed by worker id.
    pub workers: Vec<WorkerStats>,
    /// Renamer decode statistics.
    pub rename: RenameStats,
    /// Whether the completion log was checked against the oracle.
    pub validated: bool,
}

impl ExecReport {
    /// Decode throughput in nanoseconds per task (the native number the
    /// paper's ~700 ns/task software-decoder ceiling is compared to).
    /// For streaming runs this is a span over a shared host — see
    /// [`ExecReport::decode_wall`].
    pub fn decode_ns_per_task(&self) -> f64 {
        if self.tasks == 0 {
            return 0.0;
        }
        self.decode_wall.as_nanos() as f64 / self.tasks as f64
    }

    /// Replay throughput in tasks per second (for streaming runs this
    /// is end-to-end: decode is inside the denominator).
    pub fn tasks_per_sec(&self) -> f64 {
        let s = self.exec_wall.as_secs_f64();
        if s > 0.0 {
            self.tasks as f64 / s
        } else {
            0.0
        }
    }

    /// Total steal events across workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// A worker's busy fraction of the replay wall time (burst-timed;
    /// see [`WorkerStats::busy`]).
    pub fn utilization(&self, worker: usize) -> f64 {
        let wall = self.exec_wall.as_secs_f64();
        if wall > 0.0 {
            self.workers[worker].busy.as_secs_f64() / wall
        } else {
            0.0
        }
    }
}

// ---------------------------------------------------------------------
// Parker
// ---------------------------------------------------------------------

/// Condvar epoch for idle-worker parking. A worker reads the epoch
/// *before* scanning for work and only sleeps if the epoch is unchanged
/// since — any wake between its read and its sleep is therefore
/// observed (the epoch moved) and the sleep aborts. The epoch ops are
/// `SeqCst`: the worker's *read epoch → scan queues* and a producer's
/// *push work → bump epoch* form the classic store-load (Dekker)
/// pattern, which weaker orderings do not close (§8). The mutex and
/// condvar are touched only when someone actually parks or wakes.
struct Parker {
    epoch: CachePadded<AtomicU64>,
    idle: CachePadded<AtomicUsize>,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Parker {
    fn new() -> Self {
        Parker {
            epoch: CachePadded::new(AtomicU64::new(0)),
            idle: CachePadded::new(AtomicUsize::new(0)),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    #[inline]
    fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Whether any worker is parked (a hint for wake throttling; a
    /// missed hint delays a thief until the next wake, it never loses
    /// work — the producer itself still holds the tasks).
    #[inline]
    fn has_idle(&self) -> bool {
        self.idle.load(Ordering::Relaxed) > 0
    }

    /// Wakes one parked worker (throttled wake: surplus in one deque
    /// needs one thief, not a stampede).
    fn wake_one(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        let _g = self.lock.lock().expect("parker poisoned");
        self.cv.notify_one();
    }

    /// Wakes all parked workers (window commits, termination).
    fn wake_all(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        // Taking the lock orders the bump against a parker that has
        // checked the epoch but not yet entered `wait` (it holds the
        // lock across that window), so the notify cannot land in the
        // gap.
        let _g = self.lock.lock().expect("parker poisoned");
        self.cv.notify_all();
    }

    /// Parks until the epoch moves past `seen` or `done` returns true.
    fn park(&self, seen: u64, done: impl Fn() -> bool) {
        self.idle.fetch_add(1, Ordering::SeqCst);
        let mut g = self.lock.lock().expect("parker poisoned");
        while self.epoch.load(Ordering::SeqCst) == seen && !done() {
            g = self.cv.wait(g).expect("parker poisoned");
        }
        drop(g);
        self.idle.fetch_sub(1, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------
// Release modes (how a completion finds its successors)
// ---------------------------------------------------------------------

/// How a completed task's successors are found and counted down. Two
/// implementations, one worker loop: the hot path is monomorphized per
/// mode, never dynamically dispatched.
trait ReleaseSuccs: Sync {
    /// Called exactly once per completed task `t`; appends every task
    /// made ready by this completion to `ready`.
    fn release(&self, t: u32, ready: &mut Vec<u32>);
}

/// One-shot mode: the successor CSR is fully decoded up front and the
/// counters start at the exact producer count.
struct PrebuiltRelease<'a> {
    graph: &'a TaskGraph,
    unready: Vec<AtomicI32>,
}

impl<'a> PrebuiltRelease<'a> {
    fn new(graph: &'a TaskGraph) -> Self {
        let unready =
            (0..graph.len()).map(|t| AtomicI32::new(graph.pred_count(t) as i32)).collect();
        PrebuiltRelease { graph, unready }
    }
}

impl ReleaseSuccs for PrebuiltRelease<'_> {
    #[inline]
    fn release(&self, t: u32, ready: &mut Vec<u32>) {
        for &s in self.graph.succs(t as TaskId) {
            // AcqRel: release our payload writes to the successor's
            // executor, acquire the other producers' on the 1 → 0 edge.
            if self.unready[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                ready.push(s);
            }
        }
    }
}

/// Streaming mode sentinels (pending-list heads).
const PENDING_NIL: u32 = u32::MAX;
const PENDING_CLOSED: u32 = u32::MAX - 1;

/// Streaming mode readiness sentinel: a counter at `UNPUBLISHED − k`
/// means "not yet decoded, k producers already finished". Must exceed
/// any real producer count; `1 << 30` towers over the ≤ `3 ×
/// operands` edge bound.
const UNPUBLISHED: i32 = 1 << 30;

/// Streaming mode: successor sets grow as later windows decode, so each
/// task owns a lock-free pending-release list; counters start at the
/// [`UNPUBLISHED`] sentinel and are reconciled by the window commit.
struct StreamRelease {
    unready: Vec<AtomicI32>,
    /// Pending-list heads: `PENDING_NIL` empty, `PENDING_CLOSED` after
    /// the owner completed and drained, else a `nodes` index.
    pending: Vec<AtomicU32>,
    /// Node slab: `(next << 32) | succ`, bump-allocated by the window
    /// committer (the commit lock serializes allocation), capacity
    /// fixed at the `3 × operands` edge bound so nodes never move.
    nodes: Vec<AtomicU64>,
}

impl StreamRelease {
    fn new(n: usize, edge_cap: usize) -> Self {
        StreamRelease {
            unready: (0..n).map(|_| AtomicI32::new(UNPUBLISHED)).collect(),
            pending: (0..n).map(|_| AtomicU32::new(PENDING_NIL)).collect(),
            nodes: (0..edge_cap).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline]
    fn countdown(&self, s: u32, ready: &mut Vec<u32>) {
        if self.unready[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
            ready.push(s);
        }
    }
}

impl ReleaseSuccs for StreamRelease {
    #[inline]
    fn release(&self, t: u32, ready: &mut Vec<u32>) {
        // Close the list: every edge registered up to now is drained
        // here; every edge registered after sees CLOSED and counts
        // itself satisfied at the commit (§8 exactly-once handshake).
        let mut head = self.pending[t as usize].swap(PENDING_CLOSED, Ordering::AcqRel);
        while head != PENDING_NIL {
            let node = self.nodes[head as usize].load(Ordering::Relaxed);
            self.countdown(node as u32, ready);
            head = (node >> 32) as u32;
        }
    }
}

// ---------------------------------------------------------------------
// Shared replay state
// ---------------------------------------------------------------------

/// Shared replay state (borrowed by every worker via a scoped spawn).
struct Shared<'a, R: ReleaseSuccs> {
    mode: R,
    trace: &'a TaskTrace,
    /// Traced runtimes as a dense SoA column (only populated for spin
    /// payloads): the readiness/dispatch hot path must not drag each
    /// task's whole `TaskDesc` (operand `Vec` header included) through
    /// the cache for one u64.
    runtimes: Vec<Cycle>,
    n: usize,
    /// Completion tickets: `order[k]` is the k-th task to complete.
    order: Vec<AtomicU32>,
    /// Ticket source *and* termination counter: ticket `n − 1` implies
    /// every task has executed.
    next_ticket: CachePadded<AtomicUsize>,
    deques: Vec<ChaseLev>,
    injector: ChaseLev,
    parker: Parker,
    payload: PayloadMode,
}

impl<R: ReleaseSuccs> Shared<'_, R> {
    fn new_for(trace: &TaskTrace, mode: R, threads: usize, payload: PayloadMode) -> Shared<'_, R> {
        let n = trace.len();
        let runtimes = if matches!(payload, PayloadMode::Spin { .. }) {
            trace.iter().map(|t| t.runtime).collect()
        } else {
            Vec::new()
        };
        Shared {
            mode,
            trace,
            runtimes,
            n,
            order: (0..n).map(|_| AtomicU32::new(u32::MAX)).collect(),
            next_ticket: CachePadded::new(AtomicUsize::new(0)),
            deques: (0..threads).map(|_| ChaseLev::with_capacity(256)).collect(),
            injector: ChaseLev::with_capacity(1024),
            parker: Parker::new(),
            payload,
        }
    }

    #[inline]
    fn done(&self) -> bool {
        self.next_ticket.load(Ordering::Acquire) >= self.n
    }
}

/// Tiny SplitMix64 for the steal-victim rotation.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn run_task<R: ReleaseSuccs>(
    t: u32,
    w: usize,
    shared: &Shared<'_, R>,
    scratch: &mut PayloadScratch<'_>,
    stats: &mut WorkerStats,
    ready: &mut Vec<u32>,
) {
    match shared.payload {
        // No per-task clock reads on any path: busy time is accumulated
        // per burst by `worker_loop`, so noop runs still measure pure
        // decode + scheduling throughput.
        PayloadMode::Noop => {}
        PayloadMode::Spin { time_scale } => {
            scratch.run_spin(shared.runtimes[t as usize], time_scale);
        }
        PayloadMode::Memcpy => {
            scratch.run_memcpy(shared.trace.task(t as TaskId));
        }
    }
    stats.executed += 1;

    // Ticket first, successor release second: any successor's ticket is
    // therefore strictly after every producer's (valid linearization).
    // Relaxed suffices: tickets on one counter are totally ordered, and
    // producer-before-successor follows from the release/acquire edge
    // on the readiness counter (§8).
    let ticket = shared.next_ticket.fetch_add(1, Ordering::AcqRel);
    shared.order[ticket].store(t, Ordering::Relaxed);

    ready.clear();
    shared.mode.release(t, ready);
    for &s in ready.iter() {
        shared.deques[w].push(s);
    }
    if ticket + 1 == shared.n {
        // Final completion: unconditionally flush every parked worker
        // into their done() check.
        shared.parker.wake_all();
    } else if ready.len() >= 2 && shared.parker.has_idle() {
        // Surplus banked beyond what this worker immediately runs: one
        // thief's worth of news, one wake — not PR 3's per-completion
        // notify_all storm.
        shared.parker.wake_one();
    }
}

fn worker_loop<R: ReleaseSuccs>(
    w: usize,
    shared: &Shared<'_, R>,
    arena: &[u8],
    seed: u64,
) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut scratch = PayloadScratch::new(arena);
    let mut ready: Vec<u32> = Vec::with_capacity(64);
    let mut rng = seed ^ (w as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    let me = &shared.deques[w];
    let others: Vec<usize> = (0..shared.deques.len()).filter(|&v| v != w).collect();

    loop {
        // Fast path: drain the own deque depth-first. No epoch or done
        // loads per task — those belong to the idle path. The burst is
        // clocked as one span: two clock reads however many tasks drain.
        if let Some(t) = me.pop() {
            let burst = Instant::now();
            run_task(t, w, shared, &mut scratch, &mut stats, &mut ready);
            while let Some(t) = me.pop() {
                run_task(t, w, shared, &mut scratch, &mut stats, &mut ready);
            }
            stats.busy += burst.elapsed();
        }
        if shared.done() {
            break;
        }
        // Epoch before the scans: any push after a failed scan moves
        // the epoch and aborts the park (§8 Dekker pairing).
        let epoch = shared.parker.current_epoch();
        let task = shared.injector.steal_batch_into(me, BATCH_MAX).or_else(|| {
            if others.is_empty() {
                return None;
            }
            let start = (splitmix(&mut rng) as usize) % others.len();
            (0..others.len()).find_map(|i| {
                let victim = others[(start + i) % others.len()];
                let t = shared.deques[victim].steal_batch_into(me, BATCH_MAX);
                if t.is_some() {
                    stats.steals += 1;
                }
                t
            })
        });
        match task {
            Some(t) => {
                // A successful batch steal banked surplus: chain one
                // wake so other idle workers can re-balance too.
                if !me.is_empty() && shared.parker.has_idle() {
                    shared.parker.wake_one();
                }
                let burst = Instant::now();
                run_task(t, w, shared, &mut scratch, &mut stats, &mut ready);
                stats.busy += burst.elapsed();
            }
            None => {
                if shared.done() {
                    break;
                }
                shared.parker.park(epoch, || shared.done());
            }
        }
    }
    stats
}

// ---------------------------------------------------------------------
// Streaming decode plumbing
// ---------------------------------------------------------------------

/// One window × shard pair buffer: `(consumer, producer)` in scan
/// order.
type PairBuf = Vec<(u32, u32)>;

/// Decode-side shared state for a streaming run.
struct DecodeShared<'a> {
    trace: &'a TaskTrace,
    window: usize,
    windows: usize,
    shards: usize,
    /// `scan_done[w]`: shards that have finished scanning window `w`.
    scan_done: Vec<AtomicUsize>,
    /// `bufs[w][sh]`: window `w`'s `(consumer, producer)` pairs from
    /// shard `sh`. Mutex-guarded but uncontended by construction (the
    /// owning shard writes before its `scan_done` bump; the committer
    /// reads after observing all bumps) — the lock is an auditability
    /// choice on a per-window cold path.
    bufs: Vec<Vec<Mutex<PairBuf>>>,
    /// Serializes window commits and owns the committer-side cursors.
    commit: Mutex<CommitState>,
    /// Wall-clock anchor for [`ExecReport::decode_wall`].
    started: Instant,
    /// Nanoseconds from `started` to the last commit.
    decode_span_ns: AtomicU64,
}

struct CommitState {
    /// Next window to commit (windows commit strictly in order: that
    /// keeps injector pushes — and thus 1-worker replays —
    /// deterministic).
    next_window: usize,
    /// Bump cursor into the `StreamRelease` node slab.
    node_cursor: usize,
    /// Enforced (post-dedup) edges registered so far.
    edges: usize,
    scratch: Vec<u32>,
}

impl<'a> DecodeShared<'a> {
    fn new(trace: &'a TaskTrace, window: usize, shards: usize) -> Self {
        let n = trace.len();
        let windows = n.div_ceil(window.max(1));
        DecodeShared {
            trace,
            window,
            windows,
            shards,
            scan_done: (0..windows).map(|_| AtomicUsize::new(0)).collect(),
            bufs: (0..windows)
                .map(|_| (0..shards).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            commit: Mutex::new(CommitState {
                next_window: 0,
                node_cursor: 0,
                edges: 0,
                scratch: Vec::new(),
            }),
            started: Instant::now(),
            decode_span_ns: AtomicU64::new(0),
        }
    }

    /// Registers edge `p → s` (committer thread, under the commit
    /// lock). Returns `true` if `p` already completed — the edge is
    /// born satisfied.
    fn register_edge(&self, rel: &StreamRelease, node_idx: u32, p: u32, s: u32) -> bool {
        loop {
            let head = rel.pending[p as usize].load(Ordering::Acquire);
            if head == PENDING_CLOSED {
                // `p` completed and drained before this edge existed:
                // the committer owns the satisfaction (§8).
                return true;
            }
            rel.nodes[node_idx as usize].store(((head as u64) << 32) | s as u64, Ordering::Relaxed);
            if rel.pending[p as usize]
                .compare_exchange(head, node_idx, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return false;
            }
            // Lost to the drain swap (or another commit — impossible
            // under the commit lock): retry against the new head.
        }
    }

    /// Commits every consecutively-ready window starting at the commit
    /// cursor. Called by whichever shard thread finished a window last;
    /// the commit mutex makes the committer role migrate safely (the
    /// injector's owner contract rides the same lock).
    fn commit_ready(&self, shared: &Shared<'_, StreamRelease>) {
        let mut st = self.commit.lock().expect("commit state poisoned");
        let mut pushed_roots = false;
        while st.next_window < self.windows {
            let w = st.next_window;
            if self.scan_done[w].load(Ordering::Acquire) != self.shards {
                break;
            }
            let lo = w * self.window;
            let hi = ((w + 1) * self.window).min(self.trace.len());
            let views: Vec<PairBuf> = self.bufs[w]
                .iter()
                .map(|m| std::mem::take(&mut *m.lock().expect("window buffer poisoned")))
                .collect();
            let mut cursors = vec![0usize; self.shards];
            let mut scratch = std::mem::take(&mut st.scratch);
            let mut node_cursor = st.node_cursor;
            let mut edges = 0usize;
            merge_window(lo, hi, &views, &mut cursors, &mut scratch, |s, preds| {
                let mut satisfied = 0usize;
                for &p in preds {
                    let idx = node_cursor as u32;
                    node_cursor += 1;
                    if self.register_edge(&shared.mode, idx, p, s) {
                        satisfied += 1;
                        node_cursor -= 1; // node unused: reuse the slot
                    }
                }
                edges += preds.len();
                // Publish: fold the sentinel away. Whichever atomic op
                // lands the counter exactly on zero owns the push.
                let delta = preds.len() as i32 - satisfied as i32 - UNPUBLISHED;
                let old = shared.mode.unready[s as usize].fetch_add(delta, Ordering::AcqRel);
                if old + delta == 0 {
                    shared.injector.push(s);
                    pushed_roots = true;
                }
            });
            st.scratch = scratch;
            st.node_cursor = node_cursor;
            st.edges += edges;
            st.next_window = w + 1;
        }
        let finished = st.next_window == self.windows;
        drop(st);
        if finished {
            let ns = self.started.elapsed().as_nanos() as u64;
            self.decode_span_ns.fetch_max(ns, Ordering::Relaxed);
        }
        if pushed_roots {
            // One wake per commit, not per task: parked workers rescan
            // the injector and re-balance via batch steals.
            shared.parker.wake_all();
        }
    }
}

/// One decode shard thread: scan every window (in order — the shard's
/// rename state is sequential), commit whenever this shard is the last
/// to finish a window.
fn decode_loop(
    shard: usize,
    renaming: bool,
    dec: &DecodeShared<'_>,
    shared: &Shared<'_, StreamRelease>,
) -> RenameStats {
    let mut state = ShardState::new(renaming, shard as u32, dec.shards as u32);
    for w in 0..dec.windows {
        let lo = w * dec.window;
        let hi = ((w + 1) * dec.window).min(dec.trace.len());
        {
            let mut buf = dec.bufs[w][shard].lock().expect("window buffer poisoned");
            state.scan(dec.trace, lo, hi, &mut buf);
        }
        if dec.scan_done[w].fetch_add(1, Ordering::AcqRel) + 1 == dec.shards {
            dec.commit_ready(shared);
        }
    }
    *state.stats()
}

// ---------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------

/// The native out-of-order task executor.
///
/// ```
/// use tss_exec::{ExecConfig, Executor};
/// use tss_workloads::{Benchmark, Scale};
///
/// let trace = Benchmark::Cholesky.trace(Scale::Small, 1);
/// let report = Executor::new(ExecConfig { threads: 2, ..ExecConfig::default() }).run(&trace);
/// assert_eq!(report.tasks, trace.len());
/// assert!(report.validated);
/// assert!(report.streaming);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Executor {
    config: ExecConfig,
}

impl Executor {
    /// An executor with the given configuration (`window` and
    /// `decode_shards` are clamped to ≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `config.threads` is zero.
    pub fn new(mut config: ExecConfig) -> Self {
        assert!(config.threads >= 1, "the executor needs at least one worker");
        config.window = config.window.max(1);
        config.decode_shards = config.decode_shards.max(1);
        Executor { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Streams `trace` through the pipelined core: decode shard threads
    /// rename window by window while workers already execute committed
    /// windows.
    ///
    /// # Panics
    ///
    /// Panics if the replay deadlocks (cyclic trace — impossible for
    /// program-order decode), loses tasks, or (with validation on)
    /// emits a completion log violating the `DepGraph` oracle.
    pub fn run(&self, trace: &TaskTrace) -> ExecReport {
        let n = trace.len();
        let threads = self.config.threads;
        let shards = self.config.decode_shards;
        let total_ops: usize = trace.iter().map(|t| t.operands.len()).sum();
        // Pre-dedup pair bound: ≤ 1 RaW per read + 1 WaW per write +
        // readers cleared per write (≤ total reads) — see renamer.rs.
        let edge_cap = 3 * total_ops + 8;
        let shared =
            Shared::new_for(trace, StreamRelease::new(n, edge_cap), threads, self.config.payload);
        let arena = self.arena();
        // Constructed last: `dec.started` anchors the decode span, so
        // nothing non-decode (notably the memcpy arena build) may sit
        // between it and the run start.
        let dec = DecodeShared::new(trace, self.config.window, shards);

        let t0 = dec.started;
        let mut workers = vec![WorkerStats::default(); threads];
        let mut rename = RenameStats::default();
        if n > 0 {
            std::thread::scope(|scope| {
                let decoders: Vec<_> = (0..shards)
                    .map(|sh| {
                        let dec = &dec;
                        let shared = &shared;
                        let renaming = self.config.renaming;
                        scope.spawn(move || decode_loop(sh, renaming, dec, shared))
                    })
                    .collect();
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        let shared = &shared;
                        let arena = &arena[..];
                        let seed = self.config.seed;
                        scope.spawn(move || worker_loop(w, shared, arena, seed))
                    })
                    .collect();
                for d in decoders {
                    let stats = d.join().expect("decoder panicked");
                    rename.objects += stats.objects;
                    rename.tracked_operands += stats.tracked_operands;
                    rename.removed_by_renaming += stats.removed_by_renaming;
                }
                for (w, h) in handles.into_iter().enumerate() {
                    workers[w] = h.join().expect("worker panicked");
                }
            });
        }
        let exec_wall = t0.elapsed();
        rename.enforced_edges = dec.commit.lock().expect("commit state poisoned").edges;
        let decode_wall = Duration::from_nanos(dec.decode_span_ns.load(Ordering::Relaxed));
        let overlap = if exec_wall.as_secs_f64() > 0.0 {
            100.0 * decode_wall.as_secs_f64().min(exec_wall.as_secs_f64()) / exec_wall.as_secs_f64()
        } else {
            0.0
        };
        self.finish(trace, shared, decode_wall, exec_wall, overlap, true, workers, rename)
    }

    /// PR 3's two-phase shape: decode the whole trace first (timed as a
    /// pure serial phase), then replay it. This is the
    /// apples-to-apples *replay throughput* measurement — decode is
    /// excluded from `exec_wall` — and the fixed-graph shape the
    /// microbenches need.
    ///
    /// # Panics
    ///
    /// As [`Executor::run`].
    pub fn run_oneshot(&self, trace: &TaskTrace) -> ExecReport {
        let t0 = Instant::now();
        let graph = Renamer::new().renaming(self.config.renaming).decode(trace);
        let decode_wall = t0.elapsed();
        self.replay(trace, &graph, decode_wall)
    }

    /// Replays an already-decoded graph (one-shot mode without paying
    /// the decode: benchmark loops hoist it).
    ///
    /// # Panics
    ///
    /// As [`Executor::run`].
    pub fn replay(
        &self,
        trace: &TaskTrace,
        graph: &TaskGraph,
        decode_wall: Duration,
    ) -> ExecReport {
        assert_eq!(graph.len(), trace.len(), "graph decoded from a different trace");
        let threads = self.config.threads;
        let shared =
            Shared::new_for(trace, PrebuiltRelease::new(graph), threads, self.config.payload);
        for r in graph.roots() {
            shared.injector.push(r as u32);
        }
        let arena = self.arena();

        let t0 = Instant::now();
        let mut workers = vec![WorkerStats::default(); threads];
        if !graph.is_empty() {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|w| {
                        let shared = &shared;
                        let arena = &arena[..];
                        let seed = self.config.seed;
                        scope.spawn(move || worker_loop(w, shared, arena, seed))
                    })
                    .collect();
                for (w, h) in handles.into_iter().enumerate() {
                    workers[w] = h.join().expect("worker panicked");
                }
            });
        }
        let exec_wall = t0.elapsed();
        let rename = *graph.stats();
        self.finish(trace, shared, decode_wall, exec_wall, 0.0, false, workers, rename)
    }

    /// Only memcpy reads the source arena; noop/spin runs get a minimal
    /// zeroed one (building the 4 MB pattern would dominate short
    /// replays).
    fn arena(&self) -> Vec<u8> {
        match self.config.payload {
            PayloadMode::Memcpy => build_arena(),
            _ => vec![0u8; 2 * tss_workloads::payload::CHUNK_CAP],
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish<R: ReleaseSuccs>(
        &self,
        trace: &TaskTrace,
        shared: Shared<'_, R>,
        decode_wall: Duration,
        exec_wall: Duration,
        decode_overlap_pct: f64,
        streaming: bool,
        workers: Vec<WorkerStats>,
        rename: RenameStats,
    ) -> ExecReport {
        let order: Vec<TaskId> =
            shared.order.iter().map(|s| s.load(Ordering::Relaxed) as TaskId).collect();
        assert_eq!(order.len(), trace.len(), "executor lost tasks");
        let validated = self.config.validate;
        if validated {
            let oracle = trace.dep_graph();
            if let Err(v) = oracle.validate_order(&order) {
                panic!("native replay violates the dependency oracle: {v}");
            }
        }
        ExecReport {
            benchmark: trace.name().to_string(),
            tasks: trace.len(),
            threads: self.config.threads,
            payload: self.config.payload,
            decode_wall,
            exec_wall,
            decode_overlap_pct,
            streaming,
            decode_shards: if streaming { self.config.decode_shards } else { 1 },
            order,
            workers,
            rename,
            validated,
        }
    }
}

/// Convenience: stream with defaults, returning the report.
///
/// # Panics
///
/// As [`Executor::run`].
pub fn run_trace(trace: &TaskTrace, threads: usize) -> ExecReport {
    Executor::new(ExecConfig { threads, ..ExecConfig::default() }).run(trace)
}

/// Re-exported for harness use: classifies a completion log against an
/// oracle without panicking.
pub fn check_order(trace: &TaskTrace, order: &[TaskId]) -> Result<(), OrderViolation> {
    trace.dep_graph().validate_order(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::{OperandDesc, TaskTrace};

    fn diamond() -> TaskTrace {
        // 0 → {1, 2} → 3
        let mut tr = TaskTrace::new("diamond");
        let k = tr.add_kernel("k");
        tr.push_task(k, 10, vec![OperandDesc::output(0xA, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::input(0xA, 64), OperandDesc::output(0xB, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::input(0xA, 64), OperandDesc::output(0xC, 64)]);
        tr.push_task(k, 10, vec![OperandDesc::input(0xB, 64), OperandDesc::input(0xC, 64)]);
        tr
    }

    #[test]
    fn replays_a_diamond_in_dependency_order() {
        for threads in [1, 2, 4] {
            let report = run_trace(&diamond(), threads);
            assert_eq!(report.tasks, 4);
            assert_eq!(report.order[0], 0);
            assert_eq!(report.order[3], 3);
            assert!(report.validated);
            assert!(report.streaming);
            let executed: u64 = report.workers.iter().map(|w| w.executed).sum();
            assert_eq!(executed, 4);
        }
    }

    #[test]
    fn oneshot_replays_the_diamond_too() {
        let cfg = ExecConfig { threads: 2, ..ExecConfig::default() };
        let report = Executor::new(cfg).run_oneshot(&diamond());
        assert_eq!(report.tasks, 4);
        assert_eq!(report.order[0], 0);
        assert!(!report.streaming);
        assert_eq!(report.decode_overlap_pct, 0.0);
    }

    #[test]
    fn empty_trace_is_a_clean_noop() {
        for streaming in [true, false] {
            let exec = Executor::new(ExecConfig { threads: 2, ..ExecConfig::default() });
            let report = if streaming {
                exec.run(&TaskTrace::new("empty"))
            } else {
                exec.run_oneshot(&TaskTrace::new("empty"))
            };
            assert_eq!(report.tasks, 0);
            assert!(report.order.is_empty());
            assert_eq!(report.tasks_per_sec(), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Executor::new(ExecConfig { threads: 0, ..ExecConfig::default() });
    }

    #[test]
    fn independent_tasks_all_run() {
        let mut tr = TaskTrace::new("indep");
        let k = tr.add_kernel("k");
        for i in 0..200u64 {
            tr.push_task(k, 10, vec![OperandDesc::output(0x1000 + i * 64, 64)]);
        }
        let report = run_trace(&tr, 4);
        assert_eq!(report.tasks, 200);
        let mut seen = report.order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn no_renaming_serializes_a_waw_chain() {
        let mut tr = TaskTrace::new("waw");
        let k = tr.add_kernel("k");
        for _ in 0..8 {
            tr.push_task(k, 10, vec![OperandDesc::output(0xA, 64)]);
        }
        let cfg = ExecConfig { threads: 4, renaming: false, ..ExecConfig::default() };
        let report = Executor::new(cfg).run(&tr);
        // WaW enforced: completion order must be program order.
        assert_eq!(report.order, (0..8).collect::<Vec<_>>());
        assert_eq!(report.rename.removed_by_renaming, 0);
    }

    #[test]
    fn tiny_windows_and_many_shards_replay_validated() {
        // Window 1 with multiple shards maximizes cross-window edges
        // and pending-release traffic.
        let cfg = ExecConfig { threads: 3, window: 1, decode_shards: 3, ..ExecConfig::default() };
        let report = Executor::new(cfg).run(&diamond());
        assert!(report.validated);
        assert_eq!(report.order[0], 0);
        assert_eq!(report.order[3], 3);
    }

    #[test]
    fn streaming_rename_stats_match_oneshot() {
        let tr = diamond();
        let oneshot = Renamer::new().decode(&tr);
        let cfg = ExecConfig { threads: 2, window: 2, decode_shards: 2, ..ExecConfig::default() };
        let report = Executor::new(cfg).run(&tr);
        assert_eq!(&report.rename, oneshot.stats());
    }

    #[test]
    fn busy_frac_is_positive_for_working_workers() {
        // ISSUE 5 satellite regression: a worker that executed > 0
        // tasks on a non-trivial replay must report busy_frac > 0. The
        // old per-payload accounting skipped noop entirely, so the
        // default BENCH_exec.json printed 0.0000 for a worker that
        // executed every task.
        let mut tr = TaskTrace::new("busy");
        let k = tr.add_kernel("k");
        for i in 0..400u64 {
            tr.push_task(k, 10, vec![OperandDesc::output(0x1000 + i * 64, 64)]);
        }
        for threads in [1, 2] {
            let exec = Executor::new(ExecConfig { threads, ..ExecConfig::default() });
            let report = exec.run_oneshot(&tr);
            assert!(report.workers.iter().any(|w| w.executed > 0));
            for (w, ws) in report.workers.iter().enumerate() {
                if ws.executed > 0 {
                    assert!(ws.busy > Duration::ZERO, "worker {w} executed, busy stayed zero");
                    assert!(
                        report.utilization(w) > 0.0,
                        "worker {w} executed {} tasks with busy_frac 0",
                        ws.executed
                    );
                }
            }
        }
    }

    #[test]
    fn report_rates_are_sane() {
        let report = run_trace(&diamond(), 2);
        assert!(report.tasks_per_sec() > 0.0);
        assert!(report.utilization(0) >= 0.0);
        assert!((0.0..=100.0).contains(&report.decode_overlap_pct));
        assert_eq!(report.total_steals(), report.workers.iter().map(|w| w.steals).sum::<u64>());
    }
}

/// Model-checked interleaving tests for the parker (DESIGN.md §10.3).
/// Compiled only under `RUSTFLAGS="--cfg tss_model_check"`.
#[cfg(all(test, tss_model_check))]
mod model_tests {
    use super::*;
    use shuttle::thread;
    use std::sync::Arc;

    /// The park/wake handoff: a worker that sees no work parks against
    /// an epoch snapshot; a producer publishes work and bumps the
    /// epoch. In every interleaving (exhaustive) the worker terminates
    /// having observed the work — the epoch protocol closes the classic
    /// lost-wakeup window (wake landing between the worker's scan and
    /// its sleep). A lost wakeup here shows up as a model-detected
    /// deadlock, not a hang.
    #[test]
    fn model_parker_handoff_never_loses_the_wake() {
        let report = shuttle::check_exhaustive(300_000, || {
            let parker = Arc::new(Parker::new());
            let work = Arc::new(AtomicU32::new(0));
            let (p2, w2) = (parker.clone(), work.clone());
            let worker = thread::spawn(move || {
                // The real worker loop shape: snapshot epoch, scan,
                // park only if the scan came up empty.
                loop {
                    let seen = p2.current_epoch();
                    if w2.load(Ordering::SeqCst) == 1 {
                        break;
                    }
                    p2.park(seen, || false);
                }
            });
            work.store(1, Ordering::SeqCst);
            parker.wake_one();
            worker.join().unwrap();
            assert_eq!(work.load(Ordering::SeqCst), 1);
        });
        assert!(report.complete, "budget too small: {} schedules", report.schedules);
    }

    /// `wake_all` reaches both parked workers (the window-commit path):
    /// no schedule leaves a worker asleep once the producer has bumped
    /// the epoch.
    #[test]
    fn model_parker_wake_all_reaches_every_worker() {
        shuttle::check_pct(0xAB5E_1200, 400, 3, || {
            let parker = Arc::new(Parker::new());
            let work = Arc::new(AtomicU32::new(0));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let (p2, w2) = (parker.clone(), work.clone());
                    thread::spawn(move || loop {
                        let seen = p2.current_epoch();
                        if w2.load(Ordering::SeqCst) == 1 {
                            break;
                        }
                        p2.park(seen, || false);
                    })
                })
                .collect();
            work.store(1, Ordering::SeqCst);
            parker.wake_all();
            for w in workers {
                w.join().unwrap();
            }
        });
    }
}
