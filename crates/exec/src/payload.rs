//! Pluggable task payloads: what a worker actually does per task.
//!
//! The trace gives each task a measured runtime and an operand
//! footprint; three payloads interpret them (DESIGN.md §7):
//!
//! - [`PayloadMode::Noop`] — nothing per task: measures pure decode +
//!   scheduling throughput (the native analog of the paper's
//!   decode-rate ceiling study, Section II).
//! - [`PayloadMode::Spin`] — busy-wait for the task's traced runtime
//!   (cycles of the simulated 3.2 GHz clock → host nanoseconds),
//!   scaled by `time_scale`: honors the trace's load balance so
//!   speedup-vs-threads curves are meaningful.
//! - [`PayloadMode::Memcpy`] — move the task's (capped) operand
//!   footprint through worker-local buffers: exercises real memory
//!   traffic proportional to Table I's data sizes.
//!
//! Memcpy safety note: renaming means two in-flight tasks may "write
//! the same object" concurrently — that is the *point* of the OVT. A
//! shared mutable arena would therefore be a data race by design.
//! Instead each worker owns a scratch pair (shared read-only source
//! arena, private destination buffer): the traffic is real, the
//! aliasing is private, and the executor stays safe Rust.

use std::time::Duration;

use tss_obs::clock::Stamp;
use tss_sim::cycles_to_ns;
use tss_trace::TaskDesc;
use tss_workloads::payload::{operand_chunks, task_footprint, CHUNK_CAP};

use crate::sync::atomic::{AtomicU32, Ordering};

/// Default injection rate for the bare `faulty` payload name: 5% in
/// parts-per-million, matching the chaos smoke configuration.
pub const DEFAULT_FAULT_RATE_PPM: u32 = 50_000;

// ---------------------------------------------------------------------
// Task classes (DESIGN.md §13.3)
// ---------------------------------------------------------------------

/// Compute-heavy task class: the payload is dominated by the traced
/// runtime (spin), not by data movement.
pub const CLASS_COMPUTE: u8 = 0;

/// Memory-heavy task class: the payload is dominated by the operand
/// footprint (memcpy).
pub const CLASS_MEMORY: u8 = 1;

/// Worker/task classes the locality policy distinguishes.
pub const NUM_CLASSES: usize = 2;

/// Footprint threshold for the memory class: a task moving at least
/// this many operand bytes is memory-bound under [`PayloadMode::Mixed`]
/// (half the [`CHUNK_CAP`] payload cap — past it the memcpy cost
/// rivals a median traced runtime on the calibration host).
pub const MEMORY_CLASS_BYTES: u64 = (CHUNK_CAP as u64) / 2;

/// Classifies one task at spawn from the payload mode + its operand
/// footprint (DESIGN.md §13.3). Uniform payloads pin the class (every
/// spin task is compute-bound, every memcpy task memory-bound); the
/// footprint threshold only decides for modes whose per-task work is
/// footprint-dependent ([`PayloadMode::Mixed`]) or free (`Noop`,
/// `Faulty` — there the class is advisory routing metadata only).
pub fn task_class(mode: PayloadMode, task: &TaskDesc) -> u8 {
    match mode {
        PayloadMode::Spin { .. } => CLASS_COMPUTE,
        PayloadMode::Memcpy => CLASS_MEMORY,
        PayloadMode::Noop | PayloadMode::Faulty { .. } | PayloadMode::Mixed { .. } => {
            let fp = task_footprint(task);
            if fp.read_bytes + fp.write_bytes >= MEMORY_CLASS_BYTES {
                CLASS_MEMORY
            } else {
                CLASS_COMPUTE
            }
        }
    }
}

/// What each task execution does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PayloadMode {
    /// No per-task work: pure decode/scheduling throughput.
    Noop,
    /// Busy-wait the traced runtime times `time_scale` (1.0 = replay at
    /// the trace's own granularity; small-scale CI runs use less).
    Spin {
        /// Multiplier on the traced runtime (0.01 = 100× faster).
        time_scale: f64,
    },
    /// Copy the capped operand footprint through worker-local memory.
    Memcpy,
    /// Noop work plus seeded fault injection: each `(task, attempt)`
    /// rolls a deterministic hash (`tss_workloads::payload::fault_decision`)
    /// and may panic or stall instead of completing. The injection
    /// itself happens at the executor's containment boundary, not here
    /// — as a payload the task does nothing, so chaos runs measure the
    /// failure machinery, not payload cost.
    Faulty {
        /// Injection probability in parts-per-million.
        rate_ppm: u32,
        /// Seed for the per-(task, attempt) fault rolls.
        seed: u64,
    },
    /// Per-task heterogeneous work (DESIGN.md §13.3): memory-class
    /// tasks ([`task_class`] = [`CLASS_MEMORY`]) run the memcpy
    /// payload, compute-class tasks spin for their traced runtime. The
    /// workload family the class-routing and cost-aware policies are
    /// measured on.
    Mixed {
        /// Multiplier on the traced runtime of the spinning class.
        time_scale: f64,
    },
}

impl PayloadMode {
    /// CLI name → mode (`noop`, `spin`, `memcpy`, `faulty`, `mixed`).
    /// The bare `faulty` name uses [`DEFAULT_FAULT_RATE_PPM`] and seed
    /// 0; the harness overrides both via `--fault-rate` /
    /// `--fault-seed`.
    pub fn parse(name: &str, time_scale: f64) -> Option<PayloadMode> {
        match name {
            "noop" => Some(PayloadMode::Noop),
            "spin" => Some(PayloadMode::Spin { time_scale }),
            "memcpy" => Some(PayloadMode::Memcpy),
            "faulty" => Some(PayloadMode::Faulty { rate_ppm: DEFAULT_FAULT_RATE_PPM, seed: 0 }),
            "mixed" => Some(PayloadMode::Mixed { time_scale }),
            _ => None,
        }
    }

    /// The CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            PayloadMode::Noop => "noop",
            PayloadMode::Spin { .. } => "spin",
            PayloadMode::Memcpy => "memcpy",
            PayloadMode::Faulty { .. } => "faulty",
            PayloadMode::Mixed { .. } => "mixed",
        }
    }
}

/// Per-worker payload state. The source arena is shared read-only; the
/// destination buffer is private (see the module docs for why).
pub struct PayloadScratch<'a> {
    src: &'a [u8],
    dst: Vec<u8>,
    sink: u64,
}

/// Size of the shared read-only source arena: 4 MB, several times any
/// capped task footprint, so chunk offsets vary across objects.
pub const ARENA_LEN: usize = 4 << 20;

/// Builds the shared source arena (deterministic byte pattern).
pub fn build_arena() -> Vec<u8> {
    (0..ARENA_LEN).map(|i| (i as u32).wrapping_mul(0x9E37_79B9) as u8).collect()
}

impl<'a> PayloadScratch<'a> {
    /// Scratch for one worker over the shared `arena`.
    pub fn new(arena: &'a [u8]) -> Self {
        assert!(arena.len() >= 2 * CHUNK_CAP, "arena too small for a capped chunk");
        PayloadScratch { src: arena, dst: vec![0u8; CHUNK_CAP], sink: 0 }
    }

    /// Runs one task's payload; returns the busy wall time.
    pub fn run(&mut self, mode: PayloadMode, task: &TaskDesc) -> Duration {
        match mode {
            PayloadMode::Noop | PayloadMode::Faulty { .. } => Duration::ZERO,
            PayloadMode::Spin { time_scale } => self.run_spin(task.runtime, time_scale),
            PayloadMode::Memcpy => self.run_memcpy(task),
            PayloadMode::Mixed { time_scale } => self.run_mixed(task, time_scale),
        }
    }

    /// The [`PayloadMode::Mixed`] body: dispatch on the task's class.
    pub fn run_mixed(&mut self, task: &TaskDesc, time_scale: f64) -> Duration {
        if task_class(PayloadMode::Mixed { time_scale }, task) == CLASS_MEMORY {
            self.run_memcpy(task)
        } else {
            self.run_spin(task.runtime, time_scale)
        }
    }

    /// [`PayloadScratch::run`] under a deadline watchdog: polls `cancel`
    /// (a watchdog-owned flag, nonzero = stop) and returns
    /// `(busy, cancelled)`. Spin payloads poll every iteration; memcpy
    /// polls between operand chunks (a single chunk is ≤ 64 KB, so
    /// cancellation latency stays in the microseconds).
    pub fn run_watched(
        &mut self,
        mode: PayloadMode,
        task: &TaskDesc,
        cancel: &AtomicU32,
    ) -> (Duration, bool) {
        match mode {
            PayloadMode::Noop | PayloadMode::Faulty { .. } => (Duration::ZERO, false),
            PayloadMode::Spin { time_scale } => {
                let t0 = Stamp::now();
                let target = cycles_to_ns(task.runtime) * time_scale;
                let budget = Duration::from_nanos(target as u64);
                let mut cancelled = false;
                while t0.elapsed() < budget {
                    if cancel.load(Ordering::Acquire) != 0 {
                        cancelled = true;
                        break;
                    }
                    std::hint::spin_loop();
                }
                (t0.elapsed(), cancelled)
            }
            PayloadMode::Memcpy => {
                let t0 = Stamp::now();
                for c in operand_chunks(task) {
                    if cancel.load(Ordering::Acquire) != 0 {
                        return (t0.elapsed(), true);
                    }
                    self.copy_chunk(c);
                }
                std::hint::black_box(self.sink);
                (t0.elapsed(), false)
            }
            PayloadMode::Mixed { time_scale } => {
                if task_class(mode, task) == CLASS_MEMORY {
                    self.run_watched(PayloadMode::Memcpy, task, cancel)
                } else {
                    self.run_watched(PayloadMode::Spin { time_scale }, task, cancel)
                }
            }
        }
    }

    /// An injected [`tss_workloads::payload::InjectedFault::Delay`]:
    /// stall until the watchdog cancels us. Only called with a per-task
    /// deadline armed (see `FaultPlan::effective`), so the stall always
    /// terminates; returns the stalled wall time.
    pub fn stall_until_cancelled(&mut self, cancel: &AtomicU32) -> Duration {
        let t0 = Stamp::now();
        while cancel.load(Ordering::Acquire) == 0 {
            std::hint::spin_loop();
        }
        t0.elapsed()
    }

    /// Busy-waits the traced `runtime` (in simulated cycles) scaled by
    /// `time_scale`; returns the busy wall time. Split out so the
    /// executor's hot path can feed it from a dense runtime column
    /// instead of dereferencing the whole `TaskDesc`.
    pub fn run_spin(&mut self, runtime: tss_sim::Cycle, time_scale: f64) -> Duration {
        let t0 = Stamp::now();
        let target = cycles_to_ns(runtime) * time_scale;
        let budget = Duration::from_nanos(target as u64);
        while t0.elapsed() < budget {
            std::hint::spin_loop();
        }
        t0.elapsed()
    }

    /// Moves the task's (capped) operand footprint through the worker's
    /// scratch pair; returns the busy wall time.
    pub fn run_memcpy(&mut self, task: &TaskDesc) -> Duration {
        let t0 = Stamp::now();
        for c in operand_chunks(task) {
            self.copy_chunk(c);
        }
        std::hint::black_box(self.sink);
        t0.elapsed()
    }

    /// Moves one operand chunk through the scratch pair.
    fn copy_chunk(&mut self, c: tss_workloads::payload::OperandChunk) {
        // Map the object's base address into the arena; the
        // multiplicative hash spreads distinct objects.
        let off = (c.addr.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            % (self.src.len() - c.len).max(1) as u64) as usize;
        if c.reads {
            self.dst[..c.len].copy_from_slice(&self.src[off..off + c.len]);
            self.sink = self.sink.wrapping_add(self.dst[c.len / 2] as u64);
        }
        if c.writes {
            let fill = (c.addr as u8).wrapping_add(self.sink as u8);
            self.dst[..c.len].fill(fill);
            self.sink = self.sink.wrapping_add(self.dst[0] as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tss_trace::{KernelId, OperandDesc, TaskDesc};

    fn task() -> TaskDesc {
        TaskDesc::new(
            KernelId(0),
            3200, // 1 µs at 3.2 GHz
            vec![OperandDesc::input(0xAB, 4096), OperandDesc::output(0xCD, 4096)],
        )
    }

    #[test]
    fn parse_round_trips() {
        for name in ["noop", "spin", "memcpy", "faulty", "mixed"] {
            assert_eq!(PayloadMode::parse(name, 1.0).unwrap().name(), name);
        }
        assert_eq!(PayloadMode::parse("fft", 1.0), None);
    }

    #[test]
    fn watched_spin_stops_on_cancel() {
        let arena = build_arena();
        let mut s = PayloadScratch::new(&arena);
        let cancel = AtomicU32::new(1); // pre-cancelled
        let long = TaskDesc::new(KernelId(0), 32_000_000_000, vec![]); // 10 s at 3.2 GHz
        let (busy, cancelled) =
            s.run_watched(PayloadMode::Spin { time_scale: 1.0 }, &long, &cancel);
        assert!(cancelled);
        assert!(busy < Duration::from_secs(1), "cancelled spin still ran {busy:?}");
    }

    #[test]
    fn watched_memcpy_matches_unwatched_when_uncancelled() {
        let arena = build_arena();
        let cancel = AtomicU32::new(0);
        let mut a = PayloadScratch::new(&arena);
        let mut b = PayloadScratch::new(&arena);
        a.run(PayloadMode::Memcpy, &task());
        let (_, cancelled) = b.run_watched(PayloadMode::Memcpy, &task(), &cancel);
        assert!(!cancelled);
        assert_eq!(a.sink, b.sink, "watched memcpy must do identical work");
    }

    #[test]
    fn stall_returns_once_cancelled() {
        let arena = build_arena();
        let mut s = PayloadScratch::new(&arena);
        let cancel = AtomicU32::new(1);
        let stalled = s.stall_until_cancelled(&cancel);
        assert!(stalled < Duration::from_secs(1));
    }

    #[test]
    fn spin_honors_the_scaled_runtime() {
        let arena = build_arena();
        let mut s = PayloadScratch::new(&arena);
        let busy = s.run(PayloadMode::Spin { time_scale: 1.0 }, &task());
        assert!(busy >= Duration::from_nanos(900), "spun {busy:?} for a 1 µs task");
    }

    #[test]
    fn memcpy_moves_the_footprint() {
        let arena = build_arena();
        let mut s = PayloadScratch::new(&arena);
        s.run(PayloadMode::Memcpy, &task());
        // The last operand is a 4096-byte write: its uniform fill must
        // be what the destination buffer ends on.
        assert!(s.dst[..4096].windows(2).all(|w| w[0] == w[1]), "write chunk not filled");
    }

    #[test]
    fn mixed_routes_by_footprint_class() {
        // task() moves 8 KB < MEMORY_CLASS_BYTES → compute class.
        assert_eq!(task_class(PayloadMode::Mixed { time_scale: 1.0 }, &task()), CLASS_COMPUTE);
        let big = TaskDesc::new(
            KernelId(0),
            3200,
            vec![OperandDesc::output(0xEF, MEMORY_CLASS_BYTES as u32 + 1)],
        );
        assert_eq!(task_class(PayloadMode::Mixed { time_scale: 1.0 }, &big), CLASS_MEMORY);
        // Uniform payloads pin the class regardless of footprint.
        assert_eq!(task_class(PayloadMode::Spin { time_scale: 1.0 }, &big), CLASS_COMPUTE);
        assert_eq!(task_class(PayloadMode::Memcpy, &task()), CLASS_MEMORY);
        // The memory-class mixed body is the memcpy body: same sink.
        let arena = build_arena();
        let mut a = PayloadScratch::new(&arena);
        let mut b = PayloadScratch::new(&arena);
        a.run(PayloadMode::Memcpy, &big);
        b.run(PayloadMode::Mixed { time_scale: 1.0 }, &big);
        assert_eq!(a.sink, b.sink, "mixed memory-class task must do the memcpy work");
    }

    #[test]
    fn noop_is_fast() {
        let arena = build_arena();
        let mut s = PayloadScratch::new(&arena);
        let busy = s.run(PayloadMode::Noop, &task());
        assert!(busy < Duration::from_millis(10));
    }
}
